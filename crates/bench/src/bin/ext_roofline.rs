//! Extension what-if study: where does the soft-DMA design stop
//! paying? Sweep the machine's balance point (bandwidth at fixed
//! compute) and watch the bottleneck migrate.
//!
//! The paper's machines are all strongly memory-bound for the FFT
//! (compute : bandwidth ratios of 7–25 flops/byte against the FFT's
//! ~1.4 flops/byte per stage); this sweep shows the crossover where
//! compute takes over and dedicating half the threads to data movement
//! stops being free.


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_core::exec_sim::{simulate, SimOptions};
use bwfft_core::{Dims, FftPlan};
use bwfft_machine::presets;

fn main() {
    let base = presets::kaby_lake_7700k();
    let dims = Dims::d3(512, 512, 512);
    println!("\n=== Extension — bandwidth sweep at fixed compute (Kaby Lake core, 512^3) ===\n");
    println!(
        "{:<14} {:>12} {:>10} {:>22}",
        "DRAM GB/s", "FFT GF/s", "% peak", "bottleneck"
    );
    println!("{}", "-".repeat(64));
    for bw in [10.0f64, 20.0, 40.0, 80.0, 160.0, 320.0] {
        let mut spec = base.clone();
        spec.dram_bw_gbs_per_socket = bw;
        // Per-thread streaming scales with the memory system.
        spec.per_thread_stream_gbs = bw * 0.3;
        let plan = FftPlan::builder(dims)
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4)
            .build()
            .unwrap();
        let r = simulate(&plan, &spec, &SimOptions::default()).unwrap();
        // Bottleneck diagnosis: compare achieved DRAM bandwidth to the
        // configured channel.
        let achieved = r.report.dram_bandwidth_gbs();
        let verdict = if achieved > 0.8 * bw {
            "memory-bound (overlap pays)"
        } else {
            "compute-bound (kernels gate)"
        };
        println!(
            "{:<14.0} {:>12.2} {:>9.1}% {:>28}",
            bw,
            r.report.gflops(),
            r.report.percent_of_peak(),
            verdict
        );
    }
    println!("\nall five paper machines sit deep in the memory-bound half — the regime the");
    println!("soft-DMA design targets; the crossover marks where p_d threads should shrink.");
}

