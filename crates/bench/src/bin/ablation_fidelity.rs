//! Model-fidelity validation: the pattern-tier write cost (used by all
//! figure harnesses) against the exact cacheline-trace tier, over the
//! stage permutations of several problem shapes.
//!
//! The trace tier counts exact DRAM line traffic; the pattern tier
//! additionally applies the scattered-store DRAM-row inflation, so the
//! comparison is on payload traffic (model × efficiency).

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_machine::patterns::write_block_cost;
use bwfft_machine::presets;
use bwfft_machine::trace::replay;
use bwfft_spl::dataflow::{write_bursts, ArrayId};
use bwfft_spl::gather_scatter::{fft2d_stage_perms, fft3d_stage_perms, WriteMatrix};

fn bases(a: ArrayId) -> u64 {
    match a {
        ArrayId::Input => 0,
        ArrayId::Output => 1 << 40,
        ArrayId::Buffer => 2 << 40,
    }
}

fn main() {
    let spec = presets::kaby_lake_7700k();
    println!("\n=== Model fidelity: pattern tier vs exact cacheline trace ===\n");
    println!(
        "{:<34} {:>14} {:>14} {:>8}",
        "stage pattern", "trace bytes", "model bytes", "ratio"
    );
    println!("{}", "-".repeat(75));

    let mut cases: Vec<(String, bwfft_spl::gather_scatter::StagePerm, usize, usize)> = Vec::new();
    for (k, n, m) in [(32usize, 32usize, 64usize), (16, 64, 64)] {
        for (s, perm) in fft3d_stage_perms(k, n, m, 4).into_iter().enumerate() {
            cases.push((format!("3D {k}x{n}x{m} stage {s}"), perm, k * n * m, 2048));
        }
    }
    for (n, m) in [(128usize, 128usize)] {
        for (s, perm) in fft2d_stage_perms(n, m, 4).into_iter().enumerate() {
            cases.push((format!("2D {n}x{m} stage {s}"), perm, n * m, 2048));
        }
    }

    let inflation = 1.0 / spec.scattered_write_efficiency;
    for (label, perm, total, b) in cases {
        let mut exact = 0u64;
        let mut model = 0.0f64;
        for i in 0..total / b {
            let w = WriteMatrix::new(perm, b, i);
            let bursts = write_bursts(&w, true);
            exact += replay(&spec, &bursts, bases, 16).dram_write_bytes;
            model += write_block_cost(&bursts, &spec, 16, true).dram_bytes;
        }
        let ratio = model / exact as f64;
        let verdict = if (ratio - 1.0).abs() < 0.01 {
            "dense writes (no scatter charge)"
        } else if (ratio - inflation).abs() < 0.01 {
            "scattered (row-activation charge)"
        } else {
            "UNEXPECTED"
        };
        println!(
            "{:<34} {:>14} {:>14.0} {:>7.3} {}",
            label, exact, model, ratio, verdict
        );
        assert_ne!(verdict, "UNEXPECTED", "{label}");
    }
    println!(
        "\ncacheline traffic agrees exactly between tiers; the pattern tier charges an extra"
    );
    println!(
        "{inflation:.2}x DRAM-row-activation factor on patterns whose bursts land on distant rows."
    );
}
