//! Figure 11 (bottom-right): socket scaling on the AMD Opteron 6276
//! (Interlagos, Blue Waters) — fixed sizes, 1 socket vs 2.
//!
//! Paper reference: the HT link bandwidth is comparable to the local
//! memory bus, so the interconnect penalty is smaller than on Intel
//! and scaling is closer to linear. (The paper reports no FFTW numbers
//! on this system — the library misbehaved on Blue Waters.)

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_bench::run_ours;
use bwfft_core::Dims;
use bwfft_machine::presets;

fn main() {
    let amd = presets::amd_opteron_6276_2s();
    let intel = presets::haswell_2667v3_2s();
    println!("\n=== Fig. 11d — 3D FFT socket scaling, AMD Opteron 6276 (3.2 GHz, 16 threads, SSE) ===");
    println!(
        "{:<18} {:>14} {:>14} {:>10} {:>14}",
        "size", "1 socket GF/s", "2 sockets GF/s", "speedup", "intel speedup"
    );
    println!("{}", "-".repeat(75));
    // 64 GB of DRAM on the AMD node bounds the sizes at 1024²×2048.
    let sizes = [
        (512usize, 1024usize, 1024usize),
        (1024, 1024, 1024),
        (1024, 1024, 2048),
    ];
    let mut amd_log = 0.0;
    let mut intel_log = 0.0;
    for (k, n, m) in sizes {
        let dims = Dims::d3(k, n, m);
        let a1 = run_ours(dims, &amd, 1);
        let a2 = run_ours(dims, &amd, 2);
        let i1 = run_ours(dims, &intel, 1);
        let i2 = run_ours(dims, &intel, 2);
        let sa = a1.time_ns / a2.time_ns;
        let si = i1.time_ns / i2.time_ns;
        amd_log += sa.ln();
        intel_log += si.ln();
        println!(
            "{:<18} {:>14.2} {:>14.2} {:>9.2}x {:>13.2}x",
            format!("{k}x{n}x{m}"),
            a1.gflops(),
            a2.gflops(),
            sa,
            si
        );
    }
    let ga = (amd_log / sizes.len() as f64).exp();
    let gi = (intel_log / sizes.len() as f64).exp();
    println!("\ngeomean: AMD {ga:.2}x vs Intel {gi:.2}x");
    println!("paper: AMD scales closer to linear because HT bandwidth ~ local memory bandwidth");
}
