//! `bwfft-metrics` — always-on runtime telemetry for the serving stack.
//!
//! `bwfft-trace` (DESIGN.md §8) answers "where did *this run's* time
//! go" after the run ends; a long-lived `bwfft-serve` daemon needs the
//! complementary question answered while it is still serving: what are
//! the latency distributions *right now*, how deep is the queue, where
//! is the breaker, how often is the ooc tier retrying storage. This
//! crate provides that, under the same cost discipline as
//! [`ThreadTracer`](bwfft_trace::ThreadTracer):
//!
//! * [`registry`] — a sharded [`Registry`] of named [`Counter`]s,
//!   [`Gauge`]s and log2-bucketed mergeable [`Histogram`]s. Handles are
//!   pre-registered (the only locking) and then updated with single
//!   relaxed atomics; a *disabled* handle is `None` inside and every
//!   update is one branch. Histograms keep fixed 64-bucket arrays —
//!   no stored samples, so memory is constant and snapshots merge by
//!   bucket-wise addition.
//! * [`snapshot`] — point-in-time [`MetricsSnapshot`]s exported as
//!   versioned `bwfft-metrics/1` JSON (round-trips through the shared
//!   [`bwfft_trace::value`] layer) and as Prometheus text exposition.
//!   Two snapshots diff into rates (`bwfft-cli stat`).
//! * [`flight`] — a bounded per-shard ring buffer of finished request
//!   span trees (the raw [`bwfft_trace`] events of the last K
//!   requests). On a breaker degradation, an integrity trip, or a
//!   worker panic the recorder freezes the rings into a versioned
//!   `bwfft-flight/1` dump: a crash-time record of what the service
//!   was actually doing, not what the model said it should be doing.
//!
//! The crate is dependency-free beyond `bwfft-trace` (for the shared
//! JSON value layer and event model) so every layer — serve, core's
//! supervisor, the tuner cache, the ooc streamer — can record into it
//! without dependency cycles.

pub mod flight;
pub mod registry;
pub mod snapshot;

pub use flight::{FlightDump, FlightMark, FlightRecorder, FlightSpan, RequestFlight};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use snapshot::{MetricsError, MetricsSnapshot, FLIGHT_SCHEMA_VERSION, METRICS_SCHEMA_VERSION};
