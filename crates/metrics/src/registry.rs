//! The metric registry: named counters, gauges, and log2 histograms.
//!
//! The hot-path contract mirrors `bwfft_trace::ThreadTracer`: all
//! locking happens at *registration* (once per metric name, at service
//! start), never at update time. A handle is a clone-able wrapper
//! around `Option<Arc<atomic>>`; updating through a registered handle
//! is one relaxed atomic RMW, and updating through a disabled handle
//! (built when no registry is configured) is a single branch — no
//! clock, no allocation, no fence.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::snapshot::MetricsSnapshot;

/// Number of registration shards. Registration is rare, so this only
/// needs to be large enough that concurrent *scrapes* and late
/// registrations don't convoy.
const SHARDS: usize = 8;

/// Number of log2 buckets. Bucket `i < 63` covers `[2^i, 2^{i+1})`
/// (zero lands in bucket 0); bucket 63 covers everything from `2^63`
/// up. 64 buckets span the full `u64` range, so nanosecond latencies
/// and byte counts share one shape.
pub const BUCKETS: usize = 64;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

// ---------------------------------------------------------------------------
// Cells (the registered storage) and handles (what call sites hold)
// ---------------------------------------------------------------------------

pub(crate) struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first sample (so `fetch_min` works).
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = [0u64; BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: match self.min.load(Ordering::Relaxed) {
                u64::MAX if count == 0 => 0,
                m => m,
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A monotonically increasing count. Cheap to clone; disabled until
/// registered through a [`Registry`].
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// The no-op handle: every update is one branch.
    pub fn disabled() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A point-in-time level (queue depth, breaker position, hit rate).
/// Stores `f64` bits in an `AtomicU64`.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub fn disabled() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// A log2-bucketed distribution (no stored samples; constant memory).
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    pub fn disabled() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.record(v);
        }
    }

    /// Record a duration as nanoseconds (saturating above `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        if let Some(c) = &self.0 {
            c.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |c| c.snapshot())
    }
}

/// An immutable copy of a histogram's state: mergeable (bucket-wise
/// addition) and queryable for nearest-rank quantiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Bucket-wise merge. Associative and commutative, so shard
    /// snapshots combine in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(other.buckets.iter()))
        {
            *out = a.saturating_add(*b);
        }
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            min,
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// The counted difference `self - earlier` (for rate displays over
    /// two scrapes). `min`/`max` of the window are not recoverable from
    /// cumulative state, so the later snapshot's bounds are kept — an
    /// over-approximation, documented in the `stat` output.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *out = a.saturating_sub(*b);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), resolved to the
    /// inclusive upper bound of the bucket holding that rank and then
    /// clamped into `[min, max]` so the answer is always inside the
    /// recorded range. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank: ceil(q * count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(*b);
            if cum >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

/// The sharded metric registry. Shared as `Arc<Registry>`; handles
/// registered through it stay valid (and lock-free) for the registry's
/// lifetime.
pub struct Registry {
    started: Instant,
    shards: [Mutex<BTreeMap<String, Metric>>; SHARDS],
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n: usize = self
            .shards
            .iter()
            .map(|s| s.lock().map(|m| m.len()).unwrap_or(0))
            .sum();
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn shard_of(name: &str) -> usize {
    // FNV-1a: tiny, deterministic, good enough to spread names.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % SHARDS
}

fn lock_shard<'a>(
    shard: &'a Mutex<BTreeMap<String, Metric>>,
) -> std::sync::MutexGuard<'a, BTreeMap<String, Metric>> {
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            started: Instant::now(),
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    /// Nanoseconds since the registry was created (the time base for
    /// rate computation between two snapshots).
    pub fn uptime_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Register (or look up) a counter. Registering an existing name of
    /// a *different* kind returns a disabled handle instead of
    /// corrupting the original — a misuse that shows up as a silent
    /// zero, never a wrong metric.
    pub fn counter(&self, name: &str) -> Counter {
        let mut shard = lock_shard(&self.shards[shard_of(name)]);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(c) => Counter(Some(Arc::clone(c))),
            _ => Counter(None),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut shard = lock_shard(&self.shards[shard_of(name)]);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        {
            Metric::Gauge(c) => Gauge(Some(Arc::clone(c))),
            _ => Gauge(None),
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut shard = lock_shard(&self.shards[shard_of(name)]);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::new())))
        {
            Metric::Histogram(c) => Histogram(Some(Arc::clone(c))),
            _ => Histogram(None),
        }
    }

    /// Rare-path convenience: add to a counter by name (registers on
    /// first use). Takes the shard lock — fine for recovery events and
    /// scrape-time syncs, wrong for per-request hot paths (hold a
    /// pre-registered handle there instead).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Rare-path convenience: overwrite a counter with an absolute
    /// value (for mirroring an externally accumulated total — pool and
    /// plan-cache counters — into the registry at scrape time).
    pub fn set_counter(&self, name: &str, v: u64) {
        let handle = self.counter(name);
        if let Some(c) = &handle.0 {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Rare-path convenience: set a gauge by name.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Rare-path convenience: record into a histogram by name.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            uptime_ns: self.uptime_ns(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for shard in &self.shards {
            let shard = lock_shard(shard);
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => {
                        snap.counters
                            .insert(name.clone(), c.load(Ordering::Relaxed));
                    }
                    Metric::Gauge(c) => {
                        snap.gauges
                            .insert(name.clone(), f64::from_bits(c.load(Ordering::Relaxed)));
                    }
                    Metric::Histogram(c) => {
                        snap.histograms.insert(name.clone(), c.snapshot());
                    }
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_no_ops() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::disabled();
        h.record(42);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn registered_handles_share_one_cell() {
        let r = Registry::new();
        let a = r.counter("serve.completed");
        let b = r.counter("serve.completed");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters["serve.completed"], 3);
    }

    #[test]
    fn kind_conflicts_yield_disabled_handles_not_corruption() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        let g = r.gauge("x");
        g.set(99.0);
        let h = r.histogram("x");
        h.record(7);
        assert_eq!(c.get(), 1, "original survives");
        assert_eq!(g.get(), 0.0, "conflicting gauge is disabled");
        assert_eq!(h.snapshot().count, 0, "conflicting histogram is disabled");
    }

    #[test]
    fn bucket_mapping_covers_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_stay_within_recorded_bounds() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [10u64, 20, 30, 1000, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!((s.min, s.max), (10, 5000));
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!((10..=5000).contains(&v), "q={q} -> {v}");
        }
        assert!(s.p50().unwrap() <= s.p99().unwrap());
        assert_eq!(s.quantile(1.0), Some(5000));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn merge_accumulates_counts_and_bounds() {
        let r = Registry::new();
        let a = r.histogram("a");
        let b = r.histogram("b");
        a.record(1);
        a.record(100);
        b.record(50);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 151);
        assert_eq!((m.min, m.max), (1, 100));
        let m2 = b.snapshot().merge(&a.snapshot());
        assert_eq!(m, m2, "merge is commutative");
    }

    #[test]
    fn gauge_round_trips_f64() {
        let r = Registry::new();
        let g = r.gauge("rate");
        g.set(0.875);
        assert_eq!(g.get(), 0.875);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }
}
