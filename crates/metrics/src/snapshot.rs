//! Point-in-time metric snapshots and their wire formats.
//!
//! Two exports, both stable and versioned:
//!
//! * `bwfft-metrics/1` JSON — the machine format. Emitted and parsed
//!   through the shared [`bwfft_trace::value`] layer like
//!   `bwfft-trace/1` and `bwfft-bench/1`, round-trips losslessly, and
//!   is what `bwfft-cli stat` diffs into rates. Histogram buckets are
//!   emitted sparsely as `[index, count]` pairs so an idle service's
//!   snapshot stays small.
//! * Prometheus text exposition — for scraping. Metric names are
//!   sanitized (`.` → `_`); histograms emit cumulative
//!   `_bucket{le="..."}` lines at the log2 bucket bounds plus the
//!   conventional `_sum`/`_count`.

use std::collections::BTreeMap;
use std::fmt;

use bwfft_trace::value::{parse_document, push_escaped, push_f64, ParseError, Value};

use crate::registry::{bucket_upper, HistogramSnapshot, BUCKETS};

/// Version tag of the metrics snapshot JSON schema.
pub const METRICS_SCHEMA_VERSION: &str = "bwfft-metrics/1";

/// Version tag of the flight-recorder dump JSON schema (emitted by
/// [`crate::flight::FlightDump`]).
pub const FLIGHT_SCHEMA_VERSION: &str = "bwfft-flight/1";

/// Why a snapshot or dump failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricsError {
    /// Not JSON at all.
    Syntax(ParseError),
    /// JSON, but not this schema (missing/mistyped field).
    Schema(String),
    /// A different (future) schema version.
    Version { found: String, expected: String },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::Syntax(e) => write!(f, "metrics JSON: {e}"),
            MetricsError::Schema(what) => write!(f, "metrics schema mismatch: {what}"),
            MetricsError::Version { found, expected } => {
                write!(f, "unsupported schema {found:?} (expected {expected:?})")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

pub(crate) fn schema_err(what: impl Into<String>) -> MetricsError {
    MetricsError::Schema(what.into())
}

pub(crate) fn get<'v>(
    obj: &'v BTreeMap<String, Value>,
    key: &str,
) -> Result<&'v Value, MetricsError> {
    obj.get(key).ok_or_else(|| schema_err(format!("missing {key:?}")))
}

pub(crate) fn as_u64(v: &Value, what: &str) -> Result<u64, MetricsError> {
    v.as_u64().ok_or_else(|| schema_err(format!("{what} must be u64")))
}

pub(crate) fn as_f64(v: &Value, what: &str) -> Result<f64, MetricsError> {
    v.as_f64().ok_or_else(|| schema_err(format!("{what} must be a number")))
}

pub(crate) fn as_str<'v>(v: &'v Value, what: &str) -> Result<&'v str, MetricsError> {
    v.as_str().ok_or_else(|| schema_err(format!("{what} must be a string")))
}

pub(crate) fn as_obj<'v>(
    v: &'v Value,
    what: &str,
) -> Result<&'v BTreeMap<String, Value>, MetricsError> {
    v.as_obj().ok_or_else(|| schema_err(format!("{what} must be an object")))
}

pub(crate) fn as_arr<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], MetricsError> {
    v.as_arr().ok_or_else(|| schema_err(format!("{what} must be an array")))
}

pub(crate) fn check_version(
    obj: &BTreeMap<String, Value>,
    expected: &'static str,
) -> Result<(), MetricsError> {
    let found = as_str(get(obj, "schema")?, "schema")?;
    if found != expected {
        return Err(MetricsError::Version {
            found: found.to_string(),
            expected: expected.to_string(),
        });
    }
    Ok(())
}

/// Everything the registry knew at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the registry was created — the time base for
    /// turning counter deltas into rates.
    pub uptime_ns: u64,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn empty() -> Self {
        MetricsSnapshot {
            uptime_ns: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// The window `earlier -> self`: counter and histogram deltas,
    /// latest gauge values, `uptime_ns` as the window length. Metrics
    /// absent from `earlier` diff against zero.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let before = earlier.histograms.get(k);
                let d = match before {
                    Some(b) => v.diff(b),
                    None => v.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        MetricsSnapshot {
            uptime_ns: self.uptime_ns.saturating_sub(earlier.uptime_ns),
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Serializes as one `bwfft-metrics/1` JSON line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"");
        out.push_str(METRICS_SCHEMA_VERSION);
        out.push_str("\",\"uptime_ns\":");
        out.push_str(&self.uptime_ns.to_string());
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_escaped(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_escaped(&mut out, name);
            out.push(':');
            push_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_escaped(&mut out, name);
            out.push(':');
            push_histogram(&mut out, h);
        }
        out.push_str("}}");
        out
    }

    /// Parses a `bwfft-metrics/1` document (strict: syntax, schema and
    /// version failures are all typed).
    pub fn from_json(src: &str) -> Result<Self, MetricsError> {
        let root = parse_document(src).map_err(MetricsError::Syntax)?;
        let obj = as_obj(&root, "document")?;
        check_version(obj, METRICS_SCHEMA_VERSION)?;
        let uptime_ns = as_u64(get(obj, "uptime_ns")?, "uptime_ns")?;
        let mut counters = BTreeMap::new();
        for (name, v) in as_obj(get(obj, "counters")?, "counters")? {
            counters.insert(name.clone(), as_u64(v, "counter")?);
        }
        let mut gauges = BTreeMap::new();
        for (name, v) in as_obj(get(obj, "gauges")?, "gauges")? {
            gauges.insert(name.clone(), as_f64(v, "gauge")?);
        }
        let mut histograms = BTreeMap::new();
        for (name, v) in as_obj(get(obj, "histograms")?, "histograms")? {
            histograms.insert(name.clone(), parse_histogram(v)?);
        }
        Ok(MetricsSnapshot {
            uptime_ns,
            counters,
            gauges,
            histograms,
        })
    }

    /// Serializes in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("# TYPE uptime_ns counter\nuptime_ns ");
        out.push_str(&self.uptime_ns.to_string());
        out.push('\n');
        for (name, v) in &self.counters {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} "));
            push_f64(&mut out, *v);
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let last = h
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0);
            let mut cum = 0u64;
            for (i, c) in h.buckets.iter().enumerate().take(last + 1) {
                cum = cum.saturating_add(*c);
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_upper(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn push_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push_str("{\"count\":");
    out.push_str(&h.count.to_string());
    out.push_str(",\"sum\":");
    out.push_str(&h.sum.to_string());
    out.push_str(",\"min\":");
    out.push_str(&h.min.to_string());
    out.push_str(",\"max\":");
    out.push_str(&h.max.to_string());
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for (i, c) in h.buckets.iter().enumerate() {
        if *c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{i},{c}]"));
    }
    out.push_str("]}");
}

fn parse_histogram(v: &Value) -> Result<HistogramSnapshot, MetricsError> {
    let obj = as_obj(v, "histogram")?;
    let mut h = HistogramSnapshot::empty();
    h.count = as_u64(get(obj, "count")?, "count")?;
    h.sum = as_u64(get(obj, "sum")?, "sum")?;
    h.min = as_u64(get(obj, "min")?, "min")?;
    h.max = as_u64(get(obj, "max")?, "max")?;
    for pair in as_arr(get(obj, "buckets")?, "buckets")? {
        let pair = as_arr(pair, "bucket pair")?;
        if pair.len() != 2 {
            return Err(schema_err("bucket pair must be [index, count]"));
        }
        let i = as_u64(&pair[0], "bucket index")? as usize;
        if i >= BUCKETS {
            return Err(schema_err(format!("bucket index {i} out of range")));
        }
        h.buckets[i] = as_u64(&pair[1], "bucket count")?;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("serve.completed").add(5);
        r.gauge("serve.queue_depth").set(2.0);
        let h = r.histogram("serve.request_ns");
        h.record(100);
        h.record(4000);
        let mut s = r.snapshot();
        s.uptime_ns = 1_000_000_000;
        s
    }

    #[test]
    fn json_round_trips_losslessly() {
        let s = sample();
        let parsed = MetricsSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn version_and_schema_failures_are_typed() {
        let s = sample().to_json();
        let future = s.replace("bwfft-metrics/1", "bwfft-metrics/9");
        assert!(matches!(
            MetricsSnapshot::from_json(&future),
            Err(MetricsError::Version { .. })
        ));
        assert!(matches!(
            MetricsSnapshot::from_json("[]"),
            Err(MetricsError::Schema(_))
        ));
        assert!(matches!(
            MetricsSnapshot::from_json("{"),
            Err(MetricsError::Syntax(_))
        ));
    }

    #[test]
    fn diff_produces_window_deltas() {
        let mut before = sample();
        let mut after = sample();
        after.uptime_ns = 3_000_000_000;
        after.counters.insert("serve.completed".into(), 15);
        before.counters.insert("serve.completed".into(), 5);
        let d = after.diff(&before);
        assert_eq!(d.uptime_ns, 2_000_000_000);
        assert_eq!(d.counters["serve.completed"], 10);
        assert_eq!(d.histograms["serve.request_ns"].count, 0);
    }

    #[test]
    fn prometheus_exposition_has_conventional_lines() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE serve_completed counter"));
        assert!(text.contains("serve_completed 5"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("# TYPE serve_request_ns histogram"));
        assert!(text.contains("serve_request_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_request_ns_sum 4100"));
        assert!(text.contains("serve_request_ns_count 2"));
        // Cumulative buckets end at the total count.
        assert!(text.contains("serve_request_ns_bucket{le=\"4095\"} 2"));
    }
}
