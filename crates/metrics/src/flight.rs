//! The flight recorder: a bounded ring of finished request span trees.
//!
//! While metrics aggregate, the flight recorder *remembers*: each
//! finished request deposits its raw [`bwfft_trace`] events (spans and
//! marks, exactly what `--profile` would have aggregated) into a small
//! per-shard ring buffer. Recording is cheap — one short lock on a
//! shard touched by one worker at a time — and strictly bounded: each
//! shard keeps at most the configured `capacity` of recent requests
//! and old entries fall off the front.
//!
//! On a *trigger* — a breaker degradation, an integrity trip, a worker
//! panic — the recorder freezes the rings into a [`FlightDump`]: the
//! last K requests across all shards ordered by completion time, with
//! the trigger cause and timestamp. Dumps serialize as versioned
//! `bwfft-flight/1` JSON through the shared emitter in
//! [`bwfft_trace::value`], so a crash artifact is always parseable.
//!
//! Span timestamps inside one request are nanoseconds relative to that
//! request's own trace origin (its execution start); `start_ns` /
//! `end_ns` on the request itself are relative to the recorder's
//! origin, so requests order globally.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use bwfft_trace::{MarkKind, Phase, TraceEvent, TraceRole};

use bwfft_trace::value::{parse_document, push_escaped, push_opt_f64, Value};

use crate::snapshot::{
    as_arr, as_obj, as_str, as_u64, check_version, get, schema_err, MetricsError,
    FLIGHT_SCHEMA_VERSION,
};

const DEFAULT_SHARDS: usize = 8;
const DEFAULT_MAX_DUMPS: usize = 16;

/// One timed span from a request's execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightSpan {
    pub role: TraceRole,
    pub thread: usize,
    pub stage: usize,
    pub block: usize,
    pub phase: Phase,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// One untimed mark from a request's execution.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightMark {
    pub kind: MarkKind,
    pub label: String,
    pub at_ns: u64,
    pub value_ns: Option<f64>,
}

/// Everything the recorder keeps about one finished request.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestFlight {
    /// The server-assigned request id (matches [`Ticket::id`] on the
    /// serve side).
    ///
    /// [`Ticket::id`]: https://docs.rs/bwfft-serve
    pub request_id: u64,
    /// Shape/direction label, e.g. `"16x32 fwd"`.
    pub label: String,
    /// Outcome token: `completed`, `deadline_exceeded`, or `failed`.
    pub outcome: String,
    /// Producing tier token for completions (empty otherwise).
    pub tier: String,
    /// Execution start, ns since the recorder's origin.
    pub start_ns: u64,
    /// Outcome delivery, ns since the recorder's origin.
    pub end_ns: u64,
    pub spans: Vec<FlightSpan>,
    pub marks: Vec<FlightMark>,
}

impl RequestFlight {
    /// Splits a drained trace-event soup into the span/mark record.
    #[allow(clippy::too_many_arguments)]
    pub fn from_events(
        request_id: u64,
        label: String,
        outcome: String,
        tier: String,
        start_ns: u64,
        end_ns: u64,
        events: Vec<TraceEvent>,
    ) -> Self {
        let mut spans = Vec::new();
        let mut marks = Vec::new();
        for ev in events {
            match ev {
                TraceEvent::Span(s) => spans.push(FlightSpan {
                    role: s.role,
                    thread: s.thread,
                    stage: s.stage,
                    block: s.block,
                    phase: s.phase,
                    start_ns: s.start_ns,
                    end_ns: s.end_ns,
                }),
                TraceEvent::Mark(m) => marks.push(FlightMark {
                    kind: m.kind,
                    label: m.label,
                    at_ns: m.at_ns,
                    value_ns: m.value_ns,
                }),
            }
        }
        RequestFlight {
            request_id,
            label,
            outcome,
            tier,
            start_ns,
            end_ns,
            spans,
            marks,
        }
    }
}

/// A frozen copy of the last-K requests at a trigger instant.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightDump {
    /// What fired the dump: `breaker:<from>-><to>`, `integrity`,
    /// `panic`, or a caller-defined cause.
    pub trigger: String,
    /// Trigger instant, ns since the recorder's origin.
    pub at_ns: u64,
    /// Up to K finished requests, oldest first by completion time.
    pub requests: Vec<RequestFlight>,
}

impl FlightDump {
    /// Serializes as one `bwfft-flight/1` JSON line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"");
        out.push_str(FLIGHT_SCHEMA_VERSION);
        out.push_str("\",\"trigger\":");
        push_escaped(&mut out, &self.trigger);
        out.push_str(",\"at_ns\":");
        out.push_str(&self.at_ns.to_string());
        out.push_str(",\"requests\":[");
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_request(&mut out, r);
        }
        out.push_str("]}");
        out
    }

    /// Parses a `bwfft-flight/1` document.
    pub fn from_json(src: &str) -> Result<Self, MetricsError> {
        let root = parse_document(src).map_err(MetricsError::Syntax)?;
        let obj = as_obj(&root, "document")?;
        check_version(obj, FLIGHT_SCHEMA_VERSION)?;
        let trigger = as_str(get(obj, "trigger")?, "trigger")?.to_string();
        let at_ns = as_u64(get(obj, "at_ns")?, "at_ns")?;
        let mut requests = Vec::new();
        for r in as_arr(get(obj, "requests")?, "requests")? {
            requests.push(parse_request(r)?);
        }
        Ok(FlightDump {
            trigger,
            at_ns,
            requests,
        })
    }
}

fn push_request(out: &mut String, r: &RequestFlight) {
    out.push_str("{\"id\":");
    out.push_str(&r.request_id.to_string());
    out.push_str(",\"label\":");
    push_escaped(out, &r.label);
    out.push_str(",\"outcome\":");
    push_escaped(out, &r.outcome);
    out.push_str(",\"tier\":");
    push_escaped(out, &r.tier);
    out.push_str(",\"start_ns\":");
    out.push_str(&r.start_ns.to_string());
    out.push_str(",\"end_ns\":");
    out.push_str(&r.end_ns.to_string());
    out.push_str(",\"spans\":[");
    for (i, s) in r.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"role\":");
        push_escaped(out, s.role.token());
        out.push_str(&format!(
            ",\"thread\":{},\"stage\":{},\"block\":{},\"phase\":",
            s.thread, s.stage, s.block
        ));
        push_escaped(out, s.phase.token());
        out.push_str(&format!(
            ",\"start_ns\":{},\"end_ns\":{}}}",
            s.start_ns, s.end_ns
        ));
    }
    out.push_str("],\"marks\":[");
    for (i, m) in r.marks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        push_escaped(out, m.kind.token());
        out.push_str(",\"label\":");
        push_escaped(out, &m.label);
        out.push_str(&format!(",\"at_ns\":{},\"value_ns\":", m.at_ns));
        push_opt_f64(out, m.value_ns);
        out.push('}');
    }
    out.push_str("]}");
}

fn parse_request(v: &Value) -> Result<RequestFlight, MetricsError> {
    let obj = as_obj(v, "request")?;
    let mut spans = Vec::new();
    for s in as_arr(get(obj, "spans")?, "spans")? {
        let s = as_obj(s, "span")?;
        let role_tok = as_str(get(s, "role")?, "role")?;
        let phase_tok = as_str(get(s, "phase")?, "phase")?;
        spans.push(FlightSpan {
            role: TraceRole::from_token(role_tok)
                .ok_or_else(|| schema_err(format!("unknown role {role_tok:?}")))?,
            thread: as_u64(get(s, "thread")?, "thread")? as usize,
            stage: as_u64(get(s, "stage")?, "stage")? as usize,
            block: as_u64(get(s, "block")?, "block")? as usize,
            phase: Phase::from_token(phase_tok)
                .ok_or_else(|| schema_err(format!("unknown phase {phase_tok:?}")))?,
            start_ns: as_u64(get(s, "start_ns")?, "start_ns")?,
            end_ns: as_u64(get(s, "end_ns")?, "end_ns")?,
        });
    }
    let mut marks = Vec::new();
    for m in as_arr(get(obj, "marks")?, "marks")? {
        let m = as_obj(m, "mark")?;
        let kind_tok = as_str(get(m, "kind")?, "kind")?;
        marks.push(FlightMark {
            kind: MarkKind::from_token(kind_tok)
                .ok_or_else(|| schema_err(format!("unknown mark kind {kind_tok:?}")))?,
            label: as_str(get(m, "label")?, "label")?.to_string(),
            at_ns: as_u64(get(m, "at_ns")?, "at_ns")?,
            value_ns: get(m, "value_ns")?
                .as_opt_f64()
                .ok_or_else(|| schema_err("value_ns must be a number or null"))?,
        });
    }
    Ok(RequestFlight {
        request_id: as_u64(get(obj, "id")?, "id")?,
        label: as_str(get(obj, "label")?, "label")?.to_string(),
        outcome: as_str(get(obj, "outcome")?, "outcome")?.to_string(),
        tier: as_str(get(obj, "tier")?, "tier")?.to_string(),
        start_ns: as_u64(get(obj, "start_ns")?, "start_ns")?,
        end_ns: as_u64(get(obj, "end_ns")?, "end_ns")?,
        spans,
        marks,
    })
}

/// One ring entry. The hot path ([`FlightRecorder::record_raw`])
/// stores the drained trace events verbatim and defers the span/mark
/// split to trigger time, so a healthy request pays one shard lock and
/// a few moves — the conversion cost lands on the rare dump instead.
enum Entry {
    Ready(RequestFlight),
    Raw {
        request_id: u64,
        label: String,
        outcome: String,
        tier: String,
        start_ns: u64,
        end_ns: u64,
        events: Vec<TraceEvent>,
    },
}

impl Entry {
    fn request_id(&self) -> u64 {
        match self {
            Entry::Ready(r) => r.request_id,
            Entry::Raw { request_id, .. } => *request_id,
        }
    }

    fn to_flight(&self) -> RequestFlight {
        match self {
            Entry::Ready(r) => r.clone(),
            Entry::Raw {
                request_id,
                label,
                outcome,
                tier,
                start_ns,
                end_ns,
                events,
            } => RequestFlight::from_events(
                *request_id,
                label.clone(),
                outcome.clone(),
                tier.clone(),
                *start_ns,
                *end_ns,
                events.clone(),
            ),
        }
    }
}

/// The bounded per-shard request recorder.
pub struct FlightRecorder {
    origin: Instant,
    capacity: usize,
    shards: Vec<Mutex<VecDeque<Entry>>>,
    dumps: Mutex<VecDeque<FlightDump>>,
    max_dumps: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("dumps", &self.dumps.lock().map(|d| d.len()).unwrap_or(0))
            .finish()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests (per shard and
    /// per dump) and at most 16 dumps.
    pub fn new(capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            origin: Instant::now(),
            capacity: capacity.max(1),
            shards: (0..DEFAULT_SHARDS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            dumps: Mutex::new(VecDeque::new()),
            max_dumps: DEFAULT_MAX_DUMPS,
        })
    }

    /// Max requests a dump carries (the K in "last K").
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Deposit one finished request. Bounded: the shard ring drops its
    /// oldest entry beyond `capacity`.
    pub fn record(&self, flight: RequestFlight) {
        self.push(Entry::Ready(flight));
    }

    /// Deposit one finished request as its raw trace events, deferring
    /// the span/mark split to trigger time. This is the serve hot path:
    /// the per-request cost is one shard lock plus moving the already-
    /// drained event buffer into the ring.
    #[allow(clippy::too_many_arguments)]
    pub fn record_raw(
        &self,
        request_id: u64,
        label: String,
        outcome: String,
        tier: String,
        start_ns: u64,
        end_ns: u64,
        events: Vec<TraceEvent>,
    ) {
        self.push(Entry::Raw {
            request_id,
            label,
            outcome,
            tier,
            start_ns,
            end_ns,
            events,
        });
    }

    fn push(&self, entry: Entry) {
        let shard = &self.shards[(entry.request_id() as usize) % self.shards.len()];
        let mut ring = lock(shard);
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Freeze the rings into a dump: the last `capacity` finished
    /// requests across all shards, ordered oldest-first by completion
    /// time. The dump is stored (bounded) and returned.
    pub fn trigger(&self, cause: &str) -> FlightDump {
        let mut all: Vec<RequestFlight> = Vec::new();
        for shard in &self.shards {
            all.extend(lock(shard).iter().map(Entry::to_flight));
        }
        all.sort_by_key(|r| (r.end_ns, r.request_id));
        let skip = all.len().saturating_sub(self.capacity);
        let dump = FlightDump {
            trigger: cause.to_string(),
            at_ns: self.now_ns(),
            requests: all.split_off(skip),
        };
        let mut dumps = lock(&self.dumps);
        if dumps.len() >= self.max_dumps {
            dumps.pop_front();
        }
        dumps.push_back(dump.clone());
        dump
    }

    /// Copies of the stored dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        lock(&self.dumps).iter().cloned().collect()
    }

    /// Drains the stored dumps.
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        lock(&self.dumps).drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(id: u64, end_ns: u64) -> RequestFlight {
        RequestFlight {
            request_id: id,
            label: "16x32 fwd".into(),
            outcome: "completed".into(),
            tier: "pipelined".into(),
            start_ns: end_ns.saturating_sub(10),
            end_ns,
            spans: vec![],
            marks: vec![],
        }
    }

    #[test]
    fn dump_keeps_the_last_k_by_completion_time() {
        let rec = FlightRecorder::new(3);
        for id in 0..10u64 {
            rec.record(flight(id, 100 * (id + 1)));
        }
        let dump = rec.trigger("breaker:normal->fused");
        assert_eq!(dump.requests.len(), 3);
        let ids: Vec<u64> = dump.requests.iter().map(|r| r.request_id).collect();
        assert_eq!(ids, [7, 8, 9], "last three, oldest first");
        assert_eq!(rec.dumps().len(), 1);
    }

    #[test]
    fn shard_rings_are_bounded() {
        let rec = FlightRecorder::new(2);
        // All ids congruent mod the shard count land in one ring.
        for i in 0..5u64 {
            rec.record(flight(i * 8, i));
        }
        let dump = rec.trigger("panic");
        assert_eq!(dump.requests.len(), 2, "ring kept only the newest two");
    }

    #[test]
    fn dump_storage_is_bounded() {
        let rec = FlightRecorder::new(1);
        rec.record(flight(1, 1));
        for _ in 0..40 {
            rec.trigger("integrity");
        }
        assert_eq!(rec.dumps().len(), DEFAULT_MAX_DUMPS);
        assert_eq!(rec.take_dumps().len(), DEFAULT_MAX_DUMPS);
        assert!(rec.dumps().is_empty());
    }

    #[test]
    fn dump_json_round_trips() {
        use bwfft_trace::{MarkEvent, SpanEvent};
        let events = vec![
            TraceEvent::Span(SpanEvent {
                role: TraceRole::Compute,
                thread: 1,
                stage: 0,
                block: 3,
                phase: Phase::Compute,
                start_ns: 5,
                end_ns: 9,
            }),
            TraceEvent::Mark(MarkEvent {
                kind: MarkKind::Recovery,
                label: "retry 1".into(),
                at_ns: 7,
                value_ns: Some(50.0),
            }),
        ];
        let r = RequestFlight::from_events(
            42,
            "16x32 fwd".into(),
            "failed".into(),
            String::new(),
            100,
            200,
            events,
        );
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.marks.len(), 1);
        let dump = FlightDump {
            trigger: "integrity".into(),
            at_ns: 250,
            requests: vec![r],
        };
        let parsed = FlightDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(dump, parsed);
    }

    #[test]
    fn future_versions_are_rejected() {
        let dump = FlightDump {
            trigger: "t".into(),
            at_ns: 0,
            requests: vec![],
        };
        let future = dump.to_json().replace("bwfft-flight/1", "bwfft-flight/2");
        assert!(matches!(
            FlightDump::from_json(&future),
            Err(MetricsError::Version { .. })
        ));
    }
}
