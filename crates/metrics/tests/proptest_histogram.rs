//! Property tests for the log2 histogram (DESIGN.md §14).
//!
//! The contracts the scrape/diff/stat pipeline builds on:
//!
//! * `merge` is associative and commutative, and conserves `count`,
//!   `sum`, and every bucket — shard snapshots combine in any order;
//! * every quantile of a non-empty snapshot lies inside `[min, max]`,
//!   and quantiles are monotone in `q`;
//! * empty and one-sample snapshots never panic anywhere in the API;
//! * `diff` after `merge` recovers the added half exactly (the
//!   cumulative-scrape identity behind `bwfft-cli stat`).

use bwfft_metrics::{HistogramSnapshot, Registry};
use proptest::prelude::*;

/// Builds a snapshot from raw samples through the real recording path.
fn snap(values: &[u64]) -> HistogramSnapshot {
    let r = Registry::new();
    let h = r.histogram("h");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Latency/byte-count-plausible samples, including 0 and huge values.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![Just(0u64), 1u64..1_000_000, any::<u64>()],
        0..48,
    )
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(
            sa.merge(&sb).merge(&sc),
            sa.merge(&sb.merge(&sc))
        );
    }

    #[test]
    fn merge_conserves_count_sum_and_buckets(a in samples(), b in samples()) {
        let (sa, sb) = (snap(&a), snap(&b));
        let m = sa.merge(&sb);
        prop_assert_eq!(m.count, sa.count + sb.count);
        prop_assert_eq!(m.sum, sa.sum.saturating_add(sb.sum));
        for i in 0..m.buckets.len() {
            prop_assert_eq!(m.buckets[i], sa.buckets[i] + sb.buckets[i]);
        }
        // Bucket totals always re-add to the count.
        prop_assert_eq!(m.buckets.iter().sum::<u64>(), m.count);
    }

    #[test]
    fn quantiles_stay_within_bounds_and_are_monotone(
        values in prop::collection::vec(any::<u64>(), 1..48),
        qs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let s = snap(&values);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!((s.min, s.max), (lo, hi));
        let mut sorted = qs.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = None;
        for q in sorted {
            let v = s.quantile(q).unwrap();
            prop_assert!((lo..=hi).contains(&v), "q={q} -> {v} outside [{lo}, {hi}]");
            if let Some(p) = prev {
                prop_assert!(v >= p, "quantile not monotone: q={q} gave {v} < {p}");
            }
            prev = Some(v);
        }
    }

    #[test]
    fn empty_and_one_sample_never_panic(v in any::<u64>(), q in 0.0f64..1.0) {
        let empty = HistogramSnapshot::empty();
        prop_assert_eq!(empty.quantile(q), None);
        prop_assert_eq!(empty.mean(), None);
        prop_assert_eq!(empty.merge(&empty).count, 0);

        let one = snap(&[v]);
        prop_assert_eq!(one.count, 1);
        prop_assert_eq!(one.quantile(q), Some(v.clamp(one.min, one.max)));
        // Merging with empty is the identity on every field.
        prop_assert_eq!(one.merge(&empty), one.clone());
        prop_assert_eq!(empty.merge(&one), one);
    }

    #[test]
    fn diff_recovers_the_merged_half(a in samples(), b in samples()) {
        // The cumulative-scrape identity: scrape A, record more (B),
        // scrape A+B — the window diff must be exactly B's histogram.
        let (sa, sb) = (snap(&a), snap(&b));
        // `merge` saturates `sum`; the scrape identity only holds while
        // the cumulative sum has not overflowed u64 (always true for
        // real scrapes — nanosecond sums overflow after ~584 years).
        prop_assume!(sa.sum.checked_add(sb.sum).is_some());
        let later = sa.merge(&sb);
        let window = later.diff(&sa);
        prop_assert_eq!(window.count, sb.count);
        prop_assert_eq!(window.sum, sb.sum);
        prop_assert_eq!(&window.buckets, &sb.buckets);
    }
}
