//! Schema tests for `bwfft-metrics/1` and `bwfft-flight/1`: exact
//! byte-level snapshots of pinned documents, lossless round trips, and
//! version rejection. Any change to the emitted bytes must be
//! deliberate — bump the `/N` suffix and update DESIGN.md §14.

use bwfft_metrics::{
    FlightDump, FlightMark, FlightSpan, MetricsError, MetricsSnapshot, Registry, RequestFlight,
    FLIGHT_SCHEMA_VERSION, METRICS_SCHEMA_VERSION,
};
use bwfft_trace::{MarkKind, Phase, TraceRole};

fn pinned_metrics() -> MetricsSnapshot {
    let reg = Registry::new();
    reg.set_counter("serve.completed", 42);
    reg.set_counter("serve.submitted", 50);
    reg.set_gauge("serve.queue_depth", 3.0);
    reg.set_gauge("serve.pool_hit_rate", 0.875);
    let h = reg.histogram("serve.request_ns");
    h.record(100);
    h.record(5000);
    h.record(5000);
    let mut snap = reg.snapshot();
    snap.uptime_ns = 123456789;
    snap
}

const PINNED_METRICS_JSON: &str = r#"{"schema":"bwfft-metrics/1","uptime_ns":123456789,"counters":{"serve.completed":42,"serve.submitted":50},"gauges":{"serve.pool_hit_rate":0.875,"serve.queue_depth":3.0},"histograms":{"serve.request_ns":{"count":3,"sum":10100,"min":100,"max":5000,"buckets":[[6,1],[12,2]]}}}"#;

fn pinned_dump() -> FlightDump {
    FlightDump {
        trigger: "breaker:normal->fused".to_string(),
        at_ns: 9999,
        requests: vec![RequestFlight {
            request_id: 7,
            label: "2D 16x32".to_string(),
            outcome: "deadline_exceeded".to_string(),
            tier: String::new(),
            start_ns: 1000,
            end_ns: 9000,
            spans: vec![FlightSpan {
                role: TraceRole::Compute,
                thread: 1,
                stage: 0,
                block: 3,
                phase: Phase::Compute,
                start_ns: 10,
                end_ns: 20,
            }],
            marks: vec![FlightMark {
                kind: MarkKind::Serve,
                label: "breaker normal->fused".to_string(),
                at_ns: 15,
                value_ns: Some(2.5),
            }],
        }],
    }
}

const PINNED_FLIGHT_JSON: &str = r#"{"schema":"bwfft-flight/1","trigger":"breaker:normal->fused","at_ns":9999,"requests":[{"id":7,"label":"2D 16x32","outcome":"deadline_exceeded","tier":"","start_ns":1000,"end_ns":9000,"spans":[{"role":"compute","thread":1,"stage":0,"block":3,"phase":"compute","start_ns":10,"end_ns":20}],"marks":[{"kind":"serve","label":"breaker normal->fused","at_ns":15,"value_ns":2.5}]}]}"#;

#[test]
fn metrics_snapshot_bytes_are_pinned() {
    assert_eq!(pinned_metrics().to_json(), PINNED_METRICS_JSON);
}

#[test]
fn metrics_snapshot_round_trips_losslessly() {
    let snap = pinned_metrics();
    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
    assert_eq!(back, snap);
    assert_eq!(back.to_json(), PINNED_METRICS_JSON, "byte-stable");
}

#[test]
fn empty_metrics_snapshot_round_trips() {
    let empty = MetricsSnapshot::empty();
    let back = MetricsSnapshot::from_json(&empty.to_json()).expect("parses");
    assert_eq!(back, empty);
}

#[test]
fn metrics_version_mismatch_is_rejected() {
    let doc = PINNED_METRICS_JSON.replace("bwfft-metrics/1", "bwfft-metrics/2");
    match MetricsSnapshot::from_json(&doc) {
        Err(MetricsError::Version { found, expected }) => {
            assert_eq!(found, "bwfft-metrics/2");
            assert_eq!(expected, METRICS_SCHEMA_VERSION);
        }
        other => panic!("expected version error, got {other:?}"),
    }
}

#[test]
fn flight_dump_bytes_are_pinned() {
    assert_eq!(pinned_dump().to_json(), PINNED_FLIGHT_JSON);
}

#[test]
fn flight_dump_round_trips_losslessly() {
    let dump = pinned_dump();
    let back = FlightDump::from_json(&dump.to_json()).expect("parses");
    assert_eq!(back, dump);
    assert_eq!(back.to_json(), PINNED_FLIGHT_JSON, "byte-stable");
}

#[test]
fn flight_version_mismatch_is_rejected() {
    let doc = PINNED_FLIGHT_JSON.replace("bwfft-flight/1", "bwfft-flight/9");
    match FlightDump::from_json(&doc) {
        Err(MetricsError::Version { found, expected }) => {
            assert_eq!(found, "bwfft-flight/9");
            assert_eq!(expected, FLIGHT_SCHEMA_VERSION);
        }
        other => panic!("expected version error, got {other:?}"),
    }
}

#[test]
fn truncated_documents_fail_typed_not_panic() {
    for doc in [
        "",
        "{",
        r#"{"schema":"bwfft-metrics/1"}"#,
        r#"{"schema":"bwfft-flight/1","trigger":"x"}"#,
    ] {
        assert!(MetricsSnapshot::from_json(doc).is_err());
        assert!(FlightDump::from_json(doc).is_err());
    }
}
