//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build container cannot reach crates.io, so this crate provides
//! the API surface the `bwfft-bench` benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock timer. Statistics are deliberately simple (median of a
//! few samples); the goal is runnable benches and readable numbers,
//! not criterion's analysis machinery.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(self, &id.label(), None, f);
    }

    /// Upstream parses CLI filters here; the stand-in runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(self.criterion, &label, self.throughput, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(self.criterion, &label, self.throughput, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Units processed per iteration, for derived rates in the output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    /// Iterations to run in the timed phase.
    iters: u64,
    /// Measured time of the timed phase.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // learning the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut warm_runs = 0u32;
    while warm_start.elapsed() < criterion.warm_up_time || warm_runs == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_runs += 1;
        if warm_runs >= 1000 {
            break;
        }
    }

    // Size each sample so all samples fit in the measurement budget.
    let budget = criterion.measurement_time / criterion.sample_size as u32;
    let iters_per_sample = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  {:>8.2} GiB/s", n as f64 / median / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>8.2} Melem/s", n as f64 / median / 1e6)
        }
        None => String::new(),
    };
    println!("{label:<48} {}{rate}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>9.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>9.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>9.2} ms", secs * 1e3)
    } else {
        format!("{secs:>9.3} s ")
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the braced form with a
/// custom `config = ...;`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
            b.iter(|| x + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 8).label(), "f/8");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
