//! Property tests for the trace aggregation pass and the JSON export,
//! plus a snapshot test pinning the schema version.
//!
//! The generators build arbitrary (but structurally valid) event
//! soups: spans with `start ≤ end` scattered over a handful of stages,
//! threads and phases, plus marks. The properties are the invariants
//! the report sinks rely on:
//!
//! * every overlap fraction lies in `[0, 1]`,
//! * per-stage wall times sum to at most the total wall time,
//! * per-phase busy time never exceeds the stage's wall time
//!   (busy is an interval *union*, not a sum over threads),
//! * `to_json → from_json` is lossless (`{:?}` float round-tripping).

use bwfft_trace::json::{from_json, to_json};
use bwfft_trace::{
    aggregate, MarkEvent, MarkKind, Phase, RunMeta, SpanEvent, StageIo, TraceEvent, TraceRole,
    SCHEMA_VERSION,
};
use proptest::prelude::*;

const PHASES: [Phase; 5] = [
    Phase::Load,
    Phase::Compute,
    Phase::Store,
    Phase::BarrierData,
    Phase::BarrierGlobal,
];

/// Strategy for one span: `(stage, thread, phase_idx, start, len)`.
fn span_strategy() -> impl Strategy<Value = (usize, usize, usize, u64, u64)> {
    (0usize..3, 0usize..4, 0usize..PHASES.len(), 0u64..100_000, 0u64..50_000)
}

/// Builds spans with each stage confined to its own disjoint window
/// (`stage · 200 µs` offset), matching how the executors actually run
/// stages back-to-back. The "stage walls sum ≤ total wall" invariant
/// is a property of that sequential structure, not of arbitrary soups.
fn build_events(raw: &[(usize, usize, usize, u64, u64)]) -> Vec<TraceEvent> {
    raw.iter()
        .map(|&(stage, thread, phase_idx, start, len)| {
            let start = start + stage as u64 * 200_000;
            let phase = PHASES[phase_idx];
            let role = match phase {
                Phase::Compute | Phase::BarrierGlobal => TraceRole::Compute,
                _ => TraceRole::Data,
            };
            TraceEvent::Span(SpanEvent {
                role,
                thread,
                stage,
                block: thread,
                phase,
                start_ns: start,
                end_ns: start + len,
            })
        })
        .collect()
}

fn meta_for(stages: usize) -> RunMeta {
    RunMeta {
        label: "prop 2D 64x64".to_string(),
        executor: "pipelined".to_string(),
        stream_gbs: Some(40.0),
        stage_io: (0..stages)
            .map(|s| StageIo {
                stage: s,
                bytes_moved: 1 << 20,
                pseudo_flops: 1e6,
            })
            .collect(),
    }
}

proptest! {
    #[test]
    fn overlap_fraction_is_always_a_fraction(
        transfer in prop::collection::vec((0u64..10_000, 0u64..5_000), 0..12),
        compute in prop::collection::vec((0u64..10_000, 0u64..5_000), 0..12),
    ) {
        let t: Vec<(u64, u64)> = transfer.iter().map(|&(s, l)| (s, s + l)).collect();
        let c: Vec<(u64, u64)> = compute.iter().map(|&(s, l)| (s, s + l)).collect();
        let f = bwfft_trace::aggregate::overlap_fraction(&t, &c);
        prop_assert!(f.is_finite());
        prop_assert!((0.0..=1.0).contains(&f), "overlap {} out of range", f);
        // Empty either side means no overlap, by definition.
        if t.is_empty() || c.is_empty() {
            prop_assert_eq!(f, 0.0);
        }
    }

    #[test]
    fn aggregated_report_invariants_hold(raw in prop::collection::vec(span_strategy(), 1..60)) {
        let events = build_events(&raw);
        let report = aggregate(&events, &meta_for(3));

        let stage_sum: u64 = report.stages.iter().map(|s| s.wall_ns).sum();
        prop_assert!(
            stage_sum <= report.total_wall_ns,
            "stage walls {} exceed total {}",
            stage_sum,
            report.total_wall_ns
        );
        for s in &report.stages {
            prop_assert!(s.overlap_fraction.is_finite());
            prop_assert!((0.0..=1.0).contains(&s.overlap_fraction));
            // Busy times are interval unions inside the stage window.
            for busy in [s.load_busy_ns, s.compute_busy_ns, s.store_busy_ns] {
                prop_assert!(busy <= s.wall_ns, "busy {} > wall {}", busy, s.wall_ns);
            }
            prop_assert!(s.achieved_gbs.is_none_or(|g| g.is_finite() && g >= 0.0));
            prop_assert!(s.percent_of_achievable.is_none_or(|p| p.is_finite() && p >= 0.0));
        }
        let overall = report.overall_overlap_fraction();
        prop_assert!(overall.is_none_or(|o| o.is_finite() && (0.0..=1.0).contains(&o)));
    }

    #[test]
    fn json_export_round_trips_losslessly(
        raw in prop::collection::vec(span_strategy(), 0..40),
        mark_vals in prop::collection::vec(any::<u64>(), 0..4),
    ) {
        let mut events = build_events(&raw);
        for (i, v) in mark_vals.iter().enumerate() {
            // Exercise the f64 emitter with awkward values, including
            // ones that need all 17 digits to round-trip.
            let value = (*v as f64) * 1.000_000_000_000_123e-3;
            events.push(TraceEvent::Mark(MarkEvent {
                kind: if i % 2 == 0 { MarkKind::TunerTrial } else { MarkKind::Degradation },
                label: format!("mark #{i} \"quoted\\slash\" µ✓"),
                at_ns: *v,
                value_ns: if i % 3 == 0 { None } else { Some(value) },
            }));
        }
        let report = aggregate(&events, &meta_for(3));
        let json = to_json(&report);
        let back = from_json(&json).map_err(|e| TestCaseError::Fail(format!("parse: {e}")))?;
        prop_assert_eq!(&back, &report);
        // Idempotence: serializing the parsed report is byte-identical.
        prop_assert_eq!(to_json(&back), json);
    }
}

#[test]
fn schema_version_snapshot() {
    // The export format is versioned; any change to the schema string
    // must be deliberate (bump the suffix, document in DESIGN.md §8,
    // keep `from_json` rejecting versions it does not understand).
    assert_eq!(SCHEMA_VERSION, "bwfft-trace/1");
    let report = aggregate(&[], &meta_for(1));
    let json = to_json(&report);
    assert!(json.starts_with("{\"schema\":\"bwfft-trace/1\","), "{json}");
    assert!(!json.contains('\n'), "JSON export must stay single-line");
    // A parser from the future (or past) must refuse, not misread.
    let altered = json.replace("bwfft-trace/1", "bwfft-trace/999");
    assert!(from_json(&altered).is_err());
}
