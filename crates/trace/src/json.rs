//! Versioned, dependency-free JSON export of a [`TraceReport`] and the
//! matching parser.
//!
//! The emitter writes floats with Rust's shortest-round-trip `{:?}`
//! formatting, so `from_json(to_json(r)) == r` holds exactly
//! (property-tested in `tests/proptest_trace.rs`). Non-finite floats —
//! which the aggregation never produces but a defensive parser must
//! assume — are pinned to the string sentinels `"NaN"` / `"Infinity"` /
//! `"-Infinity"` (see [`crate::value::push_f64`]), which
//! [`crate::value::Value::as_f64`] maps back, so even degenerate
//! reports round-trip instead of losing fields to `null`.
//!
//! Schema (`bwfft-trace/1`):
//!
//! ```json
//! {
//!   "schema": "bwfft-trace/1",
//!   "label": "2048x2048",
//!   "executor": "pipelined",
//!   "total_wall_ns": 123456789,
//!   "stages": [
//!     { "stage": 0, "wall_ns": 0, "load_busy_ns": 0, "compute_busy_ns": 0,
//!       "store_busy_ns": 0, "data_barrier_ns": 0, "compute_barrier_ns": 0,
//!       "overlap_fraction": 0.93, "bytes_moved": 0,
//!       "achieved_gbs": 12.5, "achievable_gbs": 17.1,
//!       "percent_of_achievable": 73.2 }
//!   ],
//!   "marks": [
//!     { "kind": "degradation", "label": "...", "at_ns": 0, "value_ns": null }
//!   ]
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::aggregate::{StageProfile, TraceReport};
use crate::event::{MarkEvent, MarkKind};
use crate::value::{self, parse_document, push_escaped, push_f64, push_opt_f64, Value};

/// Current export schema tag. Bump the `/N` suffix on any breaking
/// field change; the snapshot test in `tests/proptest_trace.rs` pins it.
pub const SCHEMA_VERSION: &str = "bwfft-trace/1";

/// JSON export/import failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// Lexical/syntactic error at a byte offset.
    Syntax { offset: usize, message: String },
    /// Structurally valid JSON that doesn't match the schema.
    Schema(String),
    /// The document's `schema` tag is not [`SCHEMA_VERSION`].
    Version { found: String },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Schema(m) => write!(f, "JSON does not match trace schema: {m}"),
            JsonError::Version { found } => write!(
                f,
                "unsupported trace schema {found:?} (expected {SCHEMA_VERSION:?})"
            ),
        }
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

/// Serialize a report to a compact single-line JSON document.
pub fn to_json(report: &TraceReport) -> String {
    let mut out = String::with_capacity(256 + report.stages.len() * 256);
    out.push_str("{\"schema\":");
    push_escaped(&mut out, &report.schema);
    out.push_str(",\"label\":");
    push_escaped(&mut out, &report.label);
    out.push_str(",\"executor\":");
    push_escaped(&mut out, &report.executor);
    out.push_str(&format!(",\"total_wall_ns\":{}", report.total_wall_ns));
    out.push_str(",\"stages\":[");
    for (i, s) in report.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"stage\":{},\"wall_ns\":{},\"load_busy_ns\":{},\"compute_busy_ns\":{},\
             \"store_busy_ns\":{},\"data_barrier_ns\":{},\"compute_barrier_ns\":{},\
             \"overlap_fraction\":",
            s.stage,
            s.wall_ns,
            s.load_busy_ns,
            s.compute_busy_ns,
            s.store_busy_ns,
            s.data_barrier_ns,
            s.compute_barrier_ns,
        ));
        push_f64(&mut out, s.overlap_fraction);
        out.push_str(&format!(",\"bytes_moved\":{},\"achieved_gbs\":", s.bytes_moved));
        push_opt_f64(&mut out, s.achieved_gbs);
        out.push_str(",\"achievable_gbs\":");
        push_opt_f64(&mut out, s.achievable_gbs);
        out.push_str(",\"percent_of_achievable\":");
        push_opt_f64(&mut out, s.percent_of_achievable);
        out.push('}');
    }
    out.push_str("],\"marks\":[");
    for (i, m) in report.marks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        push_escaped(&mut out, m.kind.token());
        out.push_str(",\"label\":");
        push_escaped(&mut out, &m.label);
        out.push_str(&format!(",\"at_ns\":{},\"value_ns\":", m.at_ns));
        push_opt_f64(&mut out, m.value_ns);
        out.push('}');
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Schema mapping (the generic parser lives in [`crate::value`])
// ---------------------------------------------------------------------------

fn get<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, JsonError> {
    obj.get(key)
        .ok_or_else(|| JsonError::Schema(format!("missing field {key:?}")))
}

fn as_str(v: &Value, key: &str) -> Result<String, JsonError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(JsonError::Schema(format!("{key:?} must be a string"))),
    }
}

fn as_u64(v: &Value, key: &str) -> Result<u64, JsonError> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => Ok(*n as u64),
        _ => Err(JsonError::Schema(format!(
            "{key:?} must be a non-negative integer"
        ))),
    }
}

fn as_usize(v: &Value, key: &str) -> Result<usize, JsonError> {
    usize::try_from(as_u64(v, key)?)
        .map_err(|_| JsonError::Schema(format!("{key:?} out of range")))
}

fn as_f64(v: &Value, key: &str) -> Result<f64, JsonError> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Num(n) => Ok(*n),
        _ => Err(JsonError::Schema(format!("{key:?} must be a number"))),
    }
}

fn as_opt_f64(v: &Value, key: &str) -> Result<Option<f64>, JsonError> {
    match v {
        Value::Null => Ok(None),
        Value::Int(i) => Ok(Some(*i as f64)),
        Value::Num(n) => Ok(Some(*n)),
        _ => Err(JsonError::Schema(format!("{key:?} must be number or null"))),
    }
}

fn as_obj<'v>(v: &'v Value, key: &str) -> Result<&'v BTreeMap<String, Value>, JsonError> {
    match v {
        Value::Obj(m) => Ok(m),
        _ => Err(JsonError::Schema(format!("{key:?} must be an object"))),
    }
}

fn as_arr<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], JsonError> {
    match v {
        Value::Arr(a) => Ok(a),
        _ => Err(JsonError::Schema(format!("{key:?} must be an array"))),
    }
}

/// Parse a JSON document produced by [`to_json`] back into a
/// [`TraceReport`]. Rejects documents carrying a different
/// [`SCHEMA_VERSION`].
pub fn from_json(src: &str) -> Result<TraceReport, JsonError> {
    let root = parse_document(src).map_err(|value::ParseError { offset, message }| {
        JsonError::Syntax { offset, message }
    })?;
    let obj = as_obj(&root, "<root>")?;

    let schema = as_str(get(obj, "schema")?, "schema")?;
    if schema != SCHEMA_VERSION {
        return Err(JsonError::Version { found: schema });
    }

    let stages = as_arr(get(obj, "stages")?, "stages")?
        .iter()
        .map(|v| {
            let s = as_obj(v, "stages[]")?;
            Ok(StageProfile {
                stage: as_usize(get(s, "stage")?, "stage")?,
                wall_ns: as_u64(get(s, "wall_ns")?, "wall_ns")?,
                load_busy_ns: as_u64(get(s, "load_busy_ns")?, "load_busy_ns")?,
                compute_busy_ns: as_u64(get(s, "compute_busy_ns")?, "compute_busy_ns")?,
                store_busy_ns: as_u64(get(s, "store_busy_ns")?, "store_busy_ns")?,
                data_barrier_ns: as_u64(get(s, "data_barrier_ns")?, "data_barrier_ns")?,
                compute_barrier_ns: as_u64(get(s, "compute_barrier_ns")?, "compute_barrier_ns")?,
                overlap_fraction: as_f64(get(s, "overlap_fraction")?, "overlap_fraction")?,
                bytes_moved: as_u64(get(s, "bytes_moved")?, "bytes_moved")?,
                achieved_gbs: as_opt_f64(get(s, "achieved_gbs")?, "achieved_gbs")?,
                achievable_gbs: as_opt_f64(get(s, "achievable_gbs")?, "achievable_gbs")?,
                percent_of_achievable: as_opt_f64(
                    get(s, "percent_of_achievable")?,
                    "percent_of_achievable",
                )?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;

    let marks = as_arr(get(obj, "marks")?, "marks")?
        .iter()
        .map(|v| {
            let m = as_obj(v, "marks[]")?;
            let kind_tok = as_str(get(m, "kind")?, "kind")?;
            let kind = MarkKind::from_token(&kind_tok)
                .ok_or_else(|| JsonError::Schema(format!("unknown mark kind {kind_tok:?}")))?;
            Ok(MarkEvent {
                kind,
                label: as_str(get(m, "label")?, "label")?,
                at_ns: as_u64(get(m, "at_ns")?, "at_ns")?,
                value_ns: as_opt_f64(get(m, "value_ns")?, "value_ns")?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;

    Ok(TraceReport {
        schema,
        label: as_str(get(obj, "label")?, "label")?,
        executor: as_str(get(obj, "executor")?, "executor")?,
        total_wall_ns: as_u64(get(obj, "total_wall_ns")?, "total_wall_ns")?,
        stages,
        marks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TraceReport {
        TraceReport {
            schema: SCHEMA_VERSION.to_string(),
            label: "2048x2048 \"quoted\"\nline".to_string(),
            executor: "pipelined".to_string(),
            total_wall_ns: 987_654_321,
            stages: vec![
                StageProfile {
                    stage: 0,
                    wall_ns: 500,
                    load_busy_ns: 100,
                    compute_busy_ns: 400,
                    store_busy_ns: 90,
                    data_barrier_ns: 10,
                    compute_barrier_ns: 20,
                    overlap_fraction: 0.9375,
                    bytes_moved: 1 << 30,
                    achieved_gbs: Some(12.625),
                    achievable_gbs: Some(17.066_666_666_666_666),
                    percent_of_achievable: Some(73.974_609_375),
                },
                StageProfile {
                    stage: 1,
                    wall_ns: 0,
                    load_busy_ns: 0,
                    compute_busy_ns: 0,
                    store_busy_ns: 0,
                    data_barrier_ns: 0,
                    compute_barrier_ns: 0,
                    overlap_fraction: 0.0,
                    bytes_moved: 0,
                    achieved_gbs: None,
                    achievable_gbs: None,
                    percent_of_achievable: None,
                },
            ],
            marks: vec![MarkEvent {
                kind: MarkKind::TunerWinner,
                label: "mu=4096 kernel=r4".to_string(),
                at_ns: 42,
                value_ns: Some(1.5e6),
            }],
        }
    }

    #[test]
    fn round_trip_exact() {
        let rep = sample_report();
        let json = to_json(&rep);
        let back = from_json(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let rep = sample_report();
        let json = to_json(&rep).replace(SCHEMA_VERSION, "bwfft-trace/999");
        match from_json(&json) {
            Err(JsonError::Version { found }) => assert_eq!(found, "bwfft-trace/999"),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(matches!(from_json(""), Err(JsonError::Syntax { .. })));
        assert!(matches!(from_json("{"), Err(JsonError::Syntax { .. })));
        assert!(matches!(from_json("[1,2]"), Err(JsonError::Schema(_))));
        assert!(matches!(
            from_json("{\"schema\":\"bwfft-trace/1\"}"),
            Err(JsonError::Schema(_))
        ));
        // Trailing garbage.
        let mut json = to_json(&sample_report());
        json.push_str("{}");
        assert!(matches!(from_json(&json), Err(JsonError::Syntax { .. })));
    }

    #[test]
    fn unknown_mark_kind_is_schema_error() {
        let json = to_json(&sample_report()).replace("tuner_winner", "mystery");
        assert!(matches!(from_json(&json), Err(JsonError::Schema(_))));
    }

    #[test]
    fn escapes_survive() {
        let rep = sample_report();
        let json = to_json(&rep);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        let back = from_json(&json).unwrap();
        assert_eq!(back.label, rep.label);
    }

    #[test]
    fn error_display_is_informative() {
        let e = JsonError::Version {
            found: "x/2".into(),
        };
        assert!(e.to_string().contains("bwfft-trace/1"));
    }
}
