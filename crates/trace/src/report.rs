//! Human-readable roofline/overlap summary: `Display` for
//! [`TraceReport`].

use std::fmt;

use crate::aggregate::TraceReport;

/// Render a nanosecond count with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace report [{}] — {} ({}), wall {}",
            self.schema,
            self.label,
            self.executor,
            fmt_ns(self.total_wall_ns)
        )?;
        if self.stages.is_empty() {
            writeln!(f, "  (no spans recorded)")?;
        } else {
            writeln!(
                f,
                "  {:<5} {:>12} {:>12} {:>12} {:>12} {:>16} {:>8} {:>9} {:>7}",
                "stage",
                "wall",
                "load",
                "compute",
                "store",
                "barrier(data/cmp)",
                "overlap",
                "GB/s",
                "%peak"
            )?;
            for s in &self.stages {
                let gbs = s
                    .achieved_gbs
                    .map(|g| format!("{g:.2}"))
                    .unwrap_or_else(|| "-".to_string());
                let pct = s
                    .percent_of_achievable
                    .map(|p| format!("{p:.1}%"))
                    .unwrap_or_else(|| "-".to_string());
                writeln!(
                    f,
                    "  {:<5} {:>12} {:>12} {:>12} {:>12} {:>16} {:>7.1}% {:>9} {:>7}",
                    s.stage,
                    fmt_ns(s.wall_ns),
                    fmt_ns(s.load_busy_ns),
                    fmt_ns(s.compute_busy_ns),
                    fmt_ns(s.store_busy_ns),
                    format!("{}/{}", fmt_ns(s.data_barrier_ns), fmt_ns(s.compute_barrier_ns)),
                    100.0 * s.overlap_fraction,
                    gbs,
                    pct
                )?;
            }
            if let Some(overall) = self.overall_overlap_fraction() {
                writeln!(
                    f,
                    "  overall compute/transfer overlap: {:.1}%",
                    100.0 * overall
                )?;
            }
        }
        if !self.marks.is_empty() {
            writeln!(f, "  marks:")?;
            for m in &self.marks {
                match m.value_ns {
                    Some(v) => writeln!(
                        f,
                        "    {}: {} ({})",
                        m.kind.token(),
                        m.label,
                        fmt_ns(v as u64)
                    )?,
                    None => writeln!(f, "    {}: {}", m.kind.token(), m.label)?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::StageProfile;
    use crate::event::{MarkEvent, MarkKind};
    use crate::json::SCHEMA_VERSION;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(5_000), "5.000 us");
        assert_eq!(fmt_ns(5_000_000), "5.000 ms");
        assert_eq!(fmt_ns(5_000_000_000), "5.000 s");
    }

    #[test]
    fn display_contains_key_columns() {
        let rep = TraceReport {
            schema: SCHEMA_VERSION.to_string(),
            label: "1024x1024".into(),
            executor: "pipelined".into(),
            total_wall_ns: 10_000_000,
            stages: vec![StageProfile {
                stage: 0,
                wall_ns: 10_000_000,
                load_busy_ns: 4_000_000,
                compute_busy_ns: 9_000_000,
                store_busy_ns: 4_000_000,
                data_barrier_ns: 100_000,
                compute_barrier_ns: 200_000,
                overlap_fraction: 0.875,
                bytes_moved: 128 << 20,
                achieved_gbs: Some(13.4),
                achievable_gbs: Some(17.1),
                percent_of_achievable: Some(78.4),
            }],
            marks: vec![MarkEvent {
                kind: MarkKind::Degradation,
                label: "pinning denied".into(),
                at_ns: 0,
                value_ns: None,
            }],
        };
        let text = rep.to_string();
        assert!(text.contains("1024x1024"));
        assert!(text.contains("87.5%"), "overlap column: {text}");
        assert!(text.contains("78.4%"), "%peak column: {text}");
        assert!(text.contains("13.40"), "GB/s column: {text}");
        assert!(text.contains("degradation: pinning denied"));
        assert!(text.contains("overall compute/transfer overlap"));
    }

    #[test]
    fn display_empty_report() {
        let rep = TraceReport {
            schema: SCHEMA_VERSION.to_string(),
            label: "x".into(),
            executor: "fused".into(),
            total_wall_ns: 0,
            stages: vec![],
            marks: vec![],
        };
        assert!(rep.to_string().contains("no spans recorded"));
    }
}
