//! The trace event model: timed spans and untimed marks.
//!
//! Spans are keyed by `(role, thread, stage, block, phase)` with
//! nanosecond timestamps relative to the owning
//! [`TraceCollector`](crate::collect::TraceCollector)'s origin. Marks
//! carry the non-timing telemetry a profiled run wants alongside the
//! spans: why an executor was degraded, which faults fired, what the
//! tuner measured for each shortlisted candidate.

/// Which pipeline role produced an event. Mirrors the pipeline crate's
/// `Role` without depending on it (this crate sits below the pipeline
/// in the dependency graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceRole {
    /// A soft-DMA data thread (loads and stores).
    Data,
    /// A compute thread (batched FFT kernels).
    Compute,
}

impl TraceRole {
    /// Short stable token used by the JSON export.
    pub fn token(self) -> &'static str {
        match self {
            TraceRole::Data => "data",
            TraceRole::Compute => "compute",
        }
    }

    /// Inverse of [`token`](Self::token).
    pub fn from_token(tok: &str) -> Option<Self> {
        match tok {
            "data" => Some(TraceRole::Data),
            "compute" => Some(TraceRole::Compute),
            _ => None,
        }
    }
}

/// What a span measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Streaming a block from the source array into the buffer half.
    Load,
    /// Batched FFT kernels on a buffer half.
    Compute,
    /// Writing a block through the stage's write matrix.
    Store,
    /// Waiting at the data-side barrier (store/load recycling).
    BarrierData,
    /// Waiting at the global end-of-step barrier.
    BarrierGlobal,
}

impl Phase {
    /// Short stable token used by the JSON export.
    pub fn token(self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Compute => "compute",
            Phase::Store => "store",
            Phase::BarrierData => "barrier_data",
            Phase::BarrierGlobal => "barrier_global",
        }
    }

    /// Inverse of [`token`](Self::token).
    pub fn from_token(tok: &str) -> Option<Self> {
        match tok {
            "load" => Some(Phase::Load),
            "compute" => Some(Phase::Compute),
            "store" => Some(Phase::Store),
            "barrier_data" => Some(Phase::BarrierData),
            "barrier_global" => Some(Phase::BarrierGlobal),
            _ => None,
        }
    }

    /// True for the barrier-wait phases (synchronization overhead, not
    /// useful work).
    pub fn is_barrier(self) -> bool {
        matches!(self, Phase::BarrierData | Phase::BarrierGlobal)
    }

    /// True for the data-movement phases (the "transfer" side of the
    /// overlap accounting).
    pub fn is_transfer(self) -> bool {
        matches!(self, Phase::Load | Phase::Store)
    }
}

/// One timed interval of one thread's work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub role: TraceRole,
    /// Role-local thread index.
    pub thread: usize,
    /// Pipeline stage the span belongs to.
    pub stage: usize,
    /// Block (pipeline iteration) index; barrier spans use the step
    /// index of the schedule.
    pub block: usize,
    pub phase: Phase,
    /// Start, ns since the collector's origin.
    pub start_ns: u64,
    /// End, ns since the collector's origin (`end_ns >= start_ns`).
    pub end_ns: u64,
}

impl SpanEvent {
    /// Span length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// What kind of telemetry a mark carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MarkKind {
    /// The plan degraded to the fused executor; label holds the typed
    /// `DegradationReason`'s rendering.
    Degradation,
    /// An injected fault fired; label names the site.
    FaultInjected,
    /// One timed candidate of the tuner's measurement phase; `value_ns`
    /// is its best wall-clock.
    TunerTrial,
    /// The candidate the tuner picked; `value_ns` is its score.
    TunerWinner,
    /// A supervisor recovery step (retry, buffer shrink, executor
    /// escalation); label describes the step, `value_ns` the backoff
    /// slept before it, when any.
    Recovery,
    /// A serving-layer event (admission rejection, breaker transition,
    /// drain); label describes it.
    Serve,
    /// A crash-recovery resume event (out-of-core checkpoint journal
    /// replay: frontier stage, skipped/re-verified block counts); label
    /// describes it.
    Resume,
}

impl MarkKind {
    /// Short stable token used by the JSON export.
    pub fn token(self) -> &'static str {
        match self {
            MarkKind::Degradation => "degradation",
            MarkKind::FaultInjected => "fault_injected",
            MarkKind::TunerTrial => "tuner_trial",
            MarkKind::TunerWinner => "tuner_winner",
            MarkKind::Recovery => "recovery",
            MarkKind::Serve => "serve",
            MarkKind::Resume => "resume",
        }
    }

    /// Inverse of [`token`](Self::token).
    pub fn from_token(tok: &str) -> Option<Self> {
        match tok {
            "degradation" => Some(MarkKind::Degradation),
            "fault_injected" => Some(MarkKind::FaultInjected),
            "tuner_trial" => Some(MarkKind::TunerTrial),
            "tuner_winner" => Some(MarkKind::TunerWinner),
            "recovery" => Some(MarkKind::Recovery),
            "serve" => Some(MarkKind::Serve),
            "resume" => Some(MarkKind::Resume),
            _ => None,
        }
    }
}

/// An untimed telemetry record.
#[derive(Clone, Debug, PartialEq)]
pub struct MarkEvent {
    pub kind: MarkKind,
    /// Human-readable payload (degradation reason, fault site, tuned
    /// candidate description).
    pub label: String,
    /// When the mark was recorded, ns since the collector's origin.
    pub at_ns: u64,
    /// Optional associated duration/score in nanoseconds (tuner
    /// timings).
    pub value_ns: Option<f64>,
}

/// Any recorded event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    Span(SpanEvent),
    Mark(MarkEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for r in [TraceRole::Data, TraceRole::Compute] {
            assert_eq!(TraceRole::from_token(r.token()), Some(r));
        }
        for p in [
            Phase::Load,
            Phase::Compute,
            Phase::Store,
            Phase::BarrierData,
            Phase::BarrierGlobal,
        ] {
            assert_eq!(Phase::from_token(p.token()), Some(p));
        }
        for k in [
            MarkKind::Degradation,
            MarkKind::FaultInjected,
            MarkKind::TunerTrial,
            MarkKind::TunerWinner,
            MarkKind::Recovery,
            MarkKind::Serve,
            MarkKind::Resume,
        ] {
            assert_eq!(MarkKind::from_token(k.token()), Some(k));
        }
        assert_eq!(TraceRole::from_token("gpu"), None);
        assert_eq!(Phase::from_token(""), None);
    }

    #[test]
    fn phase_classification() {
        assert!(Phase::Load.is_transfer() && Phase::Store.is_transfer());
        assert!(!Phase::Compute.is_transfer());
        assert!(Phase::BarrierData.is_barrier() && Phase::BarrierGlobal.is_barrier());
        assert!(!Phase::Load.is_barrier());
    }

    #[test]
    fn span_duration_saturates() {
        let s = SpanEvent {
            role: TraceRole::Data,
            thread: 0,
            stage: 0,
            block: 0,
            phase: Phase::Load,
            start_ns: 10,
            end_ns: 4,
        };
        assert_eq!(s.duration_ns(), 0);
    }
}
