//! Minimal generic JSON layer shared by the versioned exporters.
//!
//! Both `bwfft-trace/1` (trace reports, [`crate::json`]) and
//! `bwfft-bench/1` (benchmark records, in `bwfft-bench`) hand-roll
//! their JSON because the build environment has no serde. The schema
//! mapping lives with each schema; the generic parts — a [`Value`]
//! tree, a strict parser, and the emitter helpers that keep floats
//! shortest-round-trip and `u64` exact — live here so they are written
//! (and fuzzed) once.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (minimal — enough for the export schemas).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integer literal, kept exact: `u64` nanosecond
    /// timestamps exceed 2^53 and must not detour through f64.
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(*n),
            // The pinned non-finite sentinels emitted by [`push_f64`].
            Value::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// `Null` maps to `Some(None)`; a number to `Some(Some(v))`;
    /// anything else is a schema mismatch (`None`).
    pub fn as_opt_f64(&self) -> Option<Option<f64>> {
        match self {
            Value::Null => Some(None),
            v => v.as_f64().map(Some),
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Lexical/syntactic failure at a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Emitter helpers
// ---------------------------------------------------------------------------

/// Appends `s` as a quoted, escaped JSON string.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float with Rust's shortest representation that round-trips
/// through `str::parse::<f64>` exactly.
///
/// JSON has no literal for non-finite floats, so they are pinned to the
/// string sentinels `"NaN"`, `"Infinity"` and `"-Infinity"`;
/// [`Value::as_f64`] maps the sentinels back, so every schema parser
/// built on it round-trips non-finite values losslessly instead of
/// silently degrading them to `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

pub fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a complete JSON document, rejecting trailing data.
pub fn parse_document(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser::new(src);
    let root = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            arr.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(arr)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if self.bump() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| self.err("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control char in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input is a &str, so
                    // the bytes are valid UTF-8 by construction).
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    self.pos = start + len;
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(chunk);
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        // Plain unsigned integers stay exact (f64 truncates above
        // 2^53); anything fractional, signed or exponential is a float.
        if !text.starts_with('-') && !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<u64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse_document(r#"{"a":[1,2.5,null,true,"x\n"],"b":{}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let arr = obj["a"].as_arr().unwrap();
        assert_eq!(arr[0], Value::Int(1));
        assert_eq!(arr[1], Value::Num(2.5));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(arr[3], Value::Bool(true));
        assert_eq!(arr[4].as_str(), Some("x\n"));
        assert!(obj["b"].as_obj().unwrap().is_empty());
    }

    #[test]
    fn u64_stays_exact() {
        let big = u64::MAX;
        let v = parse_document(&format!("{{\"t\":{big}}}")).unwrap();
        assert_eq!(v.as_obj().unwrap()["t"].as_u64(), Some(big));
    }

    #[test]
    fn rejects_trailing_data() {
        assert!(parse_document("{} {}").is_err());
        assert!(parse_document("").is_err());
        assert!(parse_document("[1,").is_err());
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        let v = parse_document("[-1]").unwrap();
        let neg = &v.as_arr().unwrap()[0];
        assert_eq!(neg.as_u64(), None);
        assert_eq!(neg.as_f64(), Some(-1.0));
        assert_eq!(v.as_obj(), None);
        assert_eq!(v.as_str(), None);
    }

    #[test]
    fn emitter_helpers_round_trip() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        s.push(':');
        push_f64(&mut s, 0.1);
        s.push(':');
        push_f64(&mut s, f64::NAN);
        s.push(':');
        push_opt_f64(&mut s, None);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\":0.1:\"NaN\":null");
    }

    #[test]
    fn non_finite_floats_round_trip_through_pinned_sentinels() {
        // The pinned encoding: NaN -> "NaN", +inf -> "Infinity",
        // -inf -> "-Infinity". Every emitted document stays parseable
        // and as_f64 recovers the exact non-finite value.
        let mut s = String::new();
        s.push('[');
        push_f64(&mut s, f64::NAN);
        s.push(',');
        push_f64(&mut s, f64::INFINITY);
        s.push(',');
        push_f64(&mut s, f64::NEG_INFINITY);
        s.push(',');
        push_opt_f64(&mut s, Some(f64::NAN));
        s.push(']');
        assert_eq!(s, "[\"NaN\",\"Infinity\",\"-Infinity\",\"NaN\"]");
        let v = parse_document(&s).unwrap();
        let arr = v.as_arr().unwrap();
        assert!(arr[0].as_f64().unwrap().is_nan());
        assert_eq!(arr[1].as_f64(), Some(f64::INFINITY));
        assert_eq!(arr[2].as_f64(), Some(f64::NEG_INFINITY));
        assert!(arr[3].as_opt_f64().unwrap().unwrap().is_nan());
        // Ordinary strings still refuse numeric coercion.
        assert_eq!(Value::Str("nan".into()).as_f64(), None);
        assert_eq!(Value::Str("1.5".into()).as_f64(), None);
    }
}
