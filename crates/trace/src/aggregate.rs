//! Aggregation: raw event soup → per-stage profile.
//!
//! The accounting rules, which DESIGN.md §8 documents:
//!
//! * **Per-stage wall time** — `max(end) − min(start)` over every span
//!   attributed to the stage.
//! * **Per-phase busy time** — the length of the interval *union* of
//!   that phase's spans across threads. Unions, not sums: four data
//!   threads loading concurrently for 1 ms is 1 ms of load busy time,
//!   not 4 ms, which is what "was the memory system kept busy?" asks.
//! * **Barrier wait per role** — plain sums of the barrier-phase span
//!   durations (here each thread's wait *is* individually interesting,
//!   so thread-seconds are the right unit).
//! * **Overlap fraction** — `|T ∩ C| / min(|T|, |C|)` where `T` is the
//!   union of transfer (load+store) intervals and `C` the union of
//!   compute intervals. 1.0 means the shorter side was entirely hidden
//!   behind the longer; 0.0 means strictly serial phases (or an empty
//!   side). Clamped to `[0, 1]`.
//! * **Achieved bandwidth** — `bytes_moved / stage wall`, compared
//!   against the machine's achievable stream bandwidth when the caller
//!   provides it.

use crate::event::{MarkEvent, Phase, SpanEvent, TraceEvent, TraceRole};
use crate::json::SCHEMA_VERSION;

/// Per-stage I/O volume and work, provided by the caller (the executor
/// knows the plan; the trace only knows timing).
#[derive(Clone, Debug, PartialEq)]
pub struct StageIo {
    pub stage: usize,
    /// Total bytes the stage moves (read + write).
    pub bytes_moved: u64,
    /// Pseudo-FLOPs attributed to the stage (`5·N·log2(m)` convention).
    pub pseudo_flops: f64,
}

/// Run-level context for aggregation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMeta {
    /// Problem label, e.g. `"2048x2048"`.
    pub label: String,
    /// Executor that produced the events (`"pipelined"`, `"fused"`,
    /// `"simulated"`, ...).
    pub executor: String,
    /// Machine achievable stream bandwidth in GB/s, if known; enables
    /// the %-of-achievable roofline column.
    pub stream_gbs: Option<f64>,
    /// Per-stage I/O volumes, matched to span `stage` indices.
    pub stage_io: Vec<StageIo>,
}

/// Aggregated profile of one pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageProfile {
    pub stage: usize,
    /// `max(end) − min(start)` over the stage's spans, ns.
    pub wall_ns: u64,
    /// Interval-union busy time of each work phase, ns.
    pub load_busy_ns: u64,
    pub compute_busy_ns: u64,
    pub store_busy_ns: u64,
    /// Summed barrier-wait thread-time per role, ns.
    pub data_barrier_ns: u64,
    pub compute_barrier_ns: u64,
    /// Compute/transfer overlap fraction in `[0, 1]`.
    pub overlap_fraction: f64,
    /// Bytes moved (from [`StageIo`]); 0 when unknown.
    pub bytes_moved: u64,
    /// `bytes_moved / wall_ns` in GB/s, when both are known and nonzero.
    pub achieved_gbs: Option<f64>,
    /// Machine achievable stream bandwidth, GB/s (copied from meta).
    pub achievable_gbs: Option<f64>,
    /// `100 · achieved / achievable`, when both sides are known.
    pub percent_of_achievable: Option<f64>,
}

/// The full aggregated report — what the JSON export serializes and the
/// human-readable sink renders.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Schema tag; always [`SCHEMA_VERSION`] when built by [`aggregate`].
    pub schema: String,
    pub label: String,
    pub executor: String,
    /// `max(end) − min(start)` over *all* spans, ns.
    pub total_wall_ns: u64,
    pub stages: Vec<StageProfile>,
    /// Telemetry marks in recording order.
    pub marks: Vec<MarkEvent>,
}

impl TraceReport {
    /// Overlap fraction across all stages, weighted by stage wall time.
    /// `None` when no stage recorded any spans.
    pub fn overall_overlap_fraction(&self) -> Option<f64> {
        let wall: u64 = self.stages.iter().map(|s| s.wall_ns).sum();
        if wall == 0 {
            return None;
        }
        let weighted: f64 = self
            .stages
            .iter()
            .map(|s| s.overlap_fraction * s.wall_ns as f64)
            .sum();
        Some(weighted / wall as f64)
    }
}

/// Merge intervals into a disjoint, sorted union.
fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|&(s, e)| e > s);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of a disjoint interval list.
fn union_len(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|&(s, e)| e - s).sum()
}

/// Length of the intersection of two disjoint, sorted interval lists.
fn intersection_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Compute the overlap fraction from transfer and compute interval
/// unions. Public for the property tests.
pub fn overlap_fraction(transfer: &[(u64, u64)], compute: &[(u64, u64)]) -> f64 {
    let t = union_len(transfer);
    let c = union_len(compute);
    let shorter = t.min(c);
    if shorter == 0 {
        return 0.0;
    }
    let both = intersection_len(transfer, compute);
    (both as f64 / shorter as f64).clamp(0.0, 1.0)
}

/// Aggregate recorded events into a [`TraceReport`].
///
/// Span stage indices select the matching [`StageIo`] entry of `meta`
/// (missing entries just lose the bandwidth columns). Marks pass
/// through in recording order.
pub fn aggregate(events: &[TraceEvent], meta: &RunMeta) -> TraceReport {
    let mut spans: Vec<&SpanEvent> = Vec::new();
    let mut marks: Vec<MarkEvent> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::Span(s) => spans.push(s),
            TraceEvent::Mark(m) => marks.push(m.clone()),
        }
    }

    let total_wall_ns = wall_of(spans.iter().map(|s| (s.start_ns, s.end_ns)));

    let mut stage_ids: Vec<usize> = spans.iter().map(|s| s.stage).collect();
    stage_ids.sort_unstable();
    stage_ids.dedup();

    let stages = stage_ids
        .into_iter()
        .map(|stage| {
            let ss: Vec<&&SpanEvent> = spans.iter().filter(|s| s.stage == stage).collect();
            let wall_ns = wall_of(ss.iter().map(|s| (s.start_ns, s.end_ns)));

            let phase_union = |phase: Phase| {
                merge_intervals(
                    ss.iter()
                        .filter(|s| s.phase == phase)
                        .map(|s| (s.start_ns, s.end_ns))
                        .collect(),
                )
            };
            let load = phase_union(Phase::Load);
            let store = phase_union(Phase::Store);
            let compute = phase_union(Phase::Compute);
            let transfer = merge_intervals(
                load.iter().chain(store.iter()).copied().collect::<Vec<_>>(),
            );

            let barrier_sum = |role: TraceRole| {
                ss.iter()
                    .filter(|s| s.role == role && s.phase.is_barrier())
                    .map(|s| s.duration_ns())
                    .sum::<u64>()
            };

            let io = meta.stage_io.iter().find(|io| io.stage == stage);
            let bytes_moved = io.map(|io| io.bytes_moved).unwrap_or(0);
            let achieved_gbs = if bytes_moved > 0 && wall_ns > 0 {
                // bytes/ns == GB/s.
                Some(bytes_moved as f64 / wall_ns as f64)
            } else {
                None
            };
            let achievable_gbs = meta.stream_gbs.filter(|bw| *bw > 0.0);
            let percent_of_achievable = match (achieved_gbs, achievable_gbs) {
                (Some(a), Some(b)) => Some(100.0 * a / b),
                _ => None,
            };

            StageProfile {
                stage,
                wall_ns,
                load_busy_ns: union_len(&load),
                compute_busy_ns: union_len(&compute),
                store_busy_ns: union_len(&store),
                data_barrier_ns: barrier_sum(TraceRole::Data),
                compute_barrier_ns: barrier_sum(TraceRole::Compute),
                overlap_fraction: overlap_fraction(&transfer, &compute),
                bytes_moved,
                achieved_gbs,
                achievable_gbs,
                percent_of_achievable,
            }
        })
        .collect();

    TraceReport {
        schema: SCHEMA_VERSION.to_string(),
        label: meta.label.clone(),
        executor: meta.executor.clone(),
        total_wall_ns,
        stages,
        marks,
    }
}

fn wall_of(iv: impl Iterator<Item = (u64, u64)>) -> u64 {
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    let mut any = false;
    for (s, e) in iv {
        any = true;
        lo = lo.min(s);
        hi = hi.max(e);
    }
    if any {
        hi.saturating_sub(lo)
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MarkKind;

    fn span(
        role: TraceRole,
        thread: usize,
        stage: usize,
        phase: Phase,
        start_ns: u64,
        end_ns: u64,
    ) -> TraceEvent {
        TraceEvent::Span(SpanEvent {
            role,
            thread,
            stage,
            block: 0,
            phase,
            start_ns,
            end_ns,
        })
    }

    #[test]
    fn interval_union_merges_overlaps() {
        let u = merge_intervals(vec![(0, 10), (5, 15), (20, 30), (30, 31), (40, 40)]);
        assert_eq!(u, vec![(0, 15), (20, 31)]);
        assert_eq!(union_len(&u), 26);
    }

    #[test]
    fn intersection_two_pointer() {
        let a = vec![(0, 10), (20, 30)];
        let b = vec![(5, 25)];
        assert_eq!(intersection_len(&a, &b), 5 + 5);
        assert_eq!(intersection_len(&a, &[]), 0);
    }

    #[test]
    fn overlap_fraction_bounds() {
        // Fully hidden transfer: transfer ⊂ compute.
        assert_eq!(overlap_fraction(&[(10, 20)], &[(0, 100)]), 1.0);
        // Strictly serial.
        assert_eq!(overlap_fraction(&[(0, 10)], &[(10, 20)]), 0.0);
        // Empty side.
        assert_eq!(overlap_fraction(&[], &[(0, 10)]), 0.0);
        // Half overlap against the shorter (transfer) side.
        let f = overlap_fraction(&[(0, 10)], &[(5, 100)]);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_two_stage_run() {
        // Stage 0: data thread loads [0,100), stores [100,150);
        //          compute thread computes [40,140) → transfer = 150ns
        //          union, compute = 100ns union, both-busy = [40,100) ∪
        //          [100,140) = 100ns → overlap = 100/100 = 1.0.
        let events = vec![
            span(TraceRole::Data, 0, 0, Phase::Load, 0, 100),
            span(TraceRole::Data, 0, 0, Phase::Store, 100, 150),
            span(TraceRole::Compute, 0, 0, Phase::Compute, 40, 140),
            span(TraceRole::Data, 0, 0, Phase::BarrierData, 150, 160),
            span(TraceRole::Compute, 0, 0, Phase::BarrierGlobal, 140, 160),
            // Stage 1: serial load then compute.
            span(TraceRole::Data, 0, 1, Phase::Load, 200, 240),
            span(TraceRole::Compute, 0, 1, Phase::Compute, 240, 300),
        ];
        let meta = RunMeta {
            label: "test".into(),
            executor: "pipelined".into(),
            stream_gbs: Some(100.0),
            stage_io: vec![
                StageIo {
                    stage: 0,
                    bytes_moved: 16_000,
                    pseudo_flops: 1.0,
                },
                StageIo {
                    stage: 1,
                    bytes_moved: 16_000,
                    pseudo_flops: 1.0,
                },
            ],
        };
        let rep = aggregate(&events, &meta);
        assert_eq!(rep.schema, SCHEMA_VERSION);
        assert_eq!(rep.total_wall_ns, 300);
        assert_eq!(rep.stages.len(), 2);

        let s0 = &rep.stages[0];
        assert_eq!(s0.wall_ns, 160);
        assert_eq!(s0.load_busy_ns, 100);
        assert_eq!(s0.store_busy_ns, 50);
        assert_eq!(s0.compute_busy_ns, 100);
        assert_eq!(s0.data_barrier_ns, 10);
        assert_eq!(s0.compute_barrier_ns, 20);
        assert!((s0.overlap_fraction - 1.0).abs() < 1e-12);
        // 16000 bytes / 160 ns = 100 GB/s = 100% of achievable.
        assert!((s0.achieved_gbs.unwrap() - 100.0).abs() < 1e-9);
        assert!((s0.percent_of_achievable.unwrap() - 100.0).abs() < 1e-9);

        let s1 = &rep.stages[1];
        assert_eq!(s1.wall_ns, 100);
        assert_eq!(s1.overlap_fraction, 0.0);

        // Stage walls sum ≤ total wall (they're disjoint here: 160+100 ≤ 300).
        let sum: u64 = rep.stages.iter().map(|s| s.wall_ns).sum();
        assert!(sum <= rep.total_wall_ns);

        let overall = rep.overall_overlap_fraction().unwrap();
        assert!((overall - (1.0 * 160.0) / 260.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_empty_and_marks_only() {
        let meta = RunMeta::default();
        let rep = aggregate(&[], &meta);
        assert_eq!(rep.total_wall_ns, 0);
        assert!(rep.stages.is_empty());
        assert_eq!(rep.overall_overlap_fraction(), None);

        let events = vec![TraceEvent::Mark(MarkEvent {
            kind: MarkKind::FaultInjected,
            label: "panic@data".into(),
            at_ns: 5,
            value_ns: None,
        })];
        let rep = aggregate(&events, &meta);
        assert_eq!(rep.marks.len(), 1);
        assert!(rep.stages.is_empty());
    }

    #[test]
    fn missing_stage_io_drops_bandwidth_columns() {
        let events = vec![span(TraceRole::Data, 0, 3, Phase::Load, 0, 10)];
        let rep = aggregate(&events, &RunMeta::default());
        let s = &rep.stages[0];
        assert_eq!(s.stage, 3);
        assert_eq!(s.bytes_moved, 0);
        assert_eq!(s.achieved_gbs, None);
        assert_eq!(s.percent_of_achievable, None);
    }
}
