//! Span collection: a shared sink plus per-thread recorders.
//!
//! The hot-path contract is the one the tentpole demands: worker
//! threads never touch a lock while recording. Each worker owns a
//! [`ThreadTracer`] that buffers events into a thread-local `Vec` and
//! flushes into the shared [`TraceCollector`] exactly once, when the
//! worker finishes. A *disabled* tracer (built from `None`) costs one
//! branch per would-be span and never reads the clock.

use std::sync::Mutex;
use std::time::Instant;

use crate::event::{MarkEvent, MarkKind, Phase, SpanEvent, TraceEvent, TraceRole};

/// Shared sink for one profiled run.
///
/// Cheap to share as `Arc<TraceCollector>`; worker threads only lock
/// the sink once each (at flush), so contention is negligible.
pub struct TraceCollector {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.events.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("TraceCollector").field("events", &n).finish()
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A fresh collector whose time origin is "now".
    pub fn new() -> Self {
        TraceCollector {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds elapsed since the collector's origin.
    pub fn now_ns(&self) -> u64 {
        elapsed_ns(self.origin, Instant::now())
    }

    /// Convert an instant captured by a [`ThreadTracer`] to origin-relative ns.
    fn ns_of(&self, at: Instant) -> u64 {
        elapsed_ns(self.origin, at)
    }

    /// Append a batch of events (one lock acquisition).
    pub fn absorb(&self, batch: Vec<TraceEvent>) {
        if batch.is_empty() {
            return;
        }
        if let Ok(mut sink) = self.events.lock() {
            sink.extend(batch);
        }
    }

    /// Record an untimed telemetry mark (degradation, fault, tuner
    /// trial). Marks are rare, so locking here is fine.
    pub fn mark(&self, kind: MarkKind, label: impl Into<String>, value_ns: Option<f64>) {
        let ev = TraceEvent::Mark(MarkEvent {
            kind,
            label: label.into(),
            at_ns: self.now_ns(),
            value_ns,
        });
        if let Ok(mut sink) = self.events.lock() {
            sink.push(ev);
        }
    }

    /// Drain all recorded events, leaving the collector empty (the
    /// origin is kept, so a collector can be reused across executor
    /// stages within one run).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .map(|mut e| std::mem::take(&mut *e))
            .unwrap_or_default()
    }

    /// Copy of the recorded events without draining.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().map(|e| e.len()).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn elapsed_ns(origin: Instant, at: Instant) -> u64 {
    // `checked_duration_since` so an instant captured before the origin
    // (possible only through API misuse) clamps to zero instead of
    // panicking.
    at.checked_duration_since(origin)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// One worker thread's recorder.
///
/// Disabled (`collector == None`) every method is a single branch;
/// [`start`](Self::start) returns `None` without reading the clock, so
/// the span bodies in the pipeline cost nothing measurable.
pub struct ThreadTracer<'c> {
    collector: Option<&'c TraceCollector>,
    role: TraceRole,
    thread: usize,
    stage: usize,
    local: Vec<TraceEvent>,
}

impl<'c> ThreadTracer<'c> {
    /// A tracer for one `(role, thread)` worker in pipeline `stage`.
    /// Pass `None` to get the disabled near-no-op form.
    pub fn new(
        collector: Option<&'c TraceCollector>,
        role: TraceRole,
        thread: usize,
        stage: usize,
    ) -> Self {
        ThreadTracer {
            collector,
            role,
            thread,
            stage,
            // Pre-size the buffer when enabled so the per-span push
            // never reallocates mid-pipeline (64 covers typical
            // blocks-per-thread with barrier spans included).
            local: if collector.is_some() {
                Vec::with_capacity(64)
            } else {
                Vec::new()
            },
        }
    }

    /// True when spans will actually be kept.
    pub fn enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Begin a span: returns the clock sample to hand back to
    /// [`finish`](Self::finish), or `None` when tracing is disabled
    /// (no clock call at all).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.collector.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// End a span begun with [`start`](Self::start). `started == None`
    /// (disabled tracer) is a no-op.
    #[inline]
    pub fn finish(&mut self, started: Option<Instant>, phase: Phase, block: usize) {
        let (Some(collector), Some(started)) = (self.collector, started) else {
            return;
        };
        let end = Instant::now();
        self.local.push(TraceEvent::Span(SpanEvent {
            role: self.role,
            thread: self.thread,
            stage: self.stage,
            block,
            phase,
            start_ns: collector.ns_of(started),
            end_ns: collector.ns_of(end),
        }));
    }

    /// Number of locally buffered events (test hook).
    pub fn buffered(&self) -> usize {
        self.local.len()
    }

    /// Flush the local buffer into the shared collector. Called from
    /// `Drop` too, so explicit calls are optional but let callers
    /// control the flush point.
    pub fn flush(&mut self) {
        if let Some(collector) = self.collector {
            if !self.local.is_empty() {
                collector.absorb(std::mem::take(&mut self.local));
            }
        }
    }
}

impl Drop for ThreadTracer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = ThreadTracer::new(None, TraceRole::Data, 0, 0);
        assert!(!t.enabled());
        let s = t.start();
        assert!(s.is_none());
        t.finish(s, Phase::Load, 0);
        assert_eq!(t.buffered(), 0);
    }

    #[test]
    fn spans_flush_once_into_collector() {
        let c = TraceCollector::new();
        {
            let mut t = ThreadTracer::new(Some(&c), TraceRole::Compute, 2, 1);
            assert!(t.enabled());
            for blk in 0..3 {
                let s = t.start();
                assert!(s.is_some());
                t.finish(s, Phase::Compute, blk);
            }
            assert_eq!(t.buffered(), 3);
            assert!(c.is_empty(), "nothing flushed before drop/flush");
        }
        let events = c.take_events();
        assert_eq!(events.len(), 3);
        for (i, ev) in events.iter().enumerate() {
            match ev {
                TraceEvent::Span(s) => {
                    assert_eq!(s.role, TraceRole::Compute);
                    assert_eq!(s.thread, 2);
                    assert_eq!(s.stage, 1);
                    assert_eq!(s.block, i);
                    assert_eq!(s.phase, Phase::Compute);
                    assert!(s.end_ns >= s.start_ns);
                }
                TraceEvent::Mark(_) => panic!("unexpected mark"),
            }
        }
        assert!(c.is_empty(), "take_events drains");
    }

    #[test]
    fn marks_record_immediately() {
        let c = TraceCollector::new();
        c.mark(MarkKind::Degradation, "pinning denied", None);
        c.mark(MarkKind::TunerTrial, "mu=4096 r4", Some(1234.5));
        let events = c.snapshot();
        assert_eq!(events.len(), 2);
        match &events[1] {
            TraceEvent::Mark(m) => {
                assert_eq!(m.kind, MarkKind::TunerTrial);
                assert_eq!(m.label, "mu=4096 r4");
                assert_eq!(m.value_ns, Some(1234.5));
            }
            TraceEvent::Span(_) => panic!("expected mark"),
        }
        assert_eq!(c.len(), 2, "snapshot does not drain");
    }

    #[test]
    fn timestamps_are_monotone_wrt_origin() {
        let c = TraceCollector::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
