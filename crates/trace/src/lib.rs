//! `bwfft-trace` — the observability layer.
//!
//! The paper's argument is an *accounting* argument: soft-DMA double
//! buffering hides memory latency behind compute, lifting stages from
//! ~47% to 80–90% of the bandwidth-derived achievable peak. This crate
//! records where the time actually goes so that claim is measurable on
//! a real run, not just asserted by the model:
//!
//! * [`collect`] — a per-thread span recorder. Worker threads buffer
//!   [`event::SpanEvent`]s locally (no locks, no allocation beyond the
//!   local `Vec`) and flush once when they finish; a disabled collector
//!   costs one branch per would-be span and never calls the clock.
//! * [`event`] — the event model: timed spans keyed by
//!   `(role, thread, stage, block, phase)` plus untimed [`event::MarkEvent`]s
//!   for degradations, fault-injection outcomes and tuner telemetry.
//! * [`aggregate`] — turns a raw event soup into a [`TraceReport`]:
//!   per-stage wall time, per-phase busy time (as interval *unions*, so
//!   parallel threads don't double-count), barrier-wait time per role,
//!   the compute/transfer overlap fraction, and achieved vs. achievable
//!   bandwidth.
//! * [`json`] — a versioned, dependency-free JSON export
//!   ([`json::SCHEMA_VERSION`]) with a parser that round-trips the
//!   report losslessly (property-tested).
//! * [`value`] — the generic JSON value/parser/emitter layer the
//!   schema above is mapped over; `bwfft-bench` reuses it for its
//!   `bwfft-bench/1` benchmark records.
//! * [`report`] — the human-readable roofline/overlap summary
//!   (`Display` on [`TraceReport`]).
//!
//! The crate is deliberately dependency-free: `bwfft-pipeline` and both
//! executors in `bwfft-core` record into it, and the CLI's
//! `--profile[=json]` renders it.

pub mod aggregate;
pub mod collect;
pub mod event;
pub mod json;
pub mod report;
pub mod value;

pub use aggregate::{aggregate, RunMeta, StageIo, StageProfile, TraceReport};
pub use collect::{ThreadTracer, TraceCollector};
pub use event::{MarkEvent, MarkKind, Phase, SpanEvent, TraceEvent, TraceRole};
pub use json::SCHEMA_VERSION;
