//! Typed admission verdicts: why a request was refused at the door.
//!
//! Load shedding is only usable if the caller can tell *which* limit it
//! hit — a full queue asks for backpressure, an exhausted byte budget
//! asks for smaller requests, an open breaker asks for time. Every
//! rejection therefore carries a [`RejectReason`], and usage mistakes
//! (malformed request descriptors) are kept apart from overload so the
//! CLI can keep its usage-versus-runtime exit-code discipline.

use bwfft_core::PlanError;
use bwfft_num::AllocError;

/// Why [`submit`](crate::FftServer::submit) refused to admit a request.
///
/// All reasons are load shedding: the request never entered the queue
/// and consumed no pooled memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue is at capacity.
    QueueFull { depth: usize, capacity: usize },
    /// Admitting the request's working set would exceed the configured
    /// in-flight byte budget.
    ByteBudget(AllocError),
    /// The buffer pool could not supply the request's working set even
    /// after evicting idle shelves.
    PoolExhausted(AllocError),
    /// The degradation governor is open: the service rejects fast until
    /// a probe request succeeds.
    BreakerOpen,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request's per-request [`RetryPolicy`] override asks for a
    /// bigger recovery budget than the server's configured ceiling —
    /// admitting it would let one caller buy unbounded retry work.
    ///
    /// [`RetryPolicy`]: bwfft_core::RetryPolicy
    RetryBudget { requested: usize, ceiling: usize },
}

impl RejectReason {
    /// Short stable token for counters, trace marks, and JSON records.
    pub fn token(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::ByteBudget(_) => "byte_budget",
            RejectReason::PoolExhausted(_) => "pool_exhausted",
            RejectReason::BreakerOpen => "breaker_open",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::RetryBudget { .. } => "retry_budget",
        }
    }
}

impl core::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity})")
            }
            RejectReason::ByteBudget(e) => {
                write!(f, "in-flight byte budget exhausted ({e})")
            }
            RejectReason::PoolExhausted(e) => write!(f, "buffer pool exhausted ({e})"),
            RejectReason::BreakerOpen => f.write_str("circuit breaker open"),
            RejectReason::ShuttingDown => f.write_str("server shutting down"),
            RejectReason::RetryBudget { requested, ceiling } => write!(
                f,
                "requested retry budget ({requested} attempts/tier) exceeds \
                 the server ceiling ({ceiling})"
            ),
        }
    }
}

/// A [`submit`](crate::FftServer::submit) error.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control shed the request. This is the overload
    /// contract working as designed, not a fault.
    Rejected { reason: RejectReason },
    /// The request descriptor itself is malformed (plan construction
    /// failed or the payload length disagrees with the dimensions).
    /// Retrying an identical request cannot succeed.
    InvalidRequest { error: PlanError },
    /// The request payload has the wrong number of elements for its
    /// dimensions.
    InputLength { expected: usize, got: usize },
}

impl ServeError {
    /// True for errors that are the caller's mistake rather than the
    /// service's load state — the CLI maps these to usage exits.
    pub fn is_usage(&self) -> bool {
        matches!(
            self,
            ServeError::InvalidRequest { .. } | ServeError::InputLength { .. }
        )
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Rejected { reason } => write!(f, "request rejected: {reason}"),
            ServeError::InvalidRequest { error } => write!(f, "invalid request: {error}"),
            ServeError::InputLength { expected, got } => {
                write!(f, "input of {got} elements does not match dims ({expected})")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_have_stable_tokens_and_render() {
        let reasons = [
            RejectReason::QueueFull {
                depth: 4,
                capacity: 4,
            },
            RejectReason::ByteBudget(AllocError {
                what: "serve admission",
                bytes: 1024,
            }),
            RejectReason::PoolExhausted(AllocError {
                what: "buffer pool",
                bytes: 2048,
            }),
            RejectReason::BreakerOpen,
            RejectReason::ShuttingDown,
            RejectReason::RetryBudget {
                requested: 9,
                ceiling: 4,
            },
        ];
        let tokens: Vec<_> = reasons.iter().map(RejectReason::token).collect();
        assert_eq!(
            tokens,
            [
                "queue_full",
                "byte_budget",
                "pool_exhausted",
                "breaker_open",
                "shutting_down",
                "retry_budget"
            ]
        );
        for r in &reasons {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn usage_errors_are_distinguished_from_load_shedding() {
        let shed = ServeError::Rejected {
            reason: RejectReason::BreakerOpen,
        };
        let usage = ServeError::InputLength {
            expected: 512,
            got: 511,
        };
        assert!(!shed.is_usage());
        assert!(usage.is_usage());
        assert!(usage.to_string().contains("511"));
    }
}
