//! Request descriptors, tickets, and per-request outcomes.
//!
//! A request is a `plan_many`-style descriptor — it names the
//! transform (dimensions, direction, buffer, thread split) separately
//! from the payload, so the server can key plan and buffer caches on
//! the shape alone. Submission returns a [`Ticket`]; the overload
//! contract guarantees every admitted ticket resolves to **exactly
//! one** [`RequestOutcome`].

use bwfft_core::{CoreError, Dims, RecoveryTier, RetryPolicy};
use bwfft_kernels::Direction;
use bwfft_num::Complex64;
use bwfft_pipeline::{FaultPlan, IntegrityConfig};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One FFT request: the transform descriptor plus its payload.
///
/// Built with [`FftRequest::new`] and chained setters; unset knobs use
/// the planner's defaults (forward direction, default buffer sizing,
/// one data and one compute thread).
#[derive(Clone, Debug)]
pub struct FftRequest {
    pub dims: Dims,
    pub dir: Direction,
    /// Buffer half size in elements; 0 picks the planner default.
    pub buffer_elems: usize,
    /// `(p_d, p_c)` — data and compute threads for the pipelined tier.
    pub threads: (usize, usize),
    /// The signal to transform; must hold exactly `dims.total()`
    /// elements. Returned (transformed) in the completed outcome, so a
    /// steady-state round trip allocates nothing.
    pub input: Vec<Complex64>,
    /// Deadline relative to submission; `None` uses the server default.
    pub deadline: Option<Duration>,
    /// Deterministic fault injection for chaos runs.
    pub fault: Option<FaultPlan>,
    /// Per-request recovery budget, replacing the server's
    /// [`ServeConfig::retry`](crate::ServeConfig) default. Admission
    /// rejects (`retry_budget`) policies whose `max_attempts` exceeds
    /// the server's configured ceiling: one caller must not be able to
    /// buy unbounded retry work.
    pub retry: Option<RetryPolicy>,
    /// Per-request integrity guard set, replacing the server default —
    /// a caller with an untrusted payload can arm the full guard set
    /// for just that request.
    pub integrity: Option<IntegrityConfig>,
    /// Per-request whole-run Parseval/energy check override.
    pub verify_energy: Option<bool>,
}

impl FftRequest {
    pub fn new(dims: Dims, input: Vec<Complex64>) -> Self {
        FftRequest {
            dims,
            dir: Direction::Forward,
            buffer_elems: 0,
            threads: (1, 1),
            input,
            deadline: None,
            fault: None,
            retry: None,
            integrity: None,
            verify_energy: None,
        }
    }

    pub fn direction(mut self, dir: Direction) -> Self {
        self.dir = dir;
        self
    }

    pub fn buffer_elems(mut self, b: usize) -> Self {
        self.buffer_elems = b;
        self
    }

    pub fn threads(mut self, p_d: usize, p_c: usize) -> Self {
        self.threads = (p_d, p_c);
        self
    }

    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    pub fn integrity(mut self, cfg: IntegrityConfig) -> Self {
        self.integrity = Some(cfg);
        self
    }

    pub fn verify_energy(mut self, on: bool) -> Self {
        self.verify_energy = Some(on);
        self
    }

    /// Bytes of pooled working set this request holds while in flight
    /// (the data array plus the work array).
    pub fn working_bytes(&self) -> usize {
        2 * self.dims.total() * core::mem::size_of::<Complex64>()
    }
}

/// How one admitted request ended. Exactly one of these is delivered
/// per ticket.
#[derive(Debug)]
pub enum RequestOutcome {
    /// The transform ran to completion (and, when the caller verifies,
    /// against the reference oracle).
    Completed {
        /// The transformed payload — the same allocation the request
        /// carried in.
        output: Vec<Complex64>,
        /// Executor tier that produced the answer.
        tier: RecoveryTier,
        /// True when the supervisor needed any recovery step.
        recovered: bool,
        /// Submission-to-completion latency.
        latency: Duration,
    },
    /// The deadline fired while the request was queued or running; the
    /// worker observed the cancellation token and freed itself.
    DeadlineExceeded { latency: Duration },
    /// Execution failed with a typed error after the recovery ladder
    /// was exhausted.
    Failed {
        error: CoreError,
        latency: Duration,
    },
}

impl RequestOutcome {
    /// Short stable token for counters and reports.
    pub fn token(&self) -> &'static str {
        match self {
            RequestOutcome::Completed { .. } => "completed",
            RequestOutcome::DeadlineExceeded { .. } => "deadline_exceeded",
            RequestOutcome::Failed { .. } => "failed",
        }
    }

    /// Submission-to-termination latency, whatever the verdict.
    pub fn latency(&self) -> Duration {
        match self {
            RequestOutcome::Completed { latency, .. }
            | RequestOutcome::DeadlineExceeded { latency }
            | RequestOutcome::Failed { latency, .. } => *latency,
        }
    }
}

/// The slot a worker delivers a request's outcome into.
pub(crate) struct OutcomeCell {
    slot: Mutex<Option<RequestOutcome>>,
    ready: Condvar,
}

impl OutcomeCell {
    pub(crate) fn new() -> Arc<OutcomeCell> {
        Arc::new(OutcomeCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    pub(crate) fn deliver(&self, outcome: RequestOutcome) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "second outcome for one request");
        *slot = Some(outcome);
        self.ready.notify_all();
    }

    fn take_blocking(&self) -> RequestOutcome {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Handle to one admitted request.
pub struct Ticket {
    /// Server-assigned request id (1-based, unique per server). The
    /// same id keys the request's metrics phase timings and its
    /// flight-recorder entry, so a dumped span tree reconciles with the
    /// ticket's outcome.
    pub(crate) id: u64,
    pub(crate) cell: Arc<OutcomeCell>,
}

impl Ticket {
    /// The server-assigned request id (matches the `id` field of this
    /// request's `bwfft-flight/1` entry, when the flight recorder is
    /// armed).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request terminates and returns its single
    /// outcome. Always returns: the drain contract delivers an outcome
    /// for every admitted request, including across shutdown.
    pub fn wait(self) -> RequestOutcome {
        self.cell.take_blocking()
    }
}

impl core::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_setters_compose() {
        let req = FftRequest::new(Dims::d2(16, 32), vec![Complex64::default(); 512])
            .direction(Direction::Inverse)
            .buffer_elems(128)
            .threads(2, 2)
            .deadline(Duration::from_millis(5));
        assert_eq!(req.dir, Direction::Inverse);
        assert_eq!(req.buffer_elems, 128);
        assert_eq!(req.threads, (2, 2));
        assert_eq!(req.deadline, Some(Duration::from_millis(5)));
        // data + work, 16 bytes per element.
        assert_eq!(req.working_bytes(), 2 * 512 * 16);
    }

    #[test]
    fn ticket_delivers_exactly_one_outcome_across_threads() {
        let cell = OutcomeCell::new();
        let ticket = Ticket {
            id: 7,
            cell: Arc::clone(&cell),
        };
        assert_eq!(ticket.id(), 7);
        let deliverer = std::thread::spawn(move || {
            cell.deliver(RequestOutcome::DeadlineExceeded {
                latency: Duration::from_millis(1),
            });
        });
        let outcome = ticket.wait();
        assert_eq!(outcome.token(), "deadline_exceeded");
        assert_eq!(outcome.latency(), Duration::from_millis(1));
        deliverer.join().unwrap();
    }
}
