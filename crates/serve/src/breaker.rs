//! The degradation governor: a circuit breaker over the recovery
//! ladder.
//!
//! Where the per-request [`Supervisor`](bwfft_core::Supervisor)
//! escalates *one run* down the tier ladder, the breaker remembers how
//! the last few requests went and moves the *whole service* down the
//! same ladder: consecutive failures (integrity trips, exhausted retry
//! budgets, deadline misses) degrade new admissions from the pipelined
//! executor to fused, then to the reference executor, and finally to
//! reject-fast ([`BreakerLevel::Open`]). Recovery is by **count-based
//! half-open probing**: while open, every `probe_interval`-th
//! submission is admitted as a probe at the reference tier; a probe
//! success steps the breaker back up, and further consecutive successes
//! walk it back to normal. Counting submissions (rather than a
//! wall-clock cool-down) keeps the state machine deterministic under a
//! seeded load, which is what the chaos matrix replays.

use bwfft_core::RecoveryTier;
use std::sync::{Mutex, MutexGuard};

/// The breaker's position on the degradation ladder. The first three
/// levels map onto [`RecoveryTier`]; `Open` admits only probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BreakerLevel {
    /// Full service: requests start on the pipelined executor.
    Normal,
    /// Degraded: requests start on the single-threaded fused executor.
    Fused,
    /// Heavily degraded: requests run the reference executor only.
    Reference,
    /// Reject-fast: no work admitted except half-open probes.
    Open,
}

impl BreakerLevel {
    /// The executor tier requests admitted at this level start on;
    /// `None` when open (nothing is admitted).
    pub fn tier(self) -> Option<RecoveryTier> {
        match self {
            BreakerLevel::Normal => Some(RecoveryTier::Pipelined),
            BreakerLevel::Fused => Some(RecoveryTier::Fused),
            BreakerLevel::Reference => Some(RecoveryTier::Reference),
            BreakerLevel::Open => None,
        }
    }

    /// Short stable token for reports and trace marks.
    pub fn token(self) -> &'static str {
        match self {
            BreakerLevel::Normal => "normal",
            BreakerLevel::Fused => "fused",
            BreakerLevel::Reference => "reference",
            BreakerLevel::Open => "open",
        }
    }

    fn degraded(self) -> BreakerLevel {
        match self {
            BreakerLevel::Normal => BreakerLevel::Fused,
            BreakerLevel::Fused => BreakerLevel::Reference,
            _ => BreakerLevel::Open,
        }
    }

    fn restored(self) -> BreakerLevel {
        match self {
            BreakerLevel::Open => BreakerLevel::Reference,
            BreakerLevel::Reference => BreakerLevel::Fused,
            _ => BreakerLevel::Normal,
        }
    }
}

impl core::fmt::Display for BreakerLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.token())
    }
}

/// Thresholds of the breaker state machine.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive request failures that trip the breaker one level
    /// down (≥ 1).
    pub failure_threshold: usize,
    /// Consecutive successes that step a degraded (but not open)
    /// breaker one level up (≥ 1).
    pub success_threshold: usize,
    /// While open, every `probe_interval`-th submission is admitted as
    /// a half-open probe instead of being rejected (≥ 1).
    pub probe_interval: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            success_threshold: 2,
            probe_interval: 4,
        }
    }
}

/// One recorded breaker state change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerTransition {
    pub from: BreakerLevel,
    pub to: BreakerLevel,
    /// What forced the change ("consecutive failures", "probe
    /// success", "consecutive successes").
    pub trigger: &'static str,
}

impl core::fmt::Display for BreakerTransition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "breaker {} -> {} ({})", self.from, self.to, self.trigger)
    }
}

/// What the breaker says about one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admit, starting execution at `tier`. `probe` marks a half-open
    /// probe admitted through an otherwise-open breaker.
    Admit { tier: RecoveryTier, probe: bool },
    /// Reject fast: the breaker is open and this submission is not a
    /// probe slot.
    Reject,
}

struct BreakerState {
    level: BreakerLevel,
    consecutive_failures: usize,
    consecutive_successes: usize,
    /// Submissions seen while open since the last probe slot.
    since_probe: usize,
    transitions: Vec<BreakerTransition>,
}

/// The shared breaker. All methods take `&self`; clones of the owning
/// server share one instance behind an `Arc`.
pub struct Breaker {
    cfg: BreakerConfig,
    state: Mutex<BreakerState>,
}

fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg: BreakerConfig {
                failure_threshold: cfg.failure_threshold.max(1),
                success_threshold: cfg.success_threshold.max(1),
                probe_interval: cfg.probe_interval.max(1),
            },
            state: Mutex::new(BreakerState {
                level: BreakerLevel::Normal,
                consecutive_failures: 0,
                consecutive_successes: 0,
                since_probe: 0,
                transitions: Vec::new(),
            }),
        }
    }

    /// Admission decision for one submission. Counts probe slots while
    /// open, so calling this *is* the submission from the breaker's
    /// point of view.
    pub fn admit(&self) -> Admission {
        let mut s = lock_tolerant(&self.state);
        match s.level {
            BreakerLevel::Open => {
                s.since_probe += 1;
                if s.since_probe >= self.cfg.probe_interval {
                    s.since_probe = 0;
                    Admission::Admit {
                        tier: RecoveryTier::Reference,
                        probe: true,
                    }
                } else {
                    Admission::Reject
                }
            }
            level => Admission::Admit {
                // `tier()` is Some for every non-open level.
                tier: level.tier().unwrap_or(RecoveryTier::Reference),
                probe: false,
            },
        }
    }

    /// Records a completed request. Returns the transition when the
    /// success stepped the breaker up a level (probe success from open,
    /// or `success_threshold` consecutive successes elsewhere).
    pub fn on_success(&self) -> Option<BreakerTransition> {
        let mut s = lock_tolerant(&self.state);
        s.consecutive_failures = 0;
        if s.level == BreakerLevel::Open {
            // A half-open probe came back healthy: admit real work
            // again, but start it on the reference tier.
            s.consecutive_successes = 0;
            return Some(record(&mut s, BreakerLevel::Reference, "probe success"));
        }
        s.consecutive_successes += 1;
        if s.consecutive_successes >= self.cfg.success_threshold && s.level != BreakerLevel::Normal
        {
            s.consecutive_successes = 0;
            let to = s.level.restored();
            return Some(record(&mut s, to, "consecutive successes"));
        }
        None
    }

    /// Records a failed request (typed failure or deadline miss).
    /// Returns the transition when the failure tripped the breaker a
    /// level down.
    pub fn on_failure(&self) -> Option<BreakerTransition> {
        let mut s = lock_tolerant(&self.state);
        s.consecutive_successes = 0;
        if s.level == BreakerLevel::Open {
            // A failed probe: stay open, wait for the next probe slot.
            return None;
        }
        s.consecutive_failures += 1;
        if s.consecutive_failures >= self.cfg.failure_threshold {
            s.consecutive_failures = 0;
            let to = s.level.degraded();
            return Some(record(&mut s, to, "consecutive failures"));
        }
        None
    }

    /// The current level.
    pub fn level(&self) -> BreakerLevel {
        lock_tolerant(&self.state).level
    }

    /// Every transition taken so far, in order.
    pub fn transitions(&self) -> Vec<BreakerTransition> {
        lock_tolerant(&self.state).transitions.clone()
    }
}

fn record(s: &mut BreakerState, to: BreakerLevel, trigger: &'static str) -> BreakerTransition {
    let t = BreakerTransition {
        from: s.level,
        to,
        trigger,
    };
    s.level = to;
    s.transitions.push(t.clone());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> Breaker {
        Breaker::new(BreakerConfig {
            failure_threshold: 2,
            success_threshold: 2,
            probe_interval: 3,
        })
    }

    #[test]
    fn failures_walk_the_ladder_down_to_open() {
        let b = tight();
        for expected in [
            BreakerLevel::Fused,
            BreakerLevel::Reference,
            BreakerLevel::Open,
        ] {
            assert_eq!(b.on_failure(), None);
            let t = b.on_failure().unwrap();
            assert_eq!(t.to, expected);
            assert_eq!(t.trigger, "consecutive failures");
        }
        assert_eq!(b.level(), BreakerLevel::Open);
        assert_eq!(b.transitions().len(), 3);
    }

    #[test]
    fn open_breaker_admits_every_nth_submission_as_probe() {
        let b = tight();
        for _ in 0..6 {
            b.on_failure();
        }
        assert_eq!(b.level(), BreakerLevel::Open);
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(b.admit(), Admission::Reject);
        assert_eq!(
            b.admit(),
            Admission::Admit {
                tier: RecoveryTier::Reference,
                probe: true
            }
        );
        // The counter restarts after a probe slot.
        assert_eq!(b.admit(), Admission::Reject);
    }

    #[test]
    fn probe_success_half_closes_then_successes_restore_normal() {
        let b = tight();
        for _ in 0..6 {
            b.on_failure();
        }
        let t = b.on_success().unwrap();
        assert_eq!(t.to, BreakerLevel::Reference);
        assert_eq!(t.trigger, "probe success");
        // Two successes per step: Reference -> Fused -> Normal.
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_success().unwrap().to, BreakerLevel::Fused);
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_success().unwrap().to, BreakerLevel::Normal);
        assert_eq!(b.level(), BreakerLevel::Normal);
        // Healthy service records nothing further.
        assert_eq!(b.on_success(), None);
    }

    #[test]
    fn interleaved_success_resets_the_failure_streak() {
        let b = tight();
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.level(), BreakerLevel::Normal);
    }

    #[test]
    fn failed_probe_keeps_the_breaker_open() {
        let b = tight();
        for _ in 0..6 {
            b.on_failure();
        }
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.level(), BreakerLevel::Open);
    }

    #[test]
    fn levels_map_to_tiers_and_tokens() {
        assert_eq!(BreakerLevel::Normal.tier(), Some(RecoveryTier::Pipelined));
        assert_eq!(BreakerLevel::Fused.tier(), Some(RecoveryTier::Fused));
        assert_eq!(BreakerLevel::Reference.tier(), Some(RecoveryTier::Reference));
        assert_eq!(BreakerLevel::Open.tier(), None);
        assert_eq!(BreakerLevel::Open.token(), "open");
    }
}
