//! `bwfft-serve` — an overload-safe concurrent FFT service.
//!
//! This crate turns the workspace's plan/execute facade into a request
//! executor whose **failure behavior under load is a contract**:
//!
//! * **Admission control** — a bounded MPMC queue plus an in-flight
//!   byte budget (the same [`check_alloc_budget`] discipline the
//!   executors use) and a shape-keyed
//!   [`BufferPool`](bwfft_num::BufferPool). Any exhausted limit sheds
//!   the request *immediately* with a typed
//!   [`ServeError::Rejected`] — the service never queues unboundedly.
//! * **Deadlines** — every admitted request carries a
//!   [`CancelToken`](bwfft_pipeline::CancelToken); workers poll it at
//!   pipeline barriers, so a timed-out request frees its worker with a
//!   typed [`RequestOutcome::DeadlineExceeded`] instead of hanging.
//! * **Degradation governor** — a circuit [`Breaker`] over the
//!   supervisor's recovery-tier ladder: consecutive failures or
//!   deadline misses degrade new admissions pipelined → fused →
//!   reference → reject-fast, with count-based half-open probing to
//!   recover. Every transition is a trace mark and a
//!   [`ServeReport`] entry.
//! * **Graceful drain** — [`FftServer::shutdown`] stops admission,
//!   finishes every in-flight and queued request, and reports
//!   per-request outcomes. The accounting must balance:
//!   `submitted == completed + deadline_exceeded + failed`, and every
//!   ticket resolves to exactly one outcome.
//!
//! [`check_alloc_budget`]: bwfft_num::check_alloc_budget

pub mod breaker;
pub mod error;
pub mod request;
pub mod server;

pub use breaker::{Admission, Breaker, BreakerConfig, BreakerLevel, BreakerTransition};
pub use error::{RejectReason, ServeError};
pub use request::{FftRequest, RequestOutcome, Ticket};
pub use server::{FftServer, RejectCounts, ServeConfig, ServeReport};
