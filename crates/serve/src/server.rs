//! The concurrent request executor: bounded queue, admission control,
//! deadline cancellation, degradation governor, graceful drain.
//!
//! The overload contract, in one paragraph: `submit` either admits a
//! request (returning a [`Ticket`] that is guaranteed to resolve to
//! exactly one [`RequestOutcome`]) or sheds it immediately with a typed
//! [`ServeError::Rejected`] — the service never queues unboundedly and
//! never makes the caller guess. Admission walks the cheap checks
//! first: drain flag, queue depth, then the in-flight byte budget
//! (through the same [`check_alloc_budget`] discipline the executors
//! use), then the breaker, and finally the shape-keyed
//! [`BufferPool`], whose exhaustion is just another typed rejection.
//! Admitted requests carry a [`CancelToken`] armed with their deadline;
//! workers poll it at pipeline barriers, so a timed-out request frees
//! its worker instead of hanging it. Shutdown stops admission, drains
//! the queue (every queued request still terminates with its one
//! outcome), joins the workers, and returns a [`ServeReport`] whose
//! accounting must balance: `submitted == completed +
//! deadline_exceeded + failed`.

use crate::breaker::{Admission, Breaker, BreakerConfig, BreakerLevel, BreakerTransition};
use crate::error::{RejectReason, ServeError};
use crate::request::{FftRequest, OutcomeCell, RequestOutcome, Ticket};
use bwfft_core::exec_real::ExecConfig;
use bwfft_core::{
    execute_reference, CoreError, ExecutorKind, FftPlan, HostProfile, RecoveryTier, RetryPolicy,
    Supervisor,
};
use bwfft_metrics::{Counter, FlightRecorder, Gauge, Histogram, Registry};
use bwfft_num::{check_alloc_budget, BufferPool, Complex64, PoolStats, PooledBuf};
use bwfft_pipeline::{CancelReason, CancelToken, FaultPlan, IntegrityConfig, PipelineError};
use bwfft_trace::{MarkKind, TraceCollector};
use bwfft_tuner::{CacheStats, HostFingerprint, PlanCache, PlanVariant, Tuner, TunerOptions};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Service configuration. The defaults are deliberately small: two
/// workers, a sixteen-deep queue, no budgets — callers that want the
/// overload contract to bite set `byte_budget` / `pool_cap_bytes`.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests. `0` is a synchronous mode
    /// used by deterministic tests: nothing runs until
    /// [`FftServer::shutdown`] drains the queue inline.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Cap on the working-set bytes of all in-flight (queued +
    /// executing) requests, enforced at admission.
    pub byte_budget: Option<usize>,
    /// Byte cap of the buffer pool (idle + outstanding). Defaults to
    /// `byte_budget` when unset.
    pub pool_cap_bytes: Option<usize>,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Degradation governor thresholds.
    pub breaker: BreakerConfig,
    /// Per-request recovery budget (retries, backoff, escalation).
    pub retry: RetryPolicy,
    /// Ceiling on the `max_attempts` a per-request [`RetryPolicy`]
    /// override may request. `None` admits any override; with a
    /// ceiling set, over-budget requests are shed typed
    /// (`retry_budget`) at admission — one caller cannot buy unbounded
    /// retry work on a shared service.
    pub retry_ceiling: Option<usize>,
    /// Pipeline integrity guards armed for every request.
    pub integrity: IntegrityConfig,
    /// Arm the whole-run Parseval/energy check on every request, so
    /// corruption that slips between the block-level guards still
    /// fails typed instead of completing wrong.
    pub verify_energy: bool,
    /// Mark sink for admission, breaker, and drain events.
    pub trace: Option<Arc<TraceCollector>>,
    /// Live metrics registry. When set, the server pre-registers its
    /// phase histograms, outcome counters and state gauges at start
    /// and updates them per request with single relaxed atomics; when
    /// `None` every would-be update is one branch (the
    /// [`bwfft_metrics`] disabled-handle contract).
    pub metrics: Option<Arc<Registry>>,
    /// Flight recorder. When set, every finished request deposits its
    /// span tree, and breaker degradations / integrity trips / worker
    /// panics freeze a `bwfft-flight/1` dump of the last K requests.
    pub flight: Option<Arc<FlightRecorder>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            byte_budget: None,
            pool_cap_bytes: None,
            default_deadline: None,
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            retry_ceiling: None,
            integrity: IntegrityConfig::default(),
            verify_energy: false,
            trace: None,
            metrics: None,
            flight: None,
        }
    }
}

/// Rejections by reason, as counted at admission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RejectCounts {
    pub queue_full: u64,
    pub byte_budget: u64,
    pub pool_exhausted: u64,
    pub breaker_open: u64,
    pub shutting_down: u64,
    pub retry_budget: u64,
}

impl RejectCounts {
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.byte_budget
            + self.pool_exhausted
            + self.breaker_open
            + self.shutting_down
            + self.retry_budget
    }
}

/// What the service did over its lifetime (or up to a snapshot).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests admitted past every admission check.
    pub submitted: u64,
    pub completed: u64,
    pub deadline_exceeded: u64,
    pub failed: u64,
    /// Completions that needed any supervisor recovery step.
    pub recovered_runs: u64,
    /// Shed at admission (disjoint from `submitted`).
    pub rejected: RejectCounts,
    /// Completions by producing tier: pipelined, fused, reference.
    pub tier_completed: [u64; 3],
    /// Breaker position when the report was taken.
    pub breaker_level: BreakerLevel,
    /// Every breaker transition, in order.
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Buffer-pool counters.
    pub pool: PoolStats,
    /// Sharded plan-cache counters: every admitted request resolves its
    /// plan through the cache, so repeated shapes show up as hits here.
    pub plan_cache: CacheStats,
}

impl ServeReport {
    /// Admitted requests that have terminated so far.
    pub fn outcomes(&self) -> u64 {
        self.completed + self.deadline_exceeded + self.failed
    }

    /// The drained-service invariant: every admitted request terminated
    /// with exactly one outcome, and tier accounting matches. Only
    /// meaningful after [`FftServer::shutdown`].
    pub fn holds(&self) -> bool {
        self.submitted == self.outcomes()
            && self.tier_completed.iter().sum::<u64>() == self.completed
    }
}

struct QueueState {
    queue: VecDeque<QueuedRequest>,
    shutting_down: bool,
    /// Working-set bytes of queued + executing requests. Decremented
    /// when a request's outcome is delivered.
    in_flight_bytes: usize,
}

struct QueuedRequest {
    /// Server-assigned id; mirrors [`Ticket::id`].
    id: u64,
    plan: Arc<FftPlan>,
    data: PooledBuf<Complex64>,
    work: PooledBuf<Complex64>,
    /// The request's own payload allocation, reused as output storage.
    result: Vec<Complex64>,
    token: CancelToken,
    tier: RecoveryTier,
    fault: Option<FaultPlan>,
    /// Per-request policy overrides (admission already enforced the
    /// retry ceiling); `None` fields fall back to the server defaults.
    retry: Option<RetryPolicy>,
    integrity: Option<IntegrityConfig>,
    verify_energy: Option<bool>,
    submitted_at: Instant,
    bytes: usize,
    cell: Arc<OutcomeCell>,
}

/// Pre-registered metric handles (the serving hot path never touches
/// the registry's shard locks). Named `Instruments` because
/// `bwfft_bench::record::ServeMetrics` already names the bench-record
/// column set.
struct Instruments {
    queue_wait_ns: Histogram,
    plan_resolve_ns: Histogram,
    execute_ns: Histogram,
    /// Execute time of requests the supervisor had to recover — the
    /// "recovery" phase of the per-request timing quartet.
    recovery_ns: Histogram,
    request_ns: Histogram,
    submitted: Counter,
    completed: Counter,
    deadline_exceeded: Counter,
    failed: Counter,
    rejected: Counter,
    recovered_runs: Counter,
    queue_depth: Gauge,
    in_flight_bytes: Gauge,
    /// Breaker position as its ladder index: 0 normal … 3 open.
    breaker_level: Gauge,
    pool_hit_rate: Gauge,
}

impl Instruments {
    fn new(reg: &Registry) -> Instruments {
        Instruments {
            queue_wait_ns: reg.histogram("serve.queue_wait_ns"),
            plan_resolve_ns: reg.histogram("serve.plan_resolve_ns"),
            execute_ns: reg.histogram("serve.execute_ns"),
            recovery_ns: reg.histogram("serve.recovery_ns"),
            request_ns: reg.histogram("serve.request_ns"),
            submitted: reg.counter("serve.submitted"),
            completed: reg.counter("serve.completed"),
            deadline_exceeded: reg.counter("serve.deadline_exceeded"),
            failed: reg.counter("serve.failed"),
            rejected: reg.counter("serve.rejected"),
            recovered_runs: reg.counter("serve.recovered_runs"),
            queue_depth: reg.gauge("serve.queue_depth"),
            in_flight_bytes: reg.gauge("serve.in_flight_bytes"),
            breaker_level: reg.gauge("serve.breaker_level"),
            pool_hit_rate: reg.gauge("serve.pool_hit_rate"),
        }
    }
}

fn breaker_gauge_value(level: BreakerLevel) -> f64 {
    match level {
        BreakerLevel::Normal => 0.0,
        BreakerLevel::Fused => 1.0,
        BreakerLevel::Reference => 2.0,
        BreakerLevel::Open => 3.0,
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    deadline_exceeded: AtomicU64,
    failed: AtomicU64,
    recovered_runs: AtomicU64,
    tier_completed: [AtomicU64; 3],
    rej_queue_full: AtomicU64,
    rej_byte_budget: AtomicU64,
    rej_pool: AtomicU64,
    rej_breaker: AtomicU64,
    rej_shutdown: AtomicU64,
    rej_retry_budget: AtomicU64,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    breaker: Breaker,
    pool: BufferPool<Complex64>,
    counters: Counters,
    /// Sharded plan cache (DESIGN.md §10): default-knob requests are
    /// tuned once per shape, explicit-knob requests are pinned
    /// variants; either way repeated shapes skip plan construction.
    plan_cache: PlanCache,
    supervisor: Supervisor,
    integrity: IntegrityConfig,
    verify_energy: bool,
    trace: Option<Arc<TraceCollector>>,
    metrics: Option<Arc<Registry>>,
    inst: Option<Instruments>,
    flight: Option<Arc<FlightRecorder>>,
    next_request_id: AtomicU64,
    byte_budget: Option<usize>,
    retry_ceiling: Option<usize>,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
}

fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn tier_index(tier: RecoveryTier) -> usize {
    match tier {
        RecoveryTier::Pipelined => 0,
        RecoveryTier::Fused => 1,
        RecoveryTier::Reference => 2,
    }
}

/// The concurrent FFT service.
pub struct FftServer {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl FftServer {
    /// Starts the worker threads and returns the running server.
    pub fn start(cfg: ServeConfig) -> FftServer {
        let pool_cap = cfg.pool_cap_bytes.or(cfg.byte_budget);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
                in_flight_bytes: 0,
            }),
            available: Condvar::new(),
            breaker: Breaker::new(cfg.breaker),
            pool: BufferPool::new(pool_cap),
            counters: Counters::default(),
            plan_cache: PlanCache::new(
                Tuner::new(TunerOptions {
                    // Model-only: admission must never spend time on
                    // measurement reps; the analytic model picks knobs.
                    model_only: true,
                    ..TunerOptions::for_host(&HostProfile::detect())
                }),
                HostFingerprint::detect(),
            ),
            supervisor: Supervisor::new(cfg.retry),
            integrity: cfg.integrity,
            verify_energy: cfg.verify_energy,
            trace: cfg.trace,
            inst: cfg.metrics.as_deref().map(Instruments::new),
            metrics: cfg.metrics,
            flight: cfg.flight,
            next_request_id: AtomicU64::new(0),
            byte_budget: cfg.byte_budget,
            retry_ceiling: cfg.retry_ceiling,
            queue_capacity: cfg.queue_capacity,
            default_deadline: cfg.default_deadline,
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bwfft-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .filter_map(Result::ok)
            .collect();
        FftServer { shared, workers }
    }

    /// Admits or sheds one request. On admission the returned ticket is
    /// guaranteed to resolve to exactly one outcome, even across
    /// shutdown. On rejection the request's payload comes back inside
    /// the error-free path — the service holds nothing for it.
    pub fn submit(&self, req: FftRequest) -> Result<Ticket, ServeError> {
        // Usage validation first: a malformed descriptor is the
        // caller's bug, not load, and must not depend on service state.
        let total = req.dims.total();
        if req.input.len() != total {
            return Err(ServeError::InputLength {
                expected: total,
                got: req.input.len(),
            });
        }
        let shared = &self.shared;
        let plan_t0 = shared.inst.as_ref().map(|_| Instant::now());
        let plan = self.plan_for(&req)?;
        if let (Some(inst), Some(t0)) = (shared.inst.as_ref(), plan_t0) {
            inst.plan_resolve_ns.record_duration(t0.elapsed());
        }

        // Retry-budget ceiling: a per-request policy override must not
        // buy more recovery work than the server is willing to sell.
        // Checked before any state is held — the verdict depends only
        // on the request and the configuration.
        if let (Some(ceiling), Some(policy)) = (shared.retry_ceiling, req.retry.as_ref()) {
            if policy.max_attempts > ceiling {
                return Err(self.reject(RejectReason::RetryBudget {
                    requested: policy.max_attempts,
                    ceiling,
                }));
            }
        }

        let bytes = req.working_bytes();
        let mut q = lock_tolerant(&shared.queue);
        if q.shutting_down {
            return Err(self.reject(RejectReason::ShuttingDown));
        }
        let depth = q.queue.len();
        if depth >= shared.queue_capacity {
            return Err(self.reject(RejectReason::QueueFull {
                depth,
                capacity: shared.queue_capacity,
            }));
        }
        if let Err(e) =
            check_alloc_budget("serve admission", q.in_flight_bytes + bytes, shared.byte_budget)
        {
            return Err(self.reject(RejectReason::ByteBudget(e)));
        }
        let (tier, probe) = match shared.breaker.admit() {
            Admission::Reject => return Err(self.reject(RejectReason::BreakerOpen)),
            Admission::Admit { tier, probe } => (tier, probe),
        };
        let mut data = match shared.pool.acquire(total) {
            Ok(b) => b,
            Err(e) => return Err(self.reject(RejectReason::PoolExhausted(e))),
        };
        let work = match shared.pool.acquire(total) {
            Ok(b) => b,
            Err(e) => return Err(self.reject(RejectReason::PoolExhausted(e))),
        };

        let submitted_at = Instant::now();
        let token = match req.deadline.or(shared.default_deadline) {
            Some(d) => CancelToken::with_deadline(submitted_at + d),
            None => CancelToken::new(),
        };
        data.as_mut_slice().copy_from_slice(&req.input);
        let id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
        let cell = OutcomeCell::new();
        let ticket = Ticket {
            id,
            cell: Arc::clone(&cell),
        };
        if probe {
            if let Some(trace) = shared.trace.as_ref() {
                trace.mark(MarkKind::Serve, "probe admitted", None);
            }
        }
        q.queue.push_back(QueuedRequest {
            id,
            plan,
            data,
            work,
            result: req.input,
            token,
            tier,
            fault: req.fault,
            retry: req.retry,
            integrity: req.integrity,
            verify_energy: req.verify_energy,
            submitted_at,
            bytes,
            cell,
        });
        q.in_flight_bytes += bytes;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(inst) = shared.inst.as_ref() {
            inst.submitted.inc();
            inst.queue_depth.set(q.queue.len() as f64);
            inst.in_flight_bytes.set(q.in_flight_bytes as f64);
        }
        drop(q);
        shared.available.notify_one();
        Ok(ticket)
    }

    /// Stops admitting, finishes all in-flight and queued work, joins
    /// the workers, and reports. Idempotent: a second call returns the
    /// same final report.
    pub fn shutdown(&mut self) -> ServeReport {
        self.begin_drain();
        for h in self.workers.drain(..) {
            // A worker that panicked already delivered no further
            // outcomes; the residual drain below still terminates every
            // queued request, keeping the exactly-one-outcome contract.
            let _ = h.join();
        }
        self.drain_residual();
        if let Some(trace) = self.shared.trace.as_ref() {
            trace.mark(MarkKind::Serve, "drain complete", None);
        }
        self.snapshot()
    }

    /// Point-in-time counters. Accounting (`holds`) is only expected to
    /// balance after [`shutdown`](Self::shutdown).
    pub fn snapshot(&self) -> ServeReport {
        let c = &self.shared.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServeReport {
            submitted: load(&c.submitted),
            completed: load(&c.completed),
            deadline_exceeded: load(&c.deadline_exceeded),
            failed: load(&c.failed),
            recovered_runs: load(&c.recovered_runs),
            rejected: RejectCounts {
                queue_full: load(&c.rej_queue_full),
                byte_budget: load(&c.rej_byte_budget),
                pool_exhausted: load(&c.rej_pool),
                breaker_open: load(&c.rej_breaker),
                shutting_down: load(&c.rej_shutdown),
                retry_budget: load(&c.rej_retry_budget),
            },
            tier_completed: [
                load(&c.tier_completed[0]),
                load(&c.tier_completed[1]),
                load(&c.tier_completed[2]),
            ],
            breaker_level: self.shared.breaker.level(),
            breaker_transitions: self.shared.breaker.transitions(),
            pool: self.shared.pool.stats(),
            plan_cache: self.shared.plan_cache.stats(),
        }
    }

    /// The metrics scrape source: a mid-flight [`ServeReport`] snapshot
    /// (identical to [`snapshot`](Self::snapshot) — drain accounting is
    /// untouched and `holds()` is still only meaningful after
    /// [`shutdown`](Self::shutdown)) that *also* refreshes the
    /// registry's externally accumulated state: plan-cache and
    /// buffer-pool counters, queue/byte/breaker gauges, and the pool
    /// hit rate. Callers exporting `bwfft-metrics/1` call `stats()`
    /// then `Registry::snapshot()`, so a scrape is always coherent with
    /// the report it rode in on.
    pub fn stats(&self) -> ServeReport {
        let report = self.snapshot();
        if let Some(reg) = self.shared.metrics.as_ref() {
            report.plan_cache.record_into(reg);
            reg.set_counter("serve.pool.hits", report.pool.hits);
            reg.set_counter("serve.pool.misses", report.pool.misses);
            reg.set_counter("serve.pool.exhausted", report.pool.exhausted);
            reg.set_gauge("serve.pool.idle_bytes", report.pool.idle_bytes as f64);
            reg.set_gauge(
                "serve.pool.outstanding_bytes",
                report.pool.outstanding_bytes as f64,
            );
            if let Some(inst) = self.shared.inst.as_ref() {
                let acquires = report.pool.hits + report.pool.misses;
                inst.pool_hit_rate.set(if acquires == 0 {
                    0.0
                } else {
                    report.pool.hits as f64 / acquires as f64
                });
                inst.breaker_level
                    .set(breaker_gauge_value(report.breaker_level));
                let q = lock_tolerant(&self.shared.queue);
                inst.queue_depth.set(q.queue.len() as f64);
                inst.in_flight_bytes.set(q.in_flight_bytes as f64);
            }
        }
        report
    }

    /// Queued (not yet executing) requests.
    pub fn queue_depth(&self) -> usize {
        lock_tolerant(&self.shared.queue).queue.len()
    }

    /// Working-set bytes of queued + executing requests.
    pub fn in_flight_bytes(&self) -> usize {
        lock_tolerant(&self.shared.queue).in_flight_bytes
    }

    /// The degradation governor's current position.
    pub fn breaker_level(&self) -> BreakerLevel {
        self.shared.breaker.level()
    }

    fn plan_for(&self, req: &FftRequest) -> Result<Arc<FftPlan>, ServeError> {
        // Default knobs (buffer 0 = planner default, single-threaded)
        // mean the caller left the choice to us: route through the
        // tuner so the whole service shares one model-picked plan per
        // shape. Explicit knobs pin a variant entry instead — tuned and
        // pinned plans for the same shape never alias.
        // On tuner failure (a shape the model cannot cost) fall
        // through to a plain default-knob build so the request still
        // gets the typed builder verdict.
        if req.buffer_elems == 0 && req.threads == (1, 1) {
            if let Ok(plan) = self.shared.plan_cache.get_or_tune(req.dims, req.dir) {
                return Ok(plan);
            }
        }
        let variant = PlanVariant {
            buffer_elems: req.buffer_elems,
            p_d: req.threads.0,
            p_c: req.threads.1,
        };
        self.shared
            .plan_cache
            .get_or_build(req.dims, req.dir, variant, || {
                FftPlan::builder(req.dims)
                    .direction(req.dir)
                    .buffer_elems(req.buffer_elems)
                    .threads(req.threads.0, req.threads.1)
                    .build()
            })
            .map_err(|error| ServeError::InvalidRequest { error })
    }

    fn reject(&self, reason: RejectReason) -> ServeError {
        let c = &self.shared.counters;
        let counter = match reason {
            RejectReason::QueueFull { .. } => &c.rej_queue_full,
            RejectReason::ByteBudget(_) => &c.rej_byte_budget,
            RejectReason::PoolExhausted(_) => &c.rej_pool,
            RejectReason::BreakerOpen => &c.rej_breaker,
            RejectReason::ShuttingDown => &c.rej_shutdown,
            RejectReason::RetryBudget { .. } => &c.rej_retry_budget,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(inst) = self.shared.inst.as_ref() {
            inst.rejected.inc();
        }
        if let Some(trace) = self.shared.trace.as_ref() {
            trace.mark(MarkKind::Serve, format!("reject: {reason}"), None);
        }
        ServeError::Rejected { reason }
    }

    fn begin_drain(&self) {
        let mut q = lock_tolerant(&self.shared.queue);
        if !q.shutting_down {
            q.shutting_down = true;
            if let Some(trace) = self.shared.trace.as_ref() {
                trace.mark(MarkKind::Serve, "drain: admission closed", None);
            }
        }
        drop(q);
        self.shared.available.notify_all();
    }

    /// Executes anything still queued on the calling thread. With
    /// `workers > 0` the queue is normally empty by the time the
    /// workers have joined; with `workers == 0` this *is* the executor.
    fn drain_residual(&self) {
        loop {
            let req = lock_tolerant(&self.shared.queue).queue.pop_front();
            match req {
                Some(r) => execute_request(&self.shared, r),
                None => return,
            }
        }
    }
}

impl Drop for FftServer {
    fn drop(&mut self) {
        self.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.drain_residual();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let req = {
            let mut q = lock_tolerant(&shared.queue);
            loop {
                if let Some(r) = q.queue.pop_front() {
                    break Some(r);
                }
                if q.shutting_down {
                    break None;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match req {
            Some(r) => execute_request(shared, r),
            None => return,
        }
    }
}

/// Runs one admitted request to its single outcome: executes at the
/// breaker-assigned tier, classifies the verdict, feeds the breaker,
/// releases the pooled working set, and only then delivers the outcome
/// (so a waiter that immediately resubmits sees the freed budget and a
/// settled breaker).
fn execute_request(shared: &Arc<Shared>, req: QueuedRequest) {
    let QueuedRequest {
        id,
        plan,
        mut data,
        mut work,
        mut result,
        token,
        tier,
        fault,
        retry,
        integrity,
        verify_energy,
        submitted_at,
        bytes,
        cell,
    } = req;
    let overrides = ExecOverrides {
        retry,
        integrity,
        verify_energy,
    };

    if let Some(inst) = shared.inst.as_ref() {
        inst.queue_wait_ns.record_duration(submitted_at.elapsed());
    }
    // With the flight recorder armed each request gets its own span
    // sink, so the recorder can keep whole per-request span trees; the
    // shared profile collector still receives every mark.
    let flight_trace = shared
        .flight
        .as_ref()
        .map(|_| Arc::new(TraceCollector::new()));
    let flight_start_ns = shared.flight.as_ref().map(|f| f.now_ns());
    let exec_t0 = shared.inst.as_ref().map(|_| Instant::now());

    let trace = flight_trace.clone().or_else(|| shared.trace.clone());
    let verdict = run_at_tier(
        shared, &plan, &mut data, &mut work, &token, tier, &fault, &overrides, trace,
    );
    let latency = submitted_at.elapsed();

    // Classify flight-dump triggers before the verdict is consumed:
    // integrity trips and worker panics dump; recoverable noise the
    // supervisor absorbed does not.
    let error_trigger = match &verdict {
        Err(e) if e.integrity_kind().is_some() => Some("integrity"),
        Err(CoreError::Pipeline(PipelineError::WorkerPanicked { .. })) => Some("panic"),
        _ => None,
    };

    let ok = verdict.is_ok();
    let c = &shared.counters;
    let outcome = match verdict {
        Ok((tier, recovered)) => {
            c.completed.fetch_add(1, Ordering::Relaxed);
            c.tier_completed[tier_index(tier)].fetch_add(1, Ordering::Relaxed);
            if recovered {
                c.recovered_runs.fetch_add(1, Ordering::Relaxed);
            }
            result.copy_from_slice(data.as_slice());
            RequestOutcome::Completed {
                output: result,
                tier,
                recovered,
                latency,
            }
        }
        Err(CoreError::Pipeline(PipelineError::Cancelled {
            reason: CancelReason::Deadline,
            ..
        })) => {
            c.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            RequestOutcome::DeadlineExceeded { latency }
        }
        Err(error) => {
            c.failed.fetch_add(1, Ordering::Relaxed);
            RequestOutcome::Failed { error, latency }
        }
    };
    let transition = breaker_feedback(shared, ok);

    if let Some(inst) = shared.inst.as_ref() {
        if let Some(t0) = exec_t0 {
            let exec = t0.elapsed();
            inst.execute_ns.record_duration(exec);
            if matches!(
                outcome,
                RequestOutcome::Completed {
                    recovered: true,
                    ..
                }
            ) {
                inst.recovery_ns.record_duration(exec);
            }
        }
        inst.request_ns.record_duration(latency);
        match &outcome {
            RequestOutcome::Completed { recovered, .. } => {
                inst.completed.inc();
                if *recovered {
                    inst.recovered_runs.inc();
                }
            }
            RequestOutcome::DeadlineExceeded { .. } => inst.deadline_exceeded.inc(),
            RequestOutcome::Failed { .. } => inst.failed.inc(),
        }
        inst.breaker_level
            .set(breaker_gauge_value(shared.breaker.level()));
    }

    if let (Some(flight), Some(start_ns)) = (shared.flight.as_ref(), flight_start_ns) {
        let events = flight_trace
            .as_ref()
            .map(|t| t.take_events())
            .unwrap_or_default();
        let tier_tok = match &outcome {
            RequestOutcome::Completed { tier, .. } => tier.to_string(),
            _ => String::new(),
        };
        flight.record_raw(
            id,
            plan.dims.label(),
            outcome.token().to_string(),
            tier_tok,
            start_ns,
            flight.now_ns(),
            events,
        );
        // Trigger matrix: a breaker *degradation* (never the recovery
        // climb back up), an integrity trip, a worker panic. The
        // current request is recorded first, so it is always part of
        // the dump it caused.
        if let Some(t) = transition.as_ref() {
            if t.to > t.from {
                flight.trigger(&format!(
                    "breaker:{}->{}",
                    t.from.token(),
                    t.to.token()
                ));
            }
        }
        if let Some(cause) = error_trigger {
            flight.trigger(cause);
        }
    }

    // Return the working set and release the admission budget before
    // the outcome becomes visible.
    drop(data);
    drop(work);
    {
        let mut q = lock_tolerant(&shared.queue);
        q.in_flight_bytes -= bytes;
        if let Some(inst) = shared.inst.as_ref() {
            inst.queue_depth.set(q.queue.len() as f64);
            inst.in_flight_bytes.set(q.in_flight_bytes as f64);
        }
    }
    cell.deliver(outcome);
}

/// Per-request execution policy overrides, already past admission.
struct ExecOverrides {
    retry: Option<RetryPolicy>,
    integrity: Option<IntegrityConfig>,
    verify_energy: Option<bool>,
}

#[allow(clippy::too_many_arguments)]
fn run_at_tier(
    shared: &Shared,
    plan: &FftPlan,
    data: &mut PooledBuf<Complex64>,
    work: &mut PooledBuf<Complex64>,
    token: &CancelToken,
    tier: RecoveryTier,
    fault: &Option<FaultPlan>,
    overrides: &ExecOverrides,
    trace: Option<Arc<TraceCollector>>,
) -> Result<(RecoveryTier, bool), CoreError> {
    if let Some(reason) = token.fired() {
        // Expired while queued: never touch a worker's executor.
        return Err(CoreError::Pipeline(PipelineError::Cancelled {
            iter: 0,
            reason,
        }));
    }
    match tier {
        RecoveryTier::Reference => {
            execute_reference(plan, data.as_mut_slice())?;
            Ok((RecoveryTier::Reference, false))
        }
        start => {
            let cfg = ExecConfig {
                fault: fault.clone(),
                trace,
                metrics: shared.metrics.clone(),
                integrity: overrides.integrity.unwrap_or(shared.integrity),
                verify_energy: overrides.verify_energy.unwrap_or(shared.verify_energy),
                cancel: Some(token.clone()),
                ..ExecConfig::default()
            };
            let mut plan = plan.clone();
            if start == RecoveryTier::Fused {
                plan.executor = ExecutorKind::Fused;
            }
            // A per-request retry policy gets its own supervisor —
            // construction is a couple of field copies, nothing shared.
            let rep = match overrides.retry.clone() {
                Some(policy) => Supervisor::new(policy).run(
                    &plan,
                    data.as_mut_slice(),
                    work.as_mut_slice(),
                    &cfg,
                )?,
                None => shared
                    .supervisor
                    .run(&plan, data.as_mut_slice(), work.as_mut_slice(), &cfg)?,
            };
            Ok((rep.tier, rep.recovered()))
        }
    }
}

fn breaker_feedback(shared: &Shared, ok: bool) -> Option<BreakerTransition> {
    let transition = if ok {
        shared.breaker.on_success()
    } else {
        shared.breaker.on_failure()
    };
    if let (Some(t), Some(trace)) = (transition.as_ref(), shared.trace.as_ref()) {
        trace.mark(MarkKind::Serve, t.to_string(), None);
    }
    transition
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_core::Dims;
    use bwfft_num::compare::{fft_tolerance, rel_l2_error};
    use bwfft_num::signal::random_complex;

    const DIMS: Dims = Dims::Two { n: 16, m: 32 };
    const TOTAL: usize = 512;

    fn request(seed: u64) -> FftRequest {
        FftRequest::new(DIMS, random_complex(TOTAL, seed)).buffer_elems(128)
    }

    fn reference_of(seed: u64) -> Vec<Complex64> {
        let plan = FftPlan::builder(DIMS).buffer_elems(128).build().unwrap();
        let mut data = random_complex(TOTAL, seed);
        execute_reference(&plan, &mut data).unwrap();
        data
    }

    #[test]
    fn completed_requests_match_the_reference_and_accounting_balances() {
        let mut server = FftServer::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        // Two waves: the second reuses the first wave's shelved
        // buffers, so the steady state is allocation-free.
        for wave in 0..2 {
            let tickets: Vec<(u64, Ticket)> = (0..4)
                .map(|i| {
                    let seed = wave * 4 + i;
                    (seed, server.submit(request(seed)).unwrap())
                })
                .collect();
            for (seed, t) in tickets {
                match t.wait() {
                    RequestOutcome::Completed { output, .. } => {
                        let expect = reference_of(seed);
                        assert!(rel_l2_error(&output, &expect) <= fft_tolerance(TOTAL));
                    }
                    other => panic!("request {seed} did not complete: {other:?}"),
                }
            }
        }
        let report = server.shutdown();
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.completed, 8);
        assert_eq!(report.rejected.total(), 0);
        // Steady state reuses pooled buffers: 8 requests, far fewer
        // allocations than acquires.
        assert!(report.pool.hits > 0);
    }

    #[test]
    fn repeated_shapes_resolve_plans_through_the_cache() {
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        // Explicit knobs pin one variant entry: the first submission
        // builds it, the rest hit.
        let tickets: Vec<Ticket> = (0..3)
            .map(|s| server.submit(request(s)).unwrap())
            .collect();
        let stats = server.snapshot().plan_cache;
        assert_eq!((stats.hits, stats.misses), (2, 1), "{stats:?}");
        // Default knobs route through the tuner under a separate
        // (non-aliasing) tuned entry: one more miss, then a hit.
        let deft = server
            .submit(FftRequest::new(DIMS, random_complex(TOTAL, 99)))
            .unwrap();
        let deft2 = server
            .submit(FftRequest::new(DIMS, random_complex(TOTAL, 100)))
            .unwrap();
        let report = server.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), RequestOutcome::Completed { .. }));
        }
        assert!(matches!(deft.wait(), RequestOutcome::Completed { .. }));
        assert!(matches!(deft2.wait(), RequestOutcome::Completed { .. }));
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.plan_cache.misses, 2, "{:?}", report.plan_cache);
        assert_eq!(report.plan_cache.hits, 3, "{:?}", report.plan_cache);
    }

    #[test]
    fn over_ceiling_retry_budgets_are_shed_typed() {
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            retry_ceiling: Some(3),
            ..ServeConfig::default()
        });
        // Over the ceiling: shed at the door, nothing queued.
        let greedy = RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        };
        let err = server.submit(request(1).retry(greedy)).unwrap_err();
        match err {
            ServeError::Rejected {
                reason: reason @ RejectReason::RetryBudget { requested: 8, ceiling: 3 },
            } => assert_eq!(reason.token(), "retry_budget"),
            other => panic!("wrong rejection: {other}"),
        }
        assert_eq!(server.queue_depth(), 0);
        // At the ceiling: admitted and completed with its own budget.
        let frugal = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let t = server.submit(request(2).retry(frugal)).unwrap();
        let report = server.shutdown();
        assert!(matches!(t.wait(), RequestOutcome::Completed { .. }));
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.rejected.retry_budget, 1);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn without_a_ceiling_any_retry_override_is_admitted() {
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let greedy = RetryPolicy {
            max_attempts: 64,
            ..RetryPolicy::default()
        };
        let t = server.submit(request(1).retry(greedy)).unwrap();
        let report = server.shutdown();
        assert!(matches!(t.wait(), RequestOutcome::Completed { .. }));
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.rejected.total(), 0);
    }

    #[test]
    fn per_request_integrity_override_recovers_injected_corruption() {
        bwfft_pipeline::fault::silence_injected_panic_reports();
        // Server default: guards OFF. The request arms the full set
        // itself — corruption must be detected on its run and recovered
        // (pipelined detects, fused has no handoffs to corrupt).
        let mut server = FftServer::start(ServeConfig {
            workers: 1,
            retry: RetryPolicy {
                backoff_base: Duration::from_micros(100),
                backoff_cap: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
            ..ServeConfig::default()
        });
        let seed = 77;
        let req = request(seed)
            .threads(2, 2)
            .integrity(IntegrityConfig::full())
            .verify_energy(true)
            .fault(FaultPlan::corrupt_at(
                bwfft_pipeline::Role::Data,
                0,
                1,
                bwfft_pipeline::FaultPhase::Load,
            ));
        let t = server.submit(req).unwrap();
        let report = server.shutdown();
        match t.wait() {
            RequestOutcome::Completed {
                output, recovered, ..
            } => {
                assert!(recovered, "guards must have caught the corruption");
                let expect = reference_of(seed);
                assert!(rel_l2_error(&output, &expect) <= fft_tolerance(TOTAL));
            }
            other => panic!("expected recovered completion, got {other:?}"),
        }
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.recovered_runs, 1);
    }

    #[test]
    fn queue_depth_is_bounded_and_overflow_is_shed() {
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let t1 = server.submit(request(1)).unwrap();
        let t2 = server.submit(request(2)).unwrap();
        let err = server.submit(request(3)).unwrap_err();
        match err {
            ServeError::Rejected {
                reason: RejectReason::QueueFull { depth, capacity },
            } => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("wrong rejection: {other}"),
        }
        assert_eq!(server.queue_depth(), 2);
        let report = server.shutdown();
        assert!(matches!(t1.wait(), RequestOutcome::Completed { .. }));
        assert!(matches!(t2.wait(), RequestOutcome::Completed { .. }));
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.rejected.queue_full, 1);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn byte_budget_sheds_before_any_buffer_is_taken() {
        let one_request = 2 * TOTAL * core::mem::size_of::<Complex64>();
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            byte_budget: Some(one_request),
            ..ServeConfig::default()
        });
        let t = server.submit(request(1)).unwrap();
        assert_eq!(server.in_flight_bytes(), one_request);
        let err = server.submit(request(2)).unwrap_err();
        match err {
            ServeError::Rejected {
                reason: RejectReason::ByteBudget(e),
            } => {
                assert_eq!(e.what, "serve admission");
                assert_eq!(e.bytes, 2 * one_request);
            }
            other => panic!("wrong rejection: {other}"),
        }
        let report = server.shutdown();
        assert!(matches!(t.wait(), RequestOutcome::Completed { .. }));
        assert!(report.holds());
        assert_eq!(report.rejected.byte_budget, 1);
        assert_eq!(server.in_flight_bytes(), 0);
    }

    #[test]
    fn pool_exhaustion_is_a_typed_admission_rejection() {
        let one_request = 2 * TOTAL * core::mem::size_of::<Complex64>();
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            pool_cap_bytes: Some(one_request),
            ..ServeConfig::default()
        });
        let _t = server.submit(request(1)).unwrap();
        let err = server.submit(request(2)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Rejected {
                reason: RejectReason::PoolExhausted(_)
            }
        ));
        let report = server.shutdown();
        assert!(report.holds());
        assert_eq!(report.rejected.pool_exhausted, 1);
        assert_eq!(report.pool.exhausted, 1);
    }

    #[test]
    fn expired_deadline_terminates_without_executing() {
        let mut server = FftServer::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let t = server
            .submit(request(1).deadline(Duration::ZERO))
            .unwrap();
        match t.wait() {
            RequestOutcome::DeadlineExceeded { .. } => {}
            other => panic!("expected deadline miss, got {other:?}"),
        }
        let report = server.shutdown();
        assert!(report.holds());
        assert_eq!(report.deadline_exceeded, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn malformed_descriptors_are_usage_errors_not_load_shedding() {
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let short = FftRequest::new(DIMS, vec![Complex64::default(); TOTAL - 1]);
        assert!(matches!(
            server.submit(short),
            Err(ServeError::InputLength { expected: 512, got: 511 })
        ));
        // Dimension 12 is not a power of two: plan construction fails.
        let bad = FftRequest::new(Dims::d2(12, 32), vec![Complex64::default(); 384]);
        match server.submit(bad) {
            Err(e @ ServeError::InvalidRequest { .. }) => assert!(e.is_usage()),
            other => panic!("expected invalid request, got {other:?}"),
        }
        let report = server.shutdown();
        // Usage errors are neither admissions nor rejections.
        assert_eq!(report.submitted, 0);
        assert_eq!(report.rejected.total(), 0);
    }

    #[test]
    fn breaker_trips_to_open_probes_and_recovers_deterministically() {
        let mut server = FftServer::start(ServeConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                success_threshold: 2,
                probe_interval: 3,
            },
            ..ServeConfig::default()
        });
        // Six deadline misses walk the breaker Normal -> Fused ->
        // Reference -> Open. Sequential submit-then-wait keeps every
        // state change ordered.
        for seed in 0..6 {
            let t = server
                .submit(request(seed).deadline(Duration::ZERO))
                .unwrap();
            assert!(matches!(t.wait(), RequestOutcome::DeadlineExceeded { .. }));
        }
        assert_eq!(server.breaker_level(), BreakerLevel::Open);
        // Open: two rejections, then the third submission is the probe.
        for seed in [10, 11] {
            assert!(matches!(
                server.submit(request(seed)),
                Err(ServeError::Rejected {
                    reason: RejectReason::BreakerOpen
                })
            ));
        }
        let probe = server.submit(request(12)).unwrap();
        match probe.wait() {
            RequestOutcome::Completed { tier, .. } => {
                assert_eq!(tier, RecoveryTier::Reference);
            }
            other => panic!("probe should complete, got {other:?}"),
        }
        assert_eq!(server.breaker_level(), BreakerLevel::Reference);
        // Two successes per step back up: Reference -> Fused -> Normal.
        for seed in 13..17 {
            let t = server.submit(request(seed)).unwrap();
            assert!(matches!(t.wait(), RequestOutcome::Completed { .. }));
        }
        assert_eq!(server.breaker_level(), BreakerLevel::Normal);
        let report = server.shutdown();
        assert!(report.holds(), "{report:?}");
        let trail: Vec<(BreakerLevel, &str)> = report
            .breaker_transitions
            .iter()
            .map(|t| (t.to, t.trigger))
            .collect();
        assert_eq!(
            trail,
            [
                (BreakerLevel::Fused, "consecutive failures"),
                (BreakerLevel::Reference, "consecutive failures"),
                (BreakerLevel::Open, "consecutive failures"),
                (BreakerLevel::Reference, "probe success"),
                (BreakerLevel::Fused, "consecutive successes"),
                (BreakerLevel::Normal, "consecutive successes"),
            ]
        );
        assert_eq!(report.rejected.breaker_open, 2);
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains_queued_requests() {
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> =
            (0..3).map(|s| server.submit(request(s)).unwrap()).collect();
        let report = server.shutdown();
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.completed, 3);
        for t in tickets {
            assert!(matches!(t.wait(), RequestOutcome::Completed { .. }));
        }
        // Admission is closed after shutdown; the report is idempotent.
        assert!(matches!(
            server.submit(request(9)),
            Err(ServeError::Rejected {
                reason: RejectReason::ShuttingDown
            })
        ));
        let again = server.shutdown();
        assert_eq!(again.completed, 3);
        assert_eq!(again.rejected.shutting_down, 1);
    }

    #[test]
    fn injected_faults_recover_through_the_supervisor_and_count() {
        use bwfft_pipeline::Role;
        let mut server = FftServer::start(ServeConfig {
            workers: 1,
            retry: RetryPolicy {
                backoff_base: Duration::from_micros(50),
                backoff_cap: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..ServeConfig::default()
        });
        bwfft_pipeline::fault::silence_injected_panic_reports();
        let req = request(1)
            .threads(1, 1)
            .fault(FaultPlan::panic_at(Role::Compute, 0, 0));
        let t = server.submit(req).unwrap();
        match t.wait() {
            RequestOutcome::Completed {
                output, recovered, ..
            } => {
                assert!(recovered, "persistent fault must need recovery");
                let expect = reference_of(1);
                assert!(rel_l2_error(&output, &expect) <= fft_tolerance(TOTAL));
            }
            other => panic!("expected recovered completion, got {other:?}"),
        }
        let report = server.shutdown();
        assert!(report.holds());
        assert_eq!(report.recovered_runs, 1);
    }

    #[test]
    fn metrics_registry_reflects_the_request_lifecycle() {
        let reg = Arc::new(Registry::new());
        let mut server = FftServer::start(ServeConfig {
            workers: 1,
            metrics: Some(Arc::clone(&reg)),
            ..ServeConfig::default()
        });
        for seed in 0..3 {
            let t = server.submit(request(seed)).unwrap();
            assert!(matches!(t.wait(), RequestOutcome::Completed { .. }));
        }
        // stats() is the scrape source: it syncs pool/plan-cache
        // counters and gauges into the registry mid-flight.
        let live = server.stats();
        assert!(live.holds(), "{live:?}");
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("serve.submitted"), Some(&3));
        assert_eq!(snap.counters.get("serve.completed"), Some(&3));
        assert_eq!(snap.counters.get("serve.rejected"), Some(&0));
        assert_eq!(
            snap.counters.get("tuner.plan_cache.misses"),
            Some(&1),
            "{:?}",
            snap.counters
        );
        for h in [
            "serve.request_ns",
            "serve.queue_wait_ns",
            "serve.plan_resolve_ns",
            "serve.execute_ns",
        ] {
            let hist = snap.histograms.get(h).unwrap_or_else(|| panic!("{h}"));
            assert_eq!(hist.count, 3, "{h}: {hist:?}");
            assert!(hist.quantile(0.99) >= Some(hist.min), "{h}");
        }
        // All three succeeded on the normal tier with pooled reuse.
        assert_eq!(snap.gauges.get("serve.breaker_level"), Some(&0.0));
        assert!(snap.gauges.get("serve.pool_hit_rate").copied().unwrap_or(0.0) > 0.0);
        assert_eq!(snap.gauges.get("serve.queue_depth"), Some(&0.0));
        let report = server.shutdown();
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    fn flight_recorder_dumps_every_breaker_degradation_with_matching_ids() {
        let reg = Arc::new(Registry::new());
        let flight = FlightRecorder::new(8);
        let mut server = FftServer::start(ServeConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                success_threshold: 2,
                probe_interval: 3,
            },
            metrics: Some(Arc::clone(&reg)),
            flight: Some(Arc::clone(&flight)),
            ..ServeConfig::default()
        });
        // Six sequential deadline misses: Normal -> Fused -> Reference
        // -> Open, one flight dump per degradation.
        let mut ids = Vec::new();
        for seed in 0..6 {
            let t = server
                .submit(request(seed).deadline(Duration::ZERO))
                .unwrap();
            ids.push(t.id());
            assert!(matches!(t.wait(), RequestOutcome::DeadlineExceeded { .. }));
        }
        let dumps = flight.dumps();
        let triggers: Vec<&str> = dumps.iter().map(|d| d.trigger.as_str()).collect();
        assert_eq!(
            triggers,
            [
                "breaker:normal->fused",
                "breaker:fused->reference",
                "breaker:reference->open",
            ]
        );
        // The request that caused each trip is part of its own dump,
        // and every dumped id belongs to a ticket we hold.
        for (dump, expect_last) in dumps.iter().zip([ids[1], ids[3], ids[5]]) {
            let last = dump.requests.last().expect("dump has requests");
            assert_eq!(last.request_id, expect_last);
            assert_eq!(last.outcome, "deadline_exceeded");
            for r in &dump.requests {
                assert!(ids.contains(&r.request_id), "unknown id {}", r.request_id);
            }
            // Dumps survive a JSON round trip byte-identically.
            let json = dump.to_json();
            let back = crate::server::tests::parse_dump(&json);
            assert_eq!(back.to_json(), json);
        }
        let report = server.shutdown();
        assert!(report.holds(), "{report:?}");
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("serve.deadline_exceeded"), Some(&6));
        assert_eq!(snap.gauges.get("serve.breaker_level"), Some(&3.0));
    }

    fn parse_dump(json: &str) -> bwfft_metrics::FlightDump {
        bwfft_metrics::FlightDump::from_json(json).expect("flight dump parses")
    }
}
