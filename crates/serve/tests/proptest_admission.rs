//! Property tests of the admission controller.
//!
//! Three properties the unit tests only spot-check:
//!
//! 1. **Budgets are invariants, not hints** — under any submission
//!    sequence, the tracked in-flight bytes never exceed the configured
//!    byte budget and the queue depth never exceeds its capacity
//!    (observed step-by-step in the `workers = 0` synchronous mode,
//!    where nothing drains between submissions).
//! 2. **Drain accounting always balances** — whatever mix of shapes,
//!    deadlines, and oversized requests was thrown at the server,
//!    shutdown terminates and
//!    `submitted == completed + deadline_exceeded + failed`, with
//!    rejections matching the submit-side errors one for one.
//! 3. **Concurrent drains deliver exactly one outcome per ticket** —
//!    with real workers, every admitted ticket resolves, and the
//!    per-ticket outcome tally equals the report's counters.

use bwfft_core::Dims;
use bwfft_num::signal::random_complex;
use bwfft_serve::{FftRequest, FftServer, RequestOutcome, ServeConfig, ServeError};
use proptest::prelude::*;
use std::time::Duration;

/// The conformance shapes the soak harness rotates through.
fn shape(i: usize) -> (Dims, usize) {
    match i % 3 {
        0 => (Dims::d2(16, 32), 128),
        1 => (Dims::d3(8, 8, 16), 128),
        _ => (Dims::d3(8, 16, 16), 256),
    }
}

fn request(shape_i: usize, seed: u64) -> FftRequest {
    let (dims, b) = shape(shape_i);
    FftRequest::new(dims, random_complex(dims.total(), seed)).buffer_elems(b)
}

/// Tally of one run's per-ticket outcomes.
#[derive(Default, PartialEq, Eq, Debug)]
struct Tally {
    completed: u64,
    deadline_exceeded: u64,
    failed: u64,
}

impl Tally {
    fn add(&mut self, outcome: &RequestOutcome) {
        match outcome {
            RequestOutcome::Completed { .. } => self.completed += 1,
            RequestOutcome::DeadlineExceeded { .. } => self.deadline_exceeded += 1,
            RequestOutcome::Failed { .. } => self.failed += 1,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn budgets_bound_inflight_bytes_and_queue_depth(
        capacity in 1usize..6,
        budget_requests in 1usize..4,
        submissions in 4usize..20,
        seed in 0u64..1_000_000,
    ) {
        // Budget expressed in requests of the largest shape, so some
        // sequences exhaust bytes before depth and some the reverse.
        let unit = request(2, 0).working_bytes();
        let budget = budget_requests * unit;
        let server = FftServer::start(ServeConfig {
            workers: 0,
            queue_capacity: capacity,
            byte_budget: Some(budget),
            ..ServeConfig::default()
        });
        let mut submitted = 0u64;
        let mut rejected = 0u64;
        for i in 0..submissions {
            let shape_i = ((seed >> (i % 32)) % 3) as usize;
            match server.submit(request(shape_i, seed + i as u64)) {
                Ok(_ticket) => submitted += 1,
                Err(ServeError::Rejected { .. }) => rejected += 1,
                Err(other) => return Err(TestCaseError::Fail(other.to_string())),
            }
            // The invariants hold after *every* step, not just at the
            // end: nothing drains in workers = 0 mode.
            prop_assert!(server.in_flight_bytes() <= budget);
            prop_assert!(server.queue_depth() <= capacity);
        }
        let snap = server.snapshot();
        prop_assert_eq!(snap.submitted, submitted);
        prop_assert_eq!(snap.rejected.total(), rejected);
    }

    #[test]
    fn drain_terminates_with_balanced_accounting(
        capacity in 1usize..8,
        budget_requests in 1usize..4,
        submissions in 1usize..24,
        expired_mask in 0u32..256,
        seed in 0u64..1_000_000,
    ) {
        let unit = request(2, 0).working_bytes();
        let mut server = FftServer::start(ServeConfig {
            workers: 0,
            queue_capacity: capacity,
            byte_budget: Some(budget_requests * unit),
            ..ServeConfig::default()
        });
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for i in 0..submissions {
            let shape_i = ((seed >> (i % 32)) % 3) as usize;
            let mut req = request(shape_i, seed + i as u64);
            if expired_mask & (1 << (i % 8)) != 0 {
                // Already-expired deadline: must still terminate with
                // exactly one typed outcome at drain.
                req = req.deadline(Duration::ZERO);
            }
            match server.submit(req) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Rejected { .. }) => rejected += 1,
                Err(other) => return Err(TestCaseError::Fail(other.to_string())),
            }
        }
        let report = server.shutdown();
        prop_assert!(report.holds(), "unbalanced report: {:?}", report);
        prop_assert_eq!(report.submitted, tickets.len() as u64);
        prop_assert_eq!(report.rejected.total(), rejected);
        let mut tally = Tally::default();
        for t in tickets {
            tally.add(&t.wait());
        }
        prop_assert_eq!(tally.completed, report.completed);
        prop_assert_eq!(tally.deadline_exceeded, report.deadline_exceeded);
        prop_assert_eq!(tally.failed, report.failed);
        // Everything admitted released its working set.
        prop_assert_eq!(server.in_flight_bytes(), 0);
    }

    #[test]
    fn concurrent_drain_delivers_exactly_one_outcome_per_ticket(
        workers in 1usize..3,
        submissions in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut server = FftServer::start(ServeConfig {
            workers,
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for i in 0..submissions {
            match server.submit(request(i % 3, seed + i as u64)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Rejected { .. }) => rejected += 1,
                Err(other) => return Err(TestCaseError::Fail(other.to_string())),
            }
        }
        let report = server.shutdown();
        prop_assert!(report.holds(), "unbalanced report: {:?}", report);
        prop_assert_eq!(report.submitted + rejected, submissions as u64);
        let mut tally = Tally::default();
        for t in tickets {
            // Terminates for every admitted ticket (the contract).
            tally.add(&t.wait());
        }
        prop_assert_eq!(tally.completed, report.completed);
        prop_assert_eq!(tally.deadline_exceeded, report.deadline_exceeded);
        prop_assert_eq!(tally.failed, report.failed);
    }
}
