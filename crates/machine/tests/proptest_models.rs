//! Property-based tests of the hardware models: invariants that must
//! hold for any access sequence.

use bwfft_machine::cache::{AccessResult, SetAssocCache};
use bwfft_machine::engine::{Engine, ThreadProg};
use bwfft_machine::tlb::Tlb;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn line_just_accessed_is_always_resident(
        addrs in prop::collection::vec(0u64..1_000_000, 1..200),
        sets in prop_oneof![Just(4usize), Just(16), Just(64)],
        ways in 1usize..8,
    ) {
        let mut c = SetAssocCache::new(sets, ways, 64);
        for a in addrs {
            c.access(a, false, false);
            prop_assert!(c.probe(a), "line {a} must be resident after access");
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity(
        addrs in prop::collection::vec(0u64..10_000_000, 1..400),
    ) {
        let mut c = SetAssocCache::new(16, 4, 64);
        for a in addrs {
            c.access(a, true, false);
            prop_assert!(c.resident_lines() <= 64);
        }
    }

    #[test]
    fn stats_add_up(
        addrs in prop::collection::vec((0u64..100_000, any::<bool>(), any::<bool>()), 1..200),
    ) {
        let mut c = SetAssocCache::new(8, 2, 64);
        let n = addrs.len() as u64;
        for (a, w, nt) in addrs {
            c.access(a, w, nt);
        }
        prop_assert_eq!(c.stats.accesses(), n);
        prop_assert!(c.stats.writebacks <= c.stats.misses);
    }

    #[test]
    fn non_temporal_never_changes_contents(
        warm in prop::collection::vec(0u64..10_000, 1..50),
        stream in prop::collection::vec(1_000_000u64..2_000_000, 1..100),
    ) {
        let mut c = SetAssocCache::new(8, 4, 64);
        for a in &warm {
            c.access(*a, false, false);
        }
        // Snapshot residency after warming (the warm set may have
        // self-evicted within a set; that is fine — the property is
        // that the NT stream changes *nothing*).
        let before_lines = c.resident_lines();
        let before: Vec<bool> = warm.iter().map(|a| c.probe(*a)).collect();
        for a in &stream {
            prop_assert_eq!(c.access(*a, true, true), AccessResult::Bypass);
        }
        prop_assert_eq!(c.resident_lines(), before_lines);
        for (a, was) in warm.iter().zip(before) {
            prop_assert_eq!(c.probe(*a), was);
        }
    }

    #[test]
    fn tlb_hits_within_working_set_after_warmup(
        pages in 1u64..16,
        reps in 2usize..5,
    ) {
        let mut t = Tlb::new(32, 4096);
        for _ in 0..reps {
            for p in 0..pages {
                t.access(p * 4096);
            }
        }
        // After the first lap everything hits (working set ≤ entries).
        prop_assert_eq!(t.stats.misses, pages);
        prop_assert_eq!(t.stats.hits, (reps as u64 - 1) * pages);
    }

    #[test]
    fn engine_time_equals_work_over_capacity_for_serial_jobs(
        amounts in prop::collection::vec(1.0f64..1000.0, 1..10),
        cap in 1.0f64..100.0,
    ) {
        // One thread running jobs back-to-back on one resource: total
        // time is exactly Σ amount / cap.
        let mut e = Engine::new();
        let r = e.add_resource("r", cap);
        let mut p = ThreadProg::new();
        let mut expect = 0.0;
        for a in &amounts {
            p.use_res(r, *a);
            expect += a / cap;
        }
        let stats = e.run(vec![p]);
        prop_assert!((stats.total_ns - expect).abs() < 1e-6 * expect.max(1.0));
    }

    #[test]
    fn engine_conserves_served_units(
        jobs in prop::collection::vec(1.0f64..500.0, 1..8),
    ) {
        // Parallel threads on one shared resource: served units equal
        // the sum of demands when the run completes.
        let mut e = Engine::new();
        let r = e.add_resource("r", 7.5);
        let total: f64 = jobs.iter().sum();
        let progs: Vec<ThreadProg> = jobs
            .iter()
            .map(|a| {
                let mut p = ThreadProg::new();
                p.use_res(r, *a);
                p
            })
            .collect();
        let stats = e.run(progs);
        prop_assert!((stats.served[r] - total).abs() < 1e-6 * total);
        // And the makespan is at least total/cap (work conservation)
        // and at most what a single shared stream would take.
        prop_assert!(stats.total_ns >= total / 7.5 - 1e-9);
    }

    #[test]
    fn capped_jobs_never_run_faster_than_their_cap(
        amount in 10.0f64..1000.0,
        cap in 0.5f64..5.0,
    ) {
        let mut e = Engine::new();
        let r = e.add_resource("r", 1000.0); // effectively unlimited
        let mut p = ThreadProg::new();
        p.use_capped(r, amount, cap);
        let stats = e.run(vec![p]);
        prop_assert!(stats.total_ns >= amount / cap - 1e-6);
    }
}
