//! Typed errors of the discrete-event engine.

use crate::engine::ResourceId;

/// Why an engine run (or fault-injection setup) failed.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Every live thread is blocked at a barrier that can never fill.
    Deadlock {
        /// Arrival count per barrier id at the time of the deadlock.
        barrier_counts: Vec<usize>,
    },
    /// A program used barrier `id` without a prior `set_barrier`.
    UndeclaredBarrier { id: usize },
    /// A derating targeted a resource id that was never registered.
    UnknownResource { res: ResourceId },
    /// A derating factor outside `(0, 1]`.
    InvalidDerate { res: ResourceId, factor: f64 },
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Deadlock { barrier_counts } => write!(
                f,
                "deadlock: all threads blocked at barriers \
                 (barrier counts: {barrier_counts:?})"
            ),
            EngineError::UndeclaredBarrier { id } => {
                write!(f, "barrier {id} used but not declared")
            }
            EngineError::UnknownResource { res } => {
                write!(f, "unknown resource id {res}")
            }
            EngineError::InvalidDerate { res, factor } => write!(
                f,
                "derate factor {factor} for resource {res} outside (0, 1]"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_messages() {
        // `Engine::run` panics with these texts; callers match on them.
        let e = EngineError::Deadlock {
            barrier_counts: vec![1, 0],
        };
        assert!(e.to_string().starts_with("deadlock"));
        let e = EngineError::UndeclaredBarrier { id: 3 };
        assert_eq!(e.to_string(), "barrier 3 used but not declared");
    }
}
