//! Discrete-event engine: threads, barriers and bandwidth contention.
//!
//! The engine simulates a set of hardware threads, each executing a
//! straight-line program of operations against shared *resources*
//! (DRAM channels, NUMA links, per-core execution units). Resources are
//! processor-sharing servers: when `n` jobs are in service the capacity
//! is split `cap/n` — the first-order model of how concurrent memory
//! streams share a channel and how the soft-DMA data threads contend
//! with everything else for bandwidth.
//!
//! Barriers reproduce the `#pragma omp barrier` synchronization of the
//! paper's framework (§III-D): a barrier op blocks until its expected
//! number of participants arrive.
//!
//! [`Engine::try_run`] is the typed entry point (deadlocks and
//! undeclared barriers come back as [`EngineError`] values);
//! [`Engine::run`] is the legacy panicking convenience wrapper.
//! [`Engine::derate_resource`] scales a resource's capacity for fault
//! drills (a flaky DIMM, a congested NUMA link).

use crate::error::EngineError;

/// Index into the engine's resource table.
pub type ResourceId = usize;

/// One step of a thread program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Consume `amount` units (bytes, flops …) of a shared resource.
    Use { res: ResourceId, amount: f64 },
    /// Like [`Op::Use`] but the job can never progress faster than
    /// `max_rate` units/ns even when the resource is idle — models
    /// demand-miss latency limits: a thread chasing strided cache
    /// misses is bounded by `MLP · line / latency` regardless of how
    /// much channel bandwidth is free.
    UseCapped {
        res: ResourceId,
        amount: f64,
        max_rate: f64,
    },
    /// A fixed latency that uses no shared resource (page walks,
    /// synchronization overhead, NOP slots).
    Delay { ns: f64 },
    /// Wait until barrier `id` has been reached by its expected count.
    Barrier { id: usize },
}

/// A straight-line program for one simulated thread.
#[derive(Clone, Debug, Default)]
pub struct ThreadProg {
    pub ops: Vec<Op>,
}

impl ThreadProg {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn use_res(&mut self, res: ResourceId, amount: f64) -> &mut Self {
        if amount > 0.0 {
            self.ops.push(Op::Use { res, amount });
        }
        self
    }

    pub fn use_capped(&mut self, res: ResourceId, amount: f64, max_rate: f64) -> &mut Self {
        assert!(max_rate > 0.0);
        if amount > 0.0 {
            self.ops.push(Op::UseCapped {
                res,
                amount,
                max_rate,
            });
        }
        self
    }

    pub fn delay(&mut self, ns: f64) -> &mut Self {
        if ns > 0.0 {
            self.ops.push(Op::Delay { ns });
        }
        self
    }

    pub fn barrier(&mut self, id: usize) -> &mut Self {
        self.ops.push(Op::Barrier { id });
        self
    }
}

/// A processor-sharing resource.
#[derive(Clone, Debug)]
pub struct Resource {
    pub name: String,
    /// Capacity in units per ns.
    pub cap_per_ns: f64,
}

/// Aggregate results of a run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall-clock of the whole run, ns.
    pub total_ns: f64,
    /// Per-resource: total units served.
    pub served: Vec<f64>,
    /// Per-resource: integral of (active jobs > 0) over time, ns.
    pub busy_ns: Vec<f64>,
    /// Per-thread: ns spent blocked at barriers.
    pub barrier_wait_ns: Vec<f64>,
    /// Per-resource merged busy intervals `(start_ns, end_ns)` — only
    /// populated when [`Engine::record_timeline`] was enabled.
    pub timeline: Vec<Vec<(f64, f64)>>,
}

impl RunStats {
    /// Average utilization of a resource over the whole run.
    pub fn utilization(&self, res: ResourceId) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.busy_ns[res] / self.total_ns
        }
    }

    /// Average achieved throughput of a resource (units/ns) over the
    /// whole run.
    pub fn throughput(&self, res: ResourceId) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.served[res] / self.total_ns
        }
    }
}

#[derive(Clone, Debug)]
enum ThreadState {
    Ready,
    Running {
        res: ResourceId,
        remaining: f64,
        /// Per-job rate ceiling (`f64::INFINITY` for plain `Use`).
        max_rate: f64,
    },
    Delaying { remaining_ns: f64 },
    Blocked { barrier: usize, since_ns: f64 },
    Done,
}

/// The engine itself.
///
/// ```
/// use bwfft_machine::{Engine, ThreadProg};
///
/// // Two 1000-byte streams share a 10 B/ns channel: 200 ns total.
/// let mut e = Engine::new();
/// let dram = e.add_resource("dram", 10.0);
/// let progs: Vec<ThreadProg> = (0..2).map(|_| {
///     let mut p = ThreadProg::new();
///     p.use_res(dram, 1000.0);
///     p
/// }).collect();
/// let stats = e.run(progs);
/// assert!((stats.total_ns - 200.0).abs() < 1e-9);
/// ```
pub struct Engine {
    resources: Vec<Resource>,
    /// Expected arrival count per barrier id.
    barrier_expected: Vec<usize>,
    /// Record per-resource busy intervals into `RunStats::timeline`.
    record_timeline: bool,
}

impl Engine {
    pub fn new() -> Self {
        Self {
            resources: Vec::new(),
            barrier_expected: Vec::new(),
            record_timeline: false,
        }
    }

    /// Enables busy-interval recording (for timeline visualizations;
    /// costs memory proportional to the number of busy stretches).
    pub fn record_timeline(&mut self, on: bool) {
        self.record_timeline = on;
    }

    /// Registers a resource; returns its id.
    pub fn add_resource(&mut self, name: impl Into<String>, cap_per_ns: f64) -> ResourceId {
        assert!(cap_per_ns > 0.0, "resource capacity must be positive");
        self.resources.push(Resource {
            name: name.into(),
            cap_per_ns,
        });
        self.resources.len() - 1
    }

    /// Declares barrier `id` to expect `count` arrivals per use.
    /// Barriers are reusable (each release re-arms them).
    pub fn set_barrier(&mut self, id: usize, count: usize) {
        if self.barrier_expected.len() <= id {
            self.barrier_expected.resize(id + 1, 0);
        }
        self.barrier_expected[id] = count;
    }

    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id].name
    }

    /// Multiplies a resource's capacity by `factor` in `(0, 1]` —
    /// fault-injection knob for a derated DRAM channel or NUMA link.
    pub fn derate_resource(&mut self, res: ResourceId, factor: f64) -> Result<(), EngineError> {
        if res >= self.resources.len() {
            return Err(EngineError::UnknownResource { res });
        }
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(EngineError::InvalidDerate { res, factor });
        }
        self.resources[res].cap_per_ns *= factor;
        Ok(())
    }

    /// Runs the thread programs to completion; panics on deadlock
    /// (a barrier that can never be satisfied). Legacy wrapper around
    /// [`Engine::try_run`] for callers that treat these as bugs.
    pub fn run(&self, progs: Vec<ThreadProg>) -> RunStats {
        match self.try_run(progs) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the thread programs to completion, reporting unsatisfiable
    /// barriers and undeclared barrier ids as typed errors.
    pub fn try_run(&self, progs: Vec<ThreadProg>) -> Result<RunStats, EngineError> {
        let nt = progs.len();
        let nr = self.resources.len();
        let mut ip = vec![0usize; nt];
        let mut state: Vec<ThreadState> = vec![ThreadState::Ready; nt];
        let mut barrier_count = vec![0usize; self.barrier_expected.len()];
        let mut stats = RunStats {
            total_ns: 0.0,
            served: vec![0.0; nr],
            busy_ns: vec![0.0; nr],
            barrier_wait_ns: vec![0.0; nt],
            timeline: vec![Vec::new(); if self.record_timeline { nr } else { 0 }],
        };
        let mut now = 0.0f64;

        loop {
            // Phase 1: advance every Ready thread to a blocking state,
            // releasing barriers as they fill.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for t in 0..nt {
                    if !matches!(state[t], ThreadState::Ready) {
                        continue;
                    }
                    let prog = &progs[t];
                    if ip[t] >= prog.ops.len() {
                        state[t] = ThreadState::Done;
                        progressed = true;
                        continue;
                    }
                    match prog.ops[ip[t]] {
                        Op::Use { res, amount } => {
                            state[t] = ThreadState::Running {
                                res,
                                remaining: amount,
                                max_rate: f64::INFINITY,
                            };
                            ip[t] += 1;
                        }
                        Op::UseCapped {
                            res,
                            amount,
                            max_rate,
                        } => {
                            state[t] = ThreadState::Running {
                                res,
                                remaining: amount,
                                max_rate,
                            };
                            ip[t] += 1;
                        }
                        Op::Delay { ns } => {
                            state[t] = ThreadState::Delaying { remaining_ns: ns };
                            ip[t] += 1;
                        }
                        Op::Barrier { id } => {
                            if id >= self.barrier_expected.len() || self.barrier_expected[id] == 0 {
                                return Err(EngineError::UndeclaredBarrier { id });
                            }
                            barrier_count[id] += 1;
                            state[t] = ThreadState::Blocked {
                                barrier: id,
                                since_ns: now,
                            };
                            ip[t] += 1;
                            if barrier_count[id] == self.barrier_expected[id] {
                                // Release everyone (including t).
                                barrier_count[id] = 0;
                                for (u, st) in state.iter_mut().enumerate() {
                                    if let ThreadState::Blocked { barrier, since_ns } = *st {
                                        if barrier == id {
                                            stats.barrier_wait_ns[u] += now - since_ns;
                                            *st = ThreadState::Ready;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    progressed = true;
                }
            }

            if state.iter().all(|s| matches!(s, ThreadState::Done)) {
                stats.total_ns = now;
                return Ok(stats);
            }

            // Phase 2: compute per-job rates under processor sharing
            // with per-job caps (water-filling: capped jobs below their
            // fair share release capacity to the others).
            let rates = self.compute_rates(&state, nr);
            let mut dt = f64::INFINITY;
            for (t, s) in state.iter().enumerate() {
                match s {
                    ThreadState::Running { remaining, .. } => {
                        dt = dt.min(remaining / rates[t]);
                    }
                    ThreadState::Delaying { remaining_ns } => {
                        dt = dt.min(*remaining_ns);
                    }
                    _ => {}
                }
            }
            if !dt.is_finite() {
                return Err(EngineError::Deadlock {
                    barrier_counts: barrier_count,
                });
            }

            // Phase 3: advance time by dt.
            now += dt;
            let mut res_active = vec![false; nr];
            for (t, s) in state.iter_mut().enumerate() {
                match s {
                    ThreadState::Running { res, remaining, .. } => {
                        res_active[*res] = true;
                        stats.served[*res] += rates[t] * dt;
                        *remaining -= rates[t] * dt;
                        if *remaining <= 1e-9 {
                            *s = ThreadState::Ready;
                        }
                    }
                    ThreadState::Delaying { remaining_ns } => {
                        *remaining_ns -= dt;
                        if *remaining_ns <= 1e-9 {
                            *s = ThreadState::Ready;
                        }
                    }
                    _ => {}
                }
            }
            for (res, active) in res_active.iter().enumerate() {
                if *active {
                    stats.busy_ns[res] += dt;
                    if self.record_timeline {
                        let start = now - dt;
                        match stats.timeline[res].last_mut() {
                            Some(last) if (last.1 - start).abs() < 1e-9 => last.1 = now,
                            _ => stats.timeline[res].push((start, now)),
                        }
                    }
                }
            }
        }
    }
}

impl Engine {
    /// Water-filling rate allocation: per resource, capped jobs whose
    /// ceiling is below the fair share are frozen at their ceiling and
    /// their unused share is redistributed among the rest.
    fn compute_rates(&self, state: &[ThreadState], nr: usize) -> Vec<f64> {
        let mut rates = vec![0.0f64; state.len()];
        for res in 0..nr {
            let jobs: Vec<(usize, f64)> = state
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    ThreadState::Running {
                        res: r, max_rate, ..
                    } if *r == res => Some((t, *max_rate)),
                    _ => None,
                })
                .collect();
            if jobs.is_empty() {
                continue;
            }
            let mut capacity = self.resources[res].cap_per_ns;
            let mut open: Vec<(usize, f64)> = jobs;
            // Freeze capped jobs below the running fair share.
            loop {
                let share = capacity / open.len() as f64;
                let (frozen, rest): (Vec<_>, Vec<_>) =
                    open.iter().partition(|(_, cap)| *cap < share);
                if frozen.is_empty() {
                    for (t, _) in &open {
                        rates[*t] = share;
                    }
                    break;
                }
                for (t, cap) in &frozen {
                    rates[*t] = *cap;
                    capacity -= *cap;
                }
                if rest.is_empty() {
                    break;
                }
                open = rest;
            }
        }
        rates
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_job_takes_amount_over_capacity() {
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 40.0); // 40 B/ns
        let mut p = ThreadProg::new();
        p.use_res(mem, 4000.0);
        let stats = e.run(vec![p]);
        assert!(close(stats.total_ns, 100.0), "{}", stats.total_ns);
        assert!(close(stats.served[mem], 4000.0));
        assert!(close(stats.utilization(mem), 1.0));
    }

    #[test]
    fn two_jobs_share_bandwidth() {
        // Two equal streams on one channel finish together in 2× the
        // solo time — processor sharing.
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 10.0);
        let mk = || {
            let mut p = ThreadProg::new();
            p.use_res(mem, 1000.0);
            p
        };
        let stats = e.run(vec![mk(), mk()]);
        assert!(close(stats.total_ns, 200.0), "{}", stats.total_ns);
    }

    #[test]
    fn unequal_jobs_release_share_early() {
        // Jobs of 100 and 300 units at cap 10: both run at 5 until the
        // small one finishes at t=20; the big one has 200 left at rate
        // 10 → finishes at t=40.
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 10.0);
        let mut a = ThreadProg::new();
        a.use_res(mem, 100.0);
        let mut b = ThreadProg::new();
        b.use_res(mem, 300.0);
        let stats = e.run(vec![a, b]);
        assert!(close(stats.total_ns, 40.0), "{}", stats.total_ns);
    }

    #[test]
    fn independent_resources_overlap() {
        // Compute on one resource and memory on another proceed in
        // parallel: total = max, not sum — the paper's overlap claim in
        // its purest form.
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 10.0);
        let cpu = e.add_resource("core", 50.0);
        let mut data = ThreadProg::new();
        data.use_res(mem, 1000.0); // 100 ns
        let mut compute = ThreadProg::new();
        compute.use_res(cpu, 3000.0); // 60 ns
        let stats = e.run(vec![data, compute]);
        assert!(close(stats.total_ns, 100.0), "{}", stats.total_ns);
    }

    #[test]
    fn serialized_tasks_sum() {
        // The no-overlap baseline: one thread does memory then compute.
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 10.0);
        let cpu = e.add_resource("core", 50.0);
        let mut p = ThreadProg::new();
        p.use_res(mem, 1000.0).use_res(cpu, 3000.0);
        let stats = e.run(vec![p]);
        assert!(close(stats.total_ns, 160.0), "{}", stats.total_ns);
    }

    #[test]
    fn barrier_synchronizes() {
        // Fast thread waits for slow thread at the barrier.
        let mut e = Engine::new();
        let cpu = e.add_resource("core", 1.0);
        e.set_barrier(0, 2);
        let mut fast = ThreadProg::new();
        fast.use_res(cpu, 10.0).barrier(0).delay(5.0);
        let mut slow = ThreadProg::new();
        slow.delay(100.0).barrier(0).delay(5.0);
        let stats = e.run(vec![fast, slow]);
        assert!(close(stats.total_ns, 105.0), "{}", stats.total_ns);
        // Fast thread waited ~90 ns less its 10ns of compute...
        assert!(stats.barrier_wait_ns[0] > 80.0);
        assert!(close(stats.barrier_wait_ns[1], 0.0));
    }

    #[test]
    fn reusable_barriers_pipeline() {
        // Two iterations of a two-thread barrier loop.
        let mut e = Engine::new();
        let cpu = e.add_resource("core", 1.0);
        e.set_barrier(0, 2);
        let mk = |work: f64| {
            let mut p = ThreadProg::new();
            p.use_res(cpu, work).barrier(0).use_res(cpu, work).barrier(0);
            p
        };
        // cpu is shared: two 10-unit jobs at cap 1 → 20 ns per phase.
        let stats = e.run(vec![mk(10.0), mk(10.0)]);
        assert!(close(stats.total_ns, 40.0), "{}", stats.total_ns);
    }

    #[test]
    fn delay_uses_no_shared_capacity() {
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 10.0);
        let mut a = ThreadProg::new();
        a.use_res(mem, 1000.0);
        let mut b = ThreadProg::new();
        b.delay(1000.0);
        let stats = e.run(vec![a, b]);
        // Memory stream is undisturbed by the delaying thread.
        assert!(close(stats.total_ns, 1000.0));
        assert!(close(stats.busy_ns[mem], 100.0));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unsatisfiable_barrier_panics() {
        let mut e = Engine::new();
        let _ = e.add_resource("core", 1.0);
        e.set_barrier(0, 2);
        let mut p = ThreadProg::new();
        p.barrier(0);
        let _ = e.run(vec![p]);
    }

    #[test]
    fn try_run_types_the_deadlock() {
        let mut e = Engine::new();
        let _ = e.add_resource("core", 1.0);
        e.set_barrier(0, 2);
        let mut p = ThreadProg::new();
        p.barrier(0);
        let err = e.try_run(vec![p]).unwrap_err();
        assert_eq!(
            err,
            EngineError::Deadlock {
                barrier_counts: vec![1]
            }
        );
    }

    #[test]
    fn try_run_types_undeclared_barriers() {
        let e = Engine::new();
        let mut p = ThreadProg::new();
        p.barrier(7);
        assert_eq!(
            e.try_run(vec![p]).unwrap_err(),
            EngineError::UndeclaredBarrier { id: 7 }
        );
    }

    #[test]
    fn derating_halves_throughput() {
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 40.0);
        e.derate_resource(mem, 0.5).unwrap();
        let mut p = ThreadProg::new();
        p.use_res(mem, 4000.0);
        let stats = e.run(vec![p]);
        assert!(close(stats.total_ns, 200.0), "{}", stats.total_ns);
    }

    #[test]
    fn derating_rejects_bad_requests() {
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 40.0);
        assert_eq!(
            e.derate_resource(mem + 1, 0.5).unwrap_err(),
            EngineError::UnknownResource { res: mem + 1 }
        );
        assert_eq!(
            e.derate_resource(mem, 0.0).unwrap_err(),
            EngineError::InvalidDerate {
                res: mem,
                factor: 0.0
            }
        );
        assert!(e.derate_resource(mem, 1.5).is_err());
    }

    #[test]
    fn empty_program_finishes_instantly() {
        let mut e = Engine::new();
        let _ = e.add_resource("core", 1.0);
        let stats = e.run(vec![ThreadProg::new()]);
        assert_eq!(stats.total_ns, 0.0);
    }
}

#[cfg(test)]
mod capped_tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn cap_limits_a_lone_job() {
        // 1000 units on a 40-unit/ns channel but capped at 5/ns.
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 40.0);
        let mut p = ThreadProg::new();
        p.use_capped(mem, 1000.0, 5.0);
        let stats = e.run(vec![p]);
        assert!(close(stats.total_ns, 200.0), "{}", stats.total_ns);
        assert!(close(stats.served[mem], 1000.0));
    }

    #[test]
    fn capped_job_releases_share_to_uncapped_peer() {
        // Channel 40/ns; job A capped at 5/ns, job B uncapped.
        // B gets 35/ns, not 20: water-filling redistributes.
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 40.0);
        let mut a = ThreadProg::new();
        a.use_capped(mem, 500.0, 5.0); // alone would take 100 ns
        let mut b = ThreadProg::new();
        b.use_res(mem, 3500.0); // at 35/ns takes 100 ns
        let stats = e.run(vec![a, b]);
        assert!(close(stats.total_ns, 100.0), "{}", stats.total_ns);
    }

    #[test]
    fn many_capped_jobs_cannot_exceed_channel() {
        // 8 threads capped at 10/ns each on a 40/ns channel: aggregate
        // is channel-bound (each effectively gets 5/ns).
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 40.0);
        let progs: Vec<ThreadProg> = (0..8)
            .map(|_| {
                let mut p = ThreadProg::new();
                p.use_capped(mem, 500.0, 10.0);
                p
            })
            .collect();
        let stats = e.run(progs);
        assert!(close(stats.total_ns, 100.0), "{}", stats.total_ns);
    }

    #[test]
    fn few_capped_jobs_are_latency_bound() {
        // 2 threads capped at 10/ns on a 40/ns channel: the channel is
        // half idle; time is cap-bound.
        let mut e = Engine::new();
        let mem = e.add_resource("dram", 40.0);
        let progs: Vec<ThreadProg> = (0..2)
            .map(|_| {
                let mut p = ThreadProg::new();
                p.use_capped(mem, 500.0, 10.0);
                p
            })
            .collect();
        let stats = e.run(progs);
        assert!(close(stats.total_ns, 50.0), "{}", stats.total_ns);
        assert!(stats.utilization(mem) > 0.99);
        assert!(close(stats.throughput(mem), 20.0));
    }
}
