//! TLB model.
//!
//! The paper attributes the 2D FFT's bandwidth dropoff at large pencil
//! sizes to TLB behaviour: the transposed write walks one cacheline per
//! page across `m/μ` distinct page streams, and once the live page set
//! exceeds TLB reach every burst pays a page walk (§V, "TLB misses
//! cannot be amortized"). The model is an LRU set of page numbers with
//! a fixed walk cost.

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    pub hits: u64,
    pub misses: u64,
}

impl TlbStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Fully-associative LRU TLB of `entries` pages.
pub struct Tlb {
    entries: usize,
    page_bytes: usize,
    /// (page number, last-touch clock); linear scan — entry counts are
    /// ≤ a few thousand and this code runs once per stage pattern, not
    /// per simulated iteration.
    slots: Vec<(u64, u64)>,
    clock: u64,
    pub stats: TlbStats,
}

impl Tlb {
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(entries > 0 && page_bytes.is_power_of_two());
        Self {
            entries,
            page_bytes,
            slots: Vec::with_capacity(entries),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Touches the page containing byte address `addr`; returns true on
    /// a TLB hit.
    pub fn access(&mut self, addr_bytes: u64) -> bool {
        self.clock += 1;
        let page = addr_bytes / self.page_bytes as u64;
        if let Some(slot) = self.slots.iter_mut().find(|(p, _)| *p == page) {
            slot.1 = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.slots.len() < self.entries {
            self.slots.push((page, self.clock));
        } else {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map_or(0, |(i, _)| i);
            self.slots[victim] = (page, self.clock);
        }
        false
    }

    pub fn reset(&mut self) {
        self.slots.clear();
        self.clock = 0;
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_page_accesses_hit() {
        let mut t = Tlb::new(16, 4096);
        t.access(0);
        for off in [64u64, 1000, 4095] {
            assert!(t.access(off));
        }
        assert_eq!(t.stats.misses, 1);
        assert_eq!(t.stats.hits, 3);
    }

    #[test]
    fn cycling_more_pages_than_entries_thrashes() {
        // 8-entry TLB, cycle 16 pages repeatedly: every access misses.
        let mut t = Tlb::new(8, 4096);
        for _ in 0..3 {
            for p in 0..16u64 {
                t.access(p * 4096);
            }
        }
        assert_eq!(t.stats.hits, 0);
        assert_eq!(t.stats.misses, 48);
    }

    #[test]
    fn cycling_fewer_pages_than_entries_amortizes() {
        let mut t = Tlb::new(8, 4096);
        for rep in 0..3 {
            for p in 0..6u64 {
                let hit = t.access(p * 4096);
                assert_eq!(hit, rep > 0);
            }
        }
        assert_eq!(t.stats.misses, 6);
        assert_eq!(t.stats.hits, 12);
    }

    #[test]
    fn the_paper_2d_mechanism() {
        // The stage-1 transposed write of a 2D FFT cycles through m/μ
        // page "columns" per row of the buffer panel. With m/μ beyond
        // TLB reach the miss rate approaches 1; within reach it
        // approaches μ·16/page per revisit.
        let page = 4096u64;
        let entries = 64;
        let mut within = Tlb::new(entries, page as usize);
        let mut beyond = Tlb::new(entries, page as usize);
        // 32 columns (fits) vs 128 columns (thrashes); 16 rows each;
        // rows advance 64 B inside each column page.
        for row in 0..16u64 {
            for col in 0..32u64 {
                within.access(col * 8 * page + row * 64);
            }
        }
        for row in 0..16u64 {
            for col in 0..128u64 {
                beyond.access(col * 8 * page + row * 64);
            }
        }
        assert!(within.stats.miss_rate() < 0.1, "{}", within.stats.miss_rate());
        assert!(beyond.stats.miss_rate() > 0.9, "{}", beyond.stats.miss_rate());
    }
}
