//! Machine descriptions and the five presets of the paper's §V setup.

/// Vector instruction set, determining double-precision SIMD width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VectorIsa {
    /// 128-bit: 2 doubles per vector.
    Sse,
    /// 256-bit: 4 doubles per vector.
    Avx,
}

impl VectorIsa {
    pub fn f64_lanes(self) -> usize {
        match self {
            VectorIsa::Sse => 2,
            VectorIsa::Avx => 4,
        }
    }
}

/// Which execution contexts share one cache instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheSharing {
    /// One instance per core, shared by that core's hardware threads
    /// (Intel L1/L2 in Fig. 2A; AMD per-core L1 in Fig. 2B).
    PerCore,
    /// One instance per two-core module (AMD L2 in Fig. 2B).
    PerModule,
    /// One instance per socket (the LLC in both topologies).
    PerSocket,
}

/// One cache level.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheLevel {
    pub name: &'static str,
    pub size_bytes: usize,
    pub ways: usize,
    pub line_bytes: usize,
    pub sharing: CacheSharing,
    /// Load-to-use latency in cycles.
    pub latency_cycles: f64,
}

impl CacheLevel {
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// A complete machine description. Bandwidth numbers are the *measured
/// STREAM* figures the paper quotes (§V "Experimental setup"), not
/// theoretical channel peaks.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    pub name: &'static str,
    pub sockets: usize,
    pub cores_per_socket: usize,
    pub threads_per_core: usize,
    pub ghz: f64,
    pub isa: VectorIsa,
    pub fma: bool,
    /// Cache levels, inner to outer; the last level is the LLC.
    pub caches: Vec<CacheLevel>,
    /// Achievable DRAM bandwidth per socket, GB/s (STREAM-measured,
    /// whole-machine figure divided by sockets).
    pub dram_bw_gbs_per_socket: f64,
    /// DRAM access latency, ns.
    pub dram_latency_ns: f64,
    /// Inter-socket link bandwidth per direction, GB/s (QPI / HT).
    /// Zero for single-socket machines.
    pub link_bw_gbs: f64,
    /// Second-level (unified) TLB entries per core.
    pub tlb_entries: usize,
    pub page_bytes: usize,
    /// Cost of a TLB miss (page walk), ns.
    pub tlb_walk_ns: f64,
    /// Fraction of peak floating-point throughput a tuned in-cache FFT
    /// kernel sustains (twiddle loads, shuffles and imperfect port
    /// balance keep this well below 1).
    pub kernel_flop_efficiency: f64,
    /// DRAM efficiency of *scattered* cacheline-sized non-temporal
    /// stores relative to sequential streaming: each 64-B burst to a
    /// distant address costs a DRAM row activation that sequential
    /// streams amortize. Sequential traffic is unaffected.
    pub scattered_write_efficiency: f64,
    /// Maximum streaming bandwidth one hardware thread can sustain,
    /// GB/s (line-fill-buffer / write-combining-buffer limited). This
    /// is why a single data thread cannot drive the whole channel and
    /// the paper dedicates *half* the threads to data movement.
    pub per_thread_stream_gbs: f64,
    /// Multiplier on a compute thread's throughput when it shares a
    /// core with a data thread that interleaves NOPs (§IV-A); without
    /// the NOP mitigation use `ht_contention_raw`.
    pub ht_contention_mitigated: f64,
    /// Same, when the paired data thread issues back-to-back
    /// loads/stores with no NOP slots.
    pub ht_contention_raw: f64,
}

impl MachineSpec {
    /// Total hardware threads.
    pub fn total_threads(&self) -> usize {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Peak double-precision flops per core, per ns. Two FMA ports on
    /// FMA-capable parts give `lanes·4` flops/cycle; older SSE parts
    /// sustain `lanes·2` (one add + one mul pipe).
    pub fn peak_flops_per_core_ns(&self) -> f64 {
        let flops_per_cycle = if self.fma {
            self.isa.f64_lanes() as f64 * 4.0
        } else {
            self.isa.f64_lanes() as f64 * 2.0
        };
        flops_per_cycle * self.ghz
    }

    /// Sustained FFT-kernel flops per core per ns.
    pub fn fft_flops_per_core_ns(&self) -> f64 {
        self.peak_flops_per_core_ns() * self.kernel_flop_efficiency
    }

    /// DRAM bandwidth per socket in bytes/ns (== GB/s numerically).
    pub fn dram_bytes_per_ns(&self) -> f64 {
        self.dram_bw_gbs_per_socket
    }

    /// Whole-machine STREAM bandwidth, GB/s.
    pub fn total_dram_bw_gbs(&self) -> f64 {
        self.dram_bw_gbs_per_socket * self.sockets as f64
    }

    /// The LLC level.
    #[allow(clippy::expect_used)] // every spec constructor defines ≥1 cache level
    pub fn llc(&self) -> &CacheLevel {
        self.caches.last().expect("machine has no caches")
    }

    /// The paper's buffer-sizing rule (§IV): half the LLC, in
    /// `Complex64` elements, rounded down to a power of two so the
    /// block count divides power-of-two problems.
    pub fn default_buffer_elems(&self) -> usize {
        let raw = self.llc().size_bytes / 2 / 16;
        let mut b = 1usize;
        while b * 2 <= raw {
            b *= 2;
        }
        b
    }

    /// Cacheline size in `Complex64` elements (the paper's μ).
    pub fn mu(&self) -> usize {
        self.llc().line_bytes / 16
    }

    /// Serializes the spec as JSON so experiment harnesses can dump
    /// configs next to results (hand-rolled: the workspace builds
    /// without crates.io access, so no serde).
    pub fn to_json(&self) -> String {
        let caches: Vec<String> = self
            .caches
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":\"{}\",\"size_bytes\":{},\"ways\":{},\"line_bytes\":{},\"sharing\":\"{:?}\",\"latency_cycles\":{}}}",
                    c.name, c.size_bytes, c.ways, c.line_bytes, c.sharing, c.latency_cycles
                )
            })
            .collect();
        format!(
            "{{\"name\":\"{}\",\"sockets\":{},\"cores_per_socket\":{},\"threads_per_core\":{},\"ghz\":{},\"isa\":\"{:?}\",\"fma\":{},\"caches\":[{}],\"dram_bw_gbs_per_socket\":{},\"dram_latency_ns\":{},\"link_bw_gbs\":{},\"tlb_entries\":{},\"page_bytes\":{},\"tlb_walk_ns\":{},\"kernel_flop_efficiency\":{},\"scattered_write_efficiency\":{},\"per_thread_stream_gbs\":{},\"ht_contention_mitigated\":{},\"ht_contention_raw\":{}}}",
            self.name,
            self.sockets,
            self.cores_per_socket,
            self.threads_per_core,
            self.ghz,
            self.isa,
            self.fma,
            caches.join(","),
            self.dram_bw_gbs_per_socket,
            self.dram_latency_ns,
            self.link_bw_gbs,
            self.tlb_entries,
            self.page_bytes,
            self.tlb_walk_ns,
            self.kernel_flop_efficiency,
            self.scattered_write_efficiency,
            self.per_thread_stream_gbs,
            self.ht_contention_mitigated,
            self.ht_contention_raw,
        )
    }
}

/// The five evaluation machines of §V.
///
/// ```
/// use bwfft_machine::presets;
///
/// let kbl = presets::kaby_lake_7700k();
/// assert_eq!(kbl.total_threads(), 8);
/// assert_eq!(kbl.mu(), 4);                         // 4 complex per line
/// assert_eq!(kbl.default_buffer_elems(), 1 << 18); // b = LLC/2
/// ```
pub mod presets {
    use super::*;

    fn intel_caches(l3_mb: usize) -> Vec<CacheLevel> {
        // 8 MB client parts are 16-way; the 20 MB server LLC is 20-way
        // (2.5 MB slices), which keeps the set count a power of two.
        let l3_ways = if l3_mb == 20 { 20 } else { 16 };
        vec![
            CacheLevel {
                name: "L1d",
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                sharing: CacheSharing::PerCore,
                latency_cycles: 4.0,
            },
            CacheLevel {
                name: "L2",
                size_bytes: 256 * 1024,
                ways: 4,
                line_bytes: 64,
                sharing: CacheSharing::PerCore,
                latency_cycles: 12.0,
            },
            CacheLevel {
                name: "L3",
                size_bytes: l3_mb * 1024 * 1024,
                ways: l3_ways,
                line_bytes: 64,
                sharing: CacheSharing::PerSocket,
                latency_cycles: 40.0,
            },
        ]
    }

    /// Intel Kaby Lake 7700K: 4C/8T @ 4.5 GHz, 8 MB L3, 40 GB/s.
    pub fn kaby_lake_7700k() -> MachineSpec {
        MachineSpec {
            name: "Intel Kaby Lake 7700K",
            sockets: 1,
            cores_per_socket: 4,
            threads_per_core: 2,
            ghz: 4.5,
            isa: VectorIsa::Avx,
            fma: true,
            caches: intel_caches(8),
            dram_bw_gbs_per_socket: 40.0,
            dram_latency_ns: 70.0,
            link_bw_gbs: 0.0,
            tlb_entries: 1536,
            page_bytes: 4096,
            tlb_walk_ns: 30.0,
            kernel_flop_efficiency: 0.45,
            scattered_write_efficiency: 0.75,
            per_thread_stream_gbs: 12.0,
            ht_contention_mitigated: 0.85,
            ht_contention_raw: 0.60,
        }
    }

    /// Intel Haswell 4770K: 4C/8T @ 3.5 GHz, 8 MB L3, 20 GB/s.
    pub fn haswell_4770k() -> MachineSpec {
        MachineSpec {
            name: "Intel Haswell 4770K",
            ghz: 3.5,
            dram_bw_gbs_per_socket: 20.0,
            tlb_entries: 1024,
            ..kaby_lake_7700k()
        }
    }

    /// AMD FX-8350 (Piledriver): 8 threads @ 4.0 GHz, 8 MB L3, 12 GB/s,
    /// SSE code path (per the paper's AMD plots), two-core modules
    /// sharing an FPU and a 2 MB L2.
    pub fn amd_fx_8350() -> MachineSpec {
        MachineSpec {
            name: "AMD FX-8350",
            sockets: 1,
            cores_per_socket: 8,
            threads_per_core: 1,
            ghz: 4.0,
            isa: VectorIsa::Sse,
            fma: false,
            caches: vec![
                CacheLevel {
                    name: "L1d",
                    size_bytes: 16 * 1024,
                    ways: 4,
                    line_bytes: 64,
                    sharing: CacheSharing::PerCore,
                    latency_cycles: 4.0,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: 2 * 1024 * 1024,
                    ways: 16,
                    line_bytes: 64,
                    sharing: CacheSharing::PerModule,
                    latency_cycles: 20.0,
                },
                CacheLevel {
                    name: "L3",
                    size_bytes: 8 * 1024 * 1024,
                    ways: 64,
                    line_bytes: 64,
                    sharing: CacheSharing::PerSocket,
                    latency_cycles: 50.0,
                },
            ],
            dram_bw_gbs_per_socket: 12.0,
            dram_latency_ns: 85.0,
            link_bw_gbs: 0.0,
            tlb_entries: 1024,
            page_bytes: 4096,
            tlb_walk_ns: 35.0,
            kernel_flop_efficiency: 0.50,
            scattered_write_efficiency: 0.70,
            per_thread_stream_gbs: 5.0,
            // Module pairs share the FPU even without SMT: pairing one
            // data core and one compute core per module behaves like
            // Intel's hyperthread pairing.
            ht_contention_mitigated: 0.85,
            ht_contention_raw: 0.65,
        }
    }

    /// Two-socket Intel Haswell E5-2667 v3: 16 threads, 20 MB L3 per
    /// socket, 85 GB/s aggregate STREAM, QPI between the NUMA domains
    /// (Home Snoop).
    pub fn haswell_2667v3_2s() -> MachineSpec {
        MachineSpec {
            name: "Intel Haswell 2667v3 (2 sockets)",
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 1,
            ghz: 3.2,
            isa: VectorIsa::Avx,
            fma: true,
            caches: intel_caches(20),
            dram_bw_gbs_per_socket: 42.5,
            dram_latency_ns: 80.0,
            link_bw_gbs: 16.0,
            tlb_entries: 1024,
            page_bytes: 4096,
            tlb_walk_ns: 30.0,
            kernel_flop_efficiency: 0.45,
            scattered_write_efficiency: 0.75,
            per_thread_stream_gbs: 10.0,
            ht_contention_mitigated: 0.85,
            ht_contention_raw: 0.60,
        }
    }

    /// Two-socket AMD Opteron 6276 (Interlagos, Blue Waters): 16
    /// threads, 16 MB L3 per socket, 20 GB/s aggregate, HyperTransport
    /// links whose bandwidth is comparable to the local memory bus
    /// (the paper's explanation for near-linear socket scaling).
    pub fn amd_opteron_6276_2s() -> MachineSpec {
        MachineSpec {
            name: "AMD Opteron 6276 (2 sockets)",
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 1,
            ghz: 3.2,
            isa: VectorIsa::Sse,
            fma: false,
            caches: vec![
                CacheLevel {
                    name: "L1d",
                    size_bytes: 16 * 1024,
                    ways: 4,
                    line_bytes: 64,
                    sharing: CacheSharing::PerCore,
                    latency_cycles: 4.0,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: 2 * 1024 * 1024,
                    ways: 16,
                    line_bytes: 64,
                    sharing: CacheSharing::PerModule,
                    latency_cycles: 21.0,
                },
                CacheLevel {
                    name: "L3",
                    size_bytes: 16 * 1024 * 1024,
                    ways: 64,
                    line_bytes: 64,
                    sharing: CacheSharing::PerSocket,
                    latency_cycles: 55.0,
                },
            ],
            dram_bw_gbs_per_socket: 10.0,
            dram_latency_ns: 95.0,
            // HT bandwidth ≈ local memory bandwidth on this platform.
            link_bw_gbs: 9.0,
            tlb_entries: 1024,
            page_bytes: 4096,
            tlb_walk_ns: 35.0,
            kernel_flop_efficiency: 0.50,
            scattered_write_efficiency: 0.70,
            per_thread_stream_gbs: 5.0,
            ht_contention_mitigated: 0.85,
            ht_contention_raw: 0.65,
        }
    }

    /// All five presets, for sweep harnesses.
    pub fn all() -> Vec<MachineSpec> {
        vec![
            kaby_lake_7700k(),
            haswell_4770k(),
            amd_fx_8350(),
            haswell_2667v3_2s(),
            amd_opteron_6276_2s(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_thread_counts_match_paper() {
        assert_eq!(presets::kaby_lake_7700k().total_threads(), 8);
        assert_eq!(presets::haswell_4770k().total_threads(), 8);
        assert_eq!(presets::amd_fx_8350().total_threads(), 8);
        assert_eq!(presets::haswell_2667v3_2s().total_threads(), 16);
        assert_eq!(presets::amd_opteron_6276_2s().total_threads(), 16);
    }

    #[test]
    fn llc_sizes_match_paper() {
        assert_eq!(presets::kaby_lake_7700k().llc().size_bytes, 8 << 20);
        assert_eq!(presets::haswell_2667v3_2s().llc().size_bytes, 20 << 20);
        assert_eq!(presets::amd_opteron_6276_2s().llc().size_bytes, 16 << 20);
    }

    #[test]
    fn bandwidths_match_paper() {
        assert_eq!(presets::kaby_lake_7700k().total_dram_bw_gbs(), 40.0);
        assert_eq!(presets::haswell_4770k().total_dram_bw_gbs(), 20.0);
        assert_eq!(presets::amd_fx_8350().total_dram_bw_gbs(), 12.0);
        assert_eq!(presets::haswell_2667v3_2s().total_dram_bw_gbs(), 85.0);
        assert_eq!(presets::amd_opteron_6276_2s().total_dram_bw_gbs(), 20.0);
    }

    #[test]
    fn buffer_rule_is_half_llc() {
        let kbl = presets::kaby_lake_7700k();
        // 8 MB LLC → 4 MB buffer → 256 Ki complex elements.
        assert_eq!(kbl.default_buffer_elems(), 262_144);
        assert_eq!(kbl.mu(), 4);
    }

    #[test]
    fn peak_flops_sanity() {
        let kbl = presets::kaby_lake_7700k();
        // AVX+FMA: 16 flops/cycle · 4.5 GHz = 72 Gflop/s per core.
        assert!((kbl.peak_flops_per_core_ns() - 72.0).abs() < 1e-9);
        let amd = presets::amd_fx_8350();
        // SSE, no FMA: 4 flops/cycle · 4.0 GHz = 16 Gflop/s per core.
        assert!((amd.peak_flops_per_core_ns() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn cache_geometry_is_consistent() {
        for spec in presets::all() {
            for level in &spec.caches {
                assert_eq!(
                    level.sets() * level.ways * level.line_bytes,
                    level.size_bytes,
                    "{} {}",
                    spec.name,
                    level.name
                );
                assert!(level.sets().is_power_of_two());
            }
        }
    }

    #[test]
    fn specs_are_serializable() {
        // Consumers dump configs next to experiment results; the JSON
        // dump must at least name the machine and list every cache.
        let spec = presets::kaby_lake_7700k();
        let json = spec.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"Intel Kaby Lake 7700K\""));
        assert!(json.contains("\"caches\":[{"));
        assert_eq!(json.matches("\"line_bytes\"").count(), spec.caches.len());
    }
}
