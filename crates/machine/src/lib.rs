//! Simulated multicore / multi-socket hardware.
//!
//! The paper's performance claims rest on machine mechanisms — shared
//! last-level caches, DRAM bandwidth, non-temporal stores that skip
//! read-for-ownership traffic, TLB reach, QPI/HT links between NUMA
//! nodes, and hyperthreads contending for ports. This crate models those
//! mechanisms so that the evaluation can be reproduced on a host that
//! has none of the paper's five testbeds.
//!
//! Two fidelity tiers share one machine description ([`spec::MachineSpec`]):
//!
//! * **trace tier** ([`trace`]) — every cacheline access of an access
//!   stream is played through set-associative cache and TLB models.
//!   Exact, `O(accesses)`; used for validation and small problems.
//! * **pattern tier** ([`patterns`]) — a stage's block access pattern is
//!   analyzed once (its shape is iteration-invariant), yielding per-block
//!   DRAM traffic, TLB walks and cacheline utilization; a discrete-event
//!   engine ([`engine`]) then simulates the threads, barriers and
//!   bandwidth contention of the whole run. This tier makes 2048³
//!   transforms tractable.
//!
//! The [`stream`] module reproduces the STREAM-calibrated "achievable
//! bandwidth" methodology the paper uses for its roofline (Fig. 1).

pub mod cache;
pub mod engine;
pub mod error;
pub mod hierarchy;
pub mod patterns;
pub mod spec;
pub mod stats;
pub mod stream;
pub mod tlb;
pub mod trace;

pub use engine::{Engine, Op, ResourceId, RunStats, ThreadProg};
pub use error::EngineError;
pub use spec::{presets, MachineSpec};
