//! Trace tier: exact cacheline-granularity execution of access streams.
//!
//! Plays every cacheline touch of an access stream through a cache
//! level and a TLB, producing exact DRAM traffic. Used to validate the
//! pattern-tier cost model (`ablation_fidelity` in the experiment
//! index) and for small-problem studies; cost is `O(total accesses)`.

use crate::cache::{AccessResult, SetAssocCache};
use crate::spec::MachineSpec;
use crate::tlb::{Tlb, TlbStats};
use bwfft_spl::dataflow::{AccessKind, Burst};

/// Exact traffic accounting for a replayed stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceResult {
    /// Bytes fetched from DRAM (demand misses + RFO reads).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (non-temporal stores + dirty writebacks).
    pub dram_write_bytes: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub tlb: TlbStats,
}

impl TraceResult {
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Replays bursts through the machine's LLC and TLB models.
///
/// Every distinct array in the stream must be given a disjoint base
/// address by the caller (element indices are local to an array);
/// `base_of` maps an array to its base byte address.
pub fn replay<'a>(
    spec: &MachineSpec,
    bursts: impl IntoIterator<Item = &'a Burst>,
    base_of: impl Fn(bwfft_spl::dataflow::ArrayId) -> u64,
    elem_bytes: usize,
) -> TraceResult {
    let llc = spec.llc();
    let mut cache = SetAssocCache::from_level(llc);
    let mut tlb = Tlb::new(spec.tlb_entries, spec.page_bytes);
    let line = llc.line_bytes as u64;
    let mut out = TraceResult::default();
    for b in bursts {
        let start = base_of(b.array) + (b.start * elem_bytes) as u64;
        let bytes = (b.len * elem_bytes) as u64;
        let first = start / line;
        let last = (start + bytes - 1) / line;
        for l in first..=last {
            let addr = l * line;
            tlb.access(addr);
            let write = b.kind == AccessKind::Write;
            match cache.access(addr, write, b.non_temporal) {
                AccessResult::Hit => {}
                AccessResult::Miss { evicted_dirty } => {
                    out.dram_read_bytes += line; // allocate (incl. RFO)
                    if evicted_dirty {
                        out.dram_write_bytes += line;
                    }
                }
                AccessResult::Bypass => {
                    if write {
                        out.dram_write_bytes += line;
                    } else {
                        out.dram_read_bytes += line;
                    }
                }
            }
        }
    }
    out.cache_hits = cache.stats.hits;
    out.cache_misses = cache.stats.misses;
    out.tlb = tlb.stats;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;
    use bwfft_spl::dataflow::{write_bursts, ArrayId, Burst};
    use bwfft_spl::gather_scatter::{fft3d_stage_perms, ReadMatrix, WriteMatrix};

    const EB: usize = 16;

    fn bases(a: ArrayId) -> u64 {
        match a {
            ArrayId::Input => 0,
            ArrayId::Output => 1 << 40,
            ArrayId::Buffer => 2 << 40,
        }
    }

    #[test]
    fn nt_stream_traffic_equals_payload() {
        // A full non-temporal read+write pass of one block.
        let spec = presets::kaby_lake_7700k();
        let (k, n, m, mu) = (16usize, 16, 64, 4);
        let total = k * n * m;
        let b = 4096;
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let mut all = Vec::new();
        for i in 0..total / b {
            all.extend(bwfft_spl::dataflow::read_bursts(
                &ReadMatrix::new(total, b, i),
                usize::MAX,
                true,
            ));
            all.extend(write_bursts(&WriteMatrix::new(perm, b, i), true));
        }
        let r = replay(&spec, &all, bases, EB);
        assert_eq!(r.dram_read_bytes, (total * EB) as u64);
        assert_eq!(r.dram_write_bytes, (total * EB) as u64);
        assert_eq!(r.cache_hits + r.cache_misses, 0); // all bypassed
    }

    #[test]
    fn temporal_writes_generate_rfo_and_writebacks() {
        // The same pass with temporal stores: every written line is
        // first fetched (RFO); dirty lines eventually exceed the LLC
        // and get written back. Use a footprint ≫ LLC.
        let mut spec = presets::kaby_lake_7700k();
        // Shrink the LLC so the test array (1 MiB) is ≫ cache (64 KiB).
        spec.caches.last_mut().unwrap().size_bytes = 64 * 1024;
        let (k, n, m, mu) = (16usize, 16, 256, 4);
        let total = k * n * m;
        let b = 4096;
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let mut all = Vec::new();
        for i in 0..total / b {
            all.extend(write_bursts(&WriteMatrix::new(perm, b, i), false));
        }
        let r = replay(&spec, &all, bases, EB);
        let payload = (total * EB) as u64;
        // RFO reads ≈ payload; writebacks approach payload (most dirty
        // lines are evicted; a cache-ful remains resident).
        assert_eq!(r.dram_read_bytes, payload);
        assert!(r.dram_write_bytes > payload / 2, "{}", r.dram_write_bytes);
        assert!(r.dram_write_bytes <= payload);
    }

    #[test]
    fn buffer_resident_in_llc_generates_no_traffic() {
        // Repeatedly touching a buffer smaller than the LLC: only cold
        // misses.
        let spec = presets::kaby_lake_7700k();
        let elems = 4096; // 64 KiB ≪ 8 MiB LLC
        let burst = Burst {
            array: ArrayId::Buffer,
            start: 0,
            len: elems,
            kind: AccessKind::Read,
            non_temporal: false,
        };
        let many: Vec<Burst> = (0..10).map(|_| burst).collect();
        let r = replay(&spec, &many, bases, EB);
        assert_eq!(r.dram_read_bytes, (elems * EB) as u64);
        assert!(r.cache_hits >= 9 * (elems * EB / 64) as u64);
    }

    #[test]
    fn trace_validates_pattern_tier_on_nt_rotation() {
        // The pattern-tier cost for a stage-1 NT rotated write must
        // match the exact trace within a few percent.
        let spec = presets::kaby_lake_7700k();
        let (k, n, m, mu) = (16usize, 16, 64, 4);
        let total = k * n * m;
        let b = 2048;
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let mut exact = 0.0;
        let mut modeled = 0.0;
        for i in 0..total / b {
            let w = WriteMatrix::new(perm, b, i);
            let bursts = write_bursts(&w, true);
            let tr = replay(&spec, &bursts, bases, EB);
            exact += tr.dram_write_bytes as f64;
            modeled += crate::patterns::write_block_cost(&bursts, &spec, EB, true).dram_bytes;
        }
        // The trace counts cacheline traffic; the pattern tier adds the
        // DRAM row-activation inflation for scattered bursts on top, so
        // the payload comparison removes that factor.
        let modeled_payload = modeled * spec.scattered_write_efficiency;
        let rel = (exact - modeled_payload).abs() / exact;
        assert!(rel < 0.02, "trace {exact} vs model payload {modeled_payload}");
    }
}
