//! Multi-level cache hierarchy (Fig. 2 of the paper).
//!
//! Models an inclusive L1/L2/L3 stack as seen by one hardware thread:
//! an access walks down until it hits; allocations fill every level on
//! the way back (inclusive), and an LLC eviction back-invalidates the
//! inner levels. Non-temporal accesses bypass the whole stack.
//!
//! This is the substrate for the §IV interference experiments: the FFT
//! compute working set (buffer slice + twiddles) lives in the inner
//! levels, and the question is whether the data threads' streams evict
//! it — they do with temporal accesses, they don't with non-temporal
//! ones.

use crate::cache::{AccessResult, SetAssocCache};
use crate::spec::MachineSpec;

/// Per-level statistics of a hierarchy walk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    pub hits: u64,
    pub misses: u64,
}

/// Where an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Satisfied by cache level `i` (0 = innermost).
    Cache(usize),
    /// Missed everywhere: DRAM.
    Memory,
    /// Non-temporal: bypassed the stack.
    Bypass,
}

/// An inclusive cache hierarchy for one thread's view.
pub struct Hierarchy {
    levels: Vec<SetAssocCache>,
    pub stats: Vec<LevelStats>,
    /// Total load-to-use latency accumulated, in cycles.
    pub latency_cycles: f64,
    level_latency: Vec<f64>,
    dram_latency_cycles: f64,
}

impl Hierarchy {
    /// Builds the hierarchy of `spec` (all levels, inner → outer).
    pub fn from_spec(spec: &MachineSpec) -> Self {
        let levels: Vec<SetAssocCache> = spec
            .caches
            .iter()
            .map(SetAssocCache::from_level)
            .collect();
        let level_latency: Vec<f64> = spec.caches.iter().map(|c| c.latency_cycles).collect();
        let stats = vec![LevelStats::default(); levels.len()];
        Self {
            levels,
            stats,
            latency_cycles: 0.0,
            level_latency,
            dram_latency_cycles: spec.dram_latency_ns * spec.ghz,
        }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// One access at byte address `addr`.
    pub fn access(&mut self, addr: u64, write: bool, non_temporal: bool) -> HitLevel {
        if non_temporal {
            self.latency_cycles += self.dram_latency_cycles;
            return HitLevel::Bypass;
        }
        // Walk down to the first hit.
        let mut hit_at: Option<usize> = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            match level.access(addr, write, false) {
                AccessResult::Hit => {
                    self.stats[i].hits += 1;
                    self.latency_cycles += self.level_latency[i];
                    hit_at = Some(i);
                    break;
                }
                AccessResult::Miss { .. } => {
                    self.stats[i].misses += 1;
                    // Allocation already happened in `access`; keep
                    // walking (inclusive fill on the way down).
                }
                AccessResult::Bypass => unreachable!(),
            }
        }
        match hit_at {
            Some(i) => {
                // Fill the inner levels above the hit (they missed and
                // already allocated in the walk).
                HitLevel::Cache(i)
            }
            None => {
                self.latency_cycles += self.dram_latency_cycles;
                HitLevel::Memory
            }
        }
    }

    /// True if `addr` is resident at level `i`.
    pub fn probe(&self, level: usize, addr: u64) -> bool {
        self.levels[level].probe(addr)
    }

    /// Fraction of a working set (given as line-aligned byte addresses)
    /// still resident at level `i`.
    pub fn residency(&self, level: usize, addrs: impl IntoIterator<Item = u64>) -> f64 {
        let mut total = 0usize;
        let mut resident = 0usize;
        for a in addrs {
            total += 1;
            if self.levels[level].probe(a) {
                resident += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            resident as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;

    fn kbl() -> Hierarchy {
        Hierarchy::from_spec(&presets::kaby_lake_7700k())
    }

    #[test]
    fn hit_levels_progress_outward() {
        let mut h = kbl();
        // Cold: memory.
        assert_eq!(h.access(0, false, false), HitLevel::Memory);
        // Warm: L1.
        assert_eq!(h.access(0, false, false), HitLevel::Cache(0));
    }

    #[test]
    fn l1_capacity_falls_back_to_l2() {
        let mut h = kbl();
        // Fill 64 KiB (2× L1d, well within L2).
        for addr in (0..65536u64).step_by(64) {
            h.access(addr, false, false);
        }
        // The first line fell out of L1 but is in L2.
        let lvl = h.access(0, false, false);
        assert_eq!(lvl, HitLevel::Cache(1));
    }

    #[test]
    fn llc_hit_after_l2_overflow() {
        let mut h = kbl();
        // 1 MiB: beyond L2 (256 KiB), far within L3 (8 MiB).
        for addr in (0..(1 << 20) as u64).step_by(64) {
            h.access(addr, false, false);
        }
        assert_eq!(h.access(0, false, false), HitLevel::Cache(2));
    }

    #[test]
    fn latency_accumulates_by_level() {
        let mut h = kbl();
        h.access(0, false, false); // memory
        let after_miss = h.latency_cycles;
        h.access(0, false, false); // L1
        assert!((h.latency_cycles - after_miss - 4.0).abs() < 1e-12);
    }

    #[test]
    fn temporal_stream_evicts_the_compute_working_set() {
        // §IV "interference at the cache hierarchy": a compute working
        // set (64 KiB at a high address) is resident; a temporal
        // 16 MiB stream destroys its L3 residency.
        let mut h = kbl();
        let ws: Vec<u64> = (0..65536u64).step_by(64).map(|a| (1 << 30) + a).collect();
        for &a in &ws {
            h.access(a, false, false);
        }
        assert!(h.residency(2, ws.iter().copied()) > 0.99);
        for addr in (0..(16u64 << 20)).step_by(64) {
            h.access(addr, false, false);
        }
        let after = h.residency(2, ws.iter().copied());
        assert!(after < 0.1, "LLC residency after temporal stream: {after}");
    }

    #[test]
    fn non_temporal_stream_preserves_the_working_set() {
        // The same stream with non-temporal accesses leaves the
        // compute set untouched — the paper's §IV prescription.
        let mut h = kbl();
        let ws: Vec<u64> = (0..65536u64).step_by(64).map(|a| (1 << 30) + a).collect();
        for &a in &ws {
            h.access(a, false, false);
        }
        for addr in (0..(16u64 << 20)).step_by(64) {
            h.access(addr, true, true);
        }
        let after = h.residency(2, ws.iter().copied());
        assert!(after > 0.99, "LLC residency after NT stream: {after}");
    }

    #[test]
    fn amd_hierarchy_shape() {
        let mut h = Hierarchy::from_spec(&presets::amd_fx_8350());
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.access(64, false, false), HitLevel::Memory);
        assert_eq!(h.access(64, false, false), HitLevel::Cache(0));
    }
}
