//! Pattern-tier cost model.
//!
//! A stage of the double-buffered FFT touches memory in a shape that is
//! identical for every iteration (only the base offset moves), so the
//! cost of one block is analyzed once — against the cacheline and TLB
//! models — and replayed by the discrete-event engine for all
//! `knm/b` iterations. This file turns access patterns into the two
//! quantities the engine consumes: DRAM channel bytes and serialized
//! extra latency (page walks).
//!
//! The model encodes the §IV mechanisms:
//! * non-temporal full-line stores stream at write-combining speed with
//!   no read-for-ownership;
//! * partial-line non-temporal stores degrade to read-modify-write;
//! * temporal stores cost RFO (a read) plus the eventual writeback;
//! * strided walks beyond TLB reach pay a page walk per burst.

use crate::spec::MachineSpec;
use crate::tlb::Tlb;
use bwfft_spl::dataflow::Burst;

/// Cost of moving one block (one pipeline iteration's worth of data).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficCost {
    /// Bytes that must cross the DRAM channel.
    pub dram_bytes: f64,
    /// Serialized latency not overlapped with streaming (page walks).
    pub extra_ns: f64,
    /// Diagnostic: TLB miss count for the block.
    pub tlb_misses: u64,
    /// Diagnostic: fraction of each touched cacheline actually used.
    pub line_utilization: f64,
}

/// Cost of a contiguous streaming read (or non-temporal contiguous
/// write) of `bytes`. Sequential page walks are already part of the
/// STREAM-measured bandwidth, so no extra latency is charged.
pub fn streaming_cost(bytes: f64) -> TrafficCost {
    TrafficCost {
        dram_bytes: bytes,
        extra_ns: 0.0,
        tlb_misses: 0,
        line_utilization: 1.0,
    }
}

/// Cost of one write-matrix block: `bursts` is the exact burst list of
/// a single block (from `bwfft_spl::dataflow::write_bursts`).
///
/// `non_temporal` selects streaming stores (the paper's choice) versus
/// temporal stores with read-for-ownership.
pub fn write_block_cost(
    bursts: &[Burst],
    spec: &MachineSpec,
    elem_bytes: usize,
    non_temporal: bool,
) -> TrafficCost {
    let line = spec.llc().line_bytes as f64;
    let mut dram = 0.0f64;
    let mut used = 0.0f64;
    let mut touched = 0.0f64;
    let mut tlb = Tlb::new(spec.tlb_entries, spec.page_bytes);
    let mut seq_pages = SeqPageCounter::new(spec.page_bytes);
    for b in bursts {
        let bytes = (b.len * elem_bytes) as f64;
        let start = (b.start * elem_bytes) as u64;
        // Lines touched by this burst (alignment-aware).
        let first_line = start / line as u64;
        let last_line = (start + bytes as u64 - 1) / line as u64;
        let lines = (last_line - first_line + 1) as f64;
        used += bytes;
        touched += lines * line;
        if non_temporal {
            if bytes >= lines * line {
                // Full lines: stream straight to DRAM.
                dram += lines * line;
            } else {
                // Partial line(s): the write-combining buffer flushes a
                // partial line as read-modify-write.
                dram += 2.0 * lines * line;
            }
        } else {
            // Temporal: RFO read + eventual writeback of each line.
            dram += 2.0 * lines * line;
        }
        // One TLB touch per burst (bursts never straddle pages at the
        // sizes this workspace uses; the counter tolerates it anyway).
        tlb.access(start);
        seq_pages.touch(start);
    }
    // Walks a *sequential* stream of the same footprint would have paid
    // anyway are folded into the STREAM bandwidth; only the excess is
    // serialized latency.
    let baseline_walks = seq_pages.pages() as u64;
    let excess = tlb.stats.misses.saturating_sub(baseline_walks);
    // Page walks overlap with each other and with the store stream
    // (page-walk caches + multiple outstanding walks); only the
    // non-overlapped residue serializes.
    const PAGE_WALK_MLP: f64 = 4.0;
    // Scattered line-sized bursts pay DRAM row-activation overhead that
    // sequential streams amortize (write-combining flushes one line per
    // distant row). Applied when the pattern is genuinely scattered:
    // multiple bursts whose spacing exceeds a DRAM row (~2 KiB).
    let scattered = bursts.len() > 1 && {
        let mut far = 0usize;
        let mut prev: Option<usize> = None;
        for b in bursts {
            if let Some(p) = prev {
                if b.start.abs_diff(p) * elem_bytes > 2048 {
                    far += 1;
                }
            }
            prev = Some(b.start);
        }
        far * 2 > bursts.len()
    };
    if scattered {
        dram /= spec.scattered_write_efficiency;
    }
    TrafficCost {
        dram_bytes: dram,
        extra_ns: excess as f64 * spec.tlb_walk_ns / PAGE_WALK_MLP,
        tlb_misses: tlb.stats.misses,
        line_utilization: if touched > 0.0 { used / touched } else { 1.0 },
    }
}

/// Cost of one full-array *pencil pass* of the baseline algorithms:
/// `n_total` elements are read and written once, with pencils along a
/// dimension of stride `stride_elems`. Models the tiled traversal
/// libraries actually use (lines are shared across `μ` adjacent
/// pencils when a tile of pencils fits in the private cache) plus the
/// temporal-write RFO cost and power-of-two conflict pressure.
pub fn pencil_pass_cost(
    n_total: usize,
    stride_elems: usize,
    pencil_len: usize,
    spec: &MachineSpec,
    elem_bytes: usize,
) -> TrafficCost {
    let bytes = (n_total * elem_bytes) as f64;
    let line = spec.llc().line_bytes;
    let mu = line / elem_bytes;
    if stride_elems <= 1 {
        // Unit-stride pass: read + write (temporal ⇒ RFO on writes).
        return TrafficCost {
            dram_bytes: bytes + 2.0 * bytes,
            extra_ns: 0.0,
            tlb_misses: 0,
            line_utilization: 1.0,
        };
    }
    // Tiled strided pass: a tile of μ adjacent pencils walks
    // pencil_len lines; it amortizes each line across μ pencils iff
    // the tile's working set fits in (half) the shared LLC — the
    // blocking budget MKL/FFTW plans actually use.
    let llc = spec.llc();
    let tile_ws = pencil_len * line;
    let fits = tile_ws <= llc.size_bytes / 2;
    // Power-of-two stride conflict pressure: when the stride in lines
    // is a multiple of the number of sets, a pencil's lines collapse
    // onto few sets and ways limit the live tile; charge a re-fetch
    // factor for the overflow (capped — libraries partially dodge it
    // with copy buffers, Frigo's buffering in paper ref [11]).
    let stride_lines = (stride_elems * elem_bytes / line).max(1);
    let sets = llc.sets();
    let conflict = if stride_lines.is_multiple_of(sets) && pencil_len > llc.ways {
        (pencil_len as f64 / llc.ways as f64).min(2.0)
    } else {
        1.0
    };
    // When the tile does not fit, each element access drags in a full
    // line and reuses only its own bytes.
    let line_util = if fits { 1.0 } else { elem_bytes as f64 / line as f64 };
    let read_bytes = bytes / line_util * conflict;
    let write_bytes = 2.0 * bytes / line_util; // RFO + writeback
    // TLB: a tile touches pencil_len distinct pages per stride walk.
    let pages_per_tile = (pencil_len * stride_elems * elem_bytes) / spec.page_bytes;
    let excess_walks = if pages_per_tile > spec.tlb_entries {
        // Every line of the tile pays a walk.
        (n_total / mu) as u64
    } else {
        0
    };
    TrafficCost {
        dram_bytes: read_bytes + write_bytes,
        extra_ns: excess_walks as f64 * spec.tlb_walk_ns,
        tlb_misses: excess_walks,
        line_utilization: line_util,
    }
}

/// Counts distinct pages of a touch sequence assuming perfect reuse —
/// the number of walks a sequential walk of the same footprint pays.
struct SeqPageCounter {
    page_bytes: u64,
    seen: std::collections::HashSet<u64>,
}

impl SeqPageCounter {
    fn new(page_bytes: usize) -> Self {
        Self {
            page_bytes: page_bytes as u64,
            seen: Default::default(),
        }
    }

    fn touch(&mut self, addr: u64) {
        self.seen.insert(addr / self.page_bytes);
    }

    fn pages(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;
    use bwfft_spl::dataflow::write_bursts;
    use bwfft_spl::gather_scatter::{fft2d_stage_perms, fft3d_stage_perms, WriteMatrix};

    const EB: usize = 16; // Complex64

    #[test]
    fn streaming_is_identity_traffic() {
        let c = streaming_cost(1e6);
        assert_eq!(c.dram_bytes, 1e6);
        assert_eq!(c.extra_ns, 0.0);
    }

    #[test]
    fn full_line_nt_writes_cost_exactly_their_bytes() {
        // 3D stage-1 rotation with μ = 4 complex = one full line per
        // burst: NT traffic equals payload.
        let spec = presets::kaby_lake_7700k();
        let (k, n, m, mu) = (16usize, 16, 64, 4);
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let b = 1024;
        let w = WriteMatrix::new(perm, b, 0);
        let bursts = write_bursts(&w, true);
        let cost = write_block_cost(&bursts, &spec, EB, true);
        // Full lines ⇒ payload bytes, inflated only by the scattered
        // row-activation factor.
        let expect = (b * EB) as f64 / spec.scattered_write_efficiency;
        assert!((cost.dram_bytes - expect).abs() < 1e-9, "{}", cost.dram_bytes);
        assert_eq!(cost.line_utilization, 1.0);
    }

    #[test]
    fn contiguous_nt_writes_have_no_scatter_penalty() {
        use bwfft_spl::gather_scatter::StagePerm;
        use bwfft_spl::PermOp;
        let spec = presets::kaby_lake_7700k();
        let w = WriteMatrix::new(StagePerm::Single(PermOp::Id { n: 4096 }), 1024, 0);
        let bursts = write_bursts(&w, true);
        let cost = write_block_cost(&bursts, &spec, EB, true);
        assert_eq!(cost.dram_bytes, (1024 * EB) as f64);
    }

    #[test]
    fn temporal_writes_pay_rfo() {
        let spec = presets::kaby_lake_7700k();
        let (k, n, m, mu) = (16usize, 16, 64, 4);
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let b = 1024;
        let w = WriteMatrix::new(perm, b, 0);
        let bursts = write_bursts(&w, true);
        let nt = write_block_cost(&bursts, &spec, EB, true);
        let tmp = write_block_cost(&bursts, &spec, EB, false);
        assert_eq!(tmp.dram_bytes, 2.0 * nt.dram_bytes);
    }

    #[test]
    fn element_wise_rotation_wastes_lines() {
        // μ = 1 (unblocked rotation): each 16-B element lands in its
        // own line → utilization 1/4 and RMW traffic.
        let spec = presets::kaby_lake_7700k();
        let (k, n, m) = (16usize, 16, 64);
        let perm = fft3d_stage_perms(k, n, m, 1)[0];
        let b = 1024;
        let w = WriteMatrix::new(perm, b, 0);
        let bursts = write_bursts(&w, true);
        let cost = write_block_cost(&bursts, &spec, EB, true);
        assert!((cost.line_utilization - 0.25).abs() < 1e-12);
        // RMW: 2 lines' worth per element, plus the scatter penalty.
        let expect = (b * 2 * 64) as f64 / spec.scattered_write_efficiency;
        assert!((cost.dram_bytes - expect).abs() < 1e-9);
    }

    #[test]
    fn small_2d_transpose_amortizes_tlb() {
        // m/μ page-columns within TLB reach: no excess walks.
        let spec = presets::kaby_lake_7700k();
        let (n, m, mu) = (1024usize, 512, 4);
        let perm = fft2d_stage_perms(n, m, mu)[0];
        let b = 16 * m; // 16 rows per block
        let w = WriteMatrix::new(perm, b, 0);
        let bursts = write_bursts(&w, true);
        let cost = write_block_cost(&bursts, &spec, EB, true);
        assert_eq!(cost.extra_ns, 0.0, "misses={}", cost.tlb_misses);
    }

    #[test]
    fn huge_2d_transpose_thrashes_tlb() {
        // m/μ = 8192/4 = 2048 page-columns > 1536 TLB entries: the
        // paper's large-2D dropoff. Use a machine with a smaller TLB to
        // keep the test fast.
        let mut spec = presets::kaby_lake_7700k();
        spec.tlb_entries = 64;
        let (n, m, mu) = (512usize, 2048, 4);
        let perm = fft2d_stage_perms(n, m, mu)[0];
        let b = 4 * m;
        let w = WriteMatrix::new(perm, b, 0);
        let bursts = write_bursts(&w, true);
        let cost = write_block_cost(&bursts, &spec, EB, true);
        assert!(
            cost.extra_ns > 0.0,
            "expected excess TLB walks, misses={}",
            cost.tlb_misses
        );
    }

    #[test]
    fn pencil_pass_strided_costs_more_than_unit() {
        let spec = presets::kaby_lake_7700k();
        let n_total = 1 << 24;
        let unit = pencil_pass_cost(n_total, 1, 512, &spec, EB);
        let strided = pencil_pass_cost(n_total, 512, 512, &spec, EB);
        assert!(strided.dram_bytes >= unit.dram_bytes);
        // Both pay RFO on writes: at least 3× payload.
        assert!(unit.dram_bytes >= 3.0 * (n_total * EB) as f64 - 1.0);
    }

    #[test]
    fn very_long_pencils_lose_line_amortization() {
        let spec = presets::kaby_lake_7700k();
        let n_total = 1 << 24;
        // 512-long pencils: tile fits L2. 65536-long pencils: it
        // cannot, utilization collapses.
        let short = pencil_pass_cost(n_total, 512, 512, &spec, EB);
        let long = pencil_pass_cost(n_total, 65536, 65536, &spec, EB);
        assert!(long.dram_bytes > short.dram_bytes);
        assert!(long.line_utilization <= short.line_utilization);
    }
}
