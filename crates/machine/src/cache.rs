//! Set-associative cache model with LRU replacement.
//!
//! Write-back, write-allocate by default; non-temporal accesses bypass
//! allocation entirely (the §IV "non-temporal loads and stores"
//! semantics: data moves "directly" between registers and memory).
//! The model tracks the statistics the paper's argument needs: DRAM
//! traffic including read-for-ownership on temporal writes, dirty
//! writebacks, and miss classification.

use crate::spec::CacheLevel;

/// Result of one access at this cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    Hit,
    /// Line had to be fetched; `evicted_dirty` means a dirty victim was
    /// written back to the next level.
    Miss { evicted_dirty: bool },
    /// Non-temporal access: bypassed this level entirely.
    Bypass,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub writebacks: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.bypasses
    }

    pub fn miss_rate(&self) -> f64 {
        let demand = self.hits + self.misses;
        if demand == 0 {
            0.0
        } else {
            self.misses as f64 / demand as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch (true LRU).
    lru: u64,
}

/// One set-associative cache instance.
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    data: Vec<Way>,
    clock: u64,
    pub stats: CacheStats,
}

impl SetAssocCache {
    pub fn new(sets: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0);
        assert!(ways > 0);
        Self {
            sets,
            ways,
            line_bytes,
            data: vec![
                Way {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                sets * ways
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn from_level(level: &CacheLevel) -> Self {
        Self::new(level.sets(), level.ways, level.line_bytes)
    }

    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    #[inline]
    fn index(&self, addr_bytes: u64) -> (usize, u64) {
        let line = addr_bytes / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        (set, tag)
    }

    /// One access to the byte address `addr`. `write` marks the line
    /// dirty; `non_temporal` bypasses the cache (no allocation, no
    /// lookup side effects beyond statistics).
    pub fn access(&mut self, addr_bytes: u64, write: bool, non_temporal: bool) -> AccessResult {
        self.clock += 1;
        if non_temporal {
            self.stats.bypasses += 1;
            return AccessResult::Bypass;
        }
        let (set, tag) = self.index(addr_bytes);
        let base = set * self.ways;
        let ways = &mut self.data[base..base + self.ways];
        // Hit?
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = self.clock;
                w.dirty |= write;
                self.stats.hits += 1;
                return AccessResult::Hit;
            }
        }
        // Miss: pick invalid way or LRU victim.
        self.stats.misses += 1;
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru + 1 } else { 0 })
            .map_or(0, |(i, _)| i);
        let evicted_dirty = ways[victim].valid && ways[victim].dirty;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        ways[victim] = Way {
            tag,
            valid: true,
            dirty: write,
            lru: self.clock,
        };
        AccessResult::Miss { evicted_dirty }
    }

    /// True if the line containing `addr` is currently resident.
    pub fn probe(&self, addr_bytes: u64) -> bool {
        let (set, tag) = self.index(addr_bytes);
        let base = set * self.ways;
        self.data[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Number of valid lines (occupancy).
    pub fn resident_lines(&self) -> usize {
        self.data.iter().filter(|w| w.valid).count()
    }

    /// Drops all contents and statistics.
    pub fn reset(&mut self) {
        for w in &mut self.data {
            w.valid = false;
            w.dirty = false;
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fill_then_rescan_hits() {
        // 64 lines of 64 B = 4 KiB, 4-way: scan 2 KiB twice.
        let mut c = SetAssocCache::new(16, 4, 64);
        for addr in (0..2048u64).step_by(64) {
            assert!(matches!(c.access(addr, false, false), AccessResult::Miss { .. }));
        }
        for addr in (0..2048u64).step_by(64) {
            assert_eq!(c.access(addr, false, false), AccessResult::Hit);
        }
        assert_eq!(c.stats.misses, 32);
        assert_eq!(c.stats.hits, 32);
    }

    #[test]
    fn capacity_eviction_under_streaming() {
        // Stream 2× capacity: second pass must miss everywhere (LRU).
        let mut c = SetAssocCache::new(16, 4, 64);
        let cap = c.capacity_bytes() as u64;
        for addr in (0..2 * cap).step_by(64) {
            c.access(addr, false, false);
        }
        for addr in (0..2 * cap).step_by(64) {
            assert!(matches!(c.access(addr, false, false), AccessResult::Miss { .. }));
        }
    }

    #[test]
    fn power_of_two_stride_collapses_to_one_set() {
        // Accesses at stride sets·line map to a single set: only `ways`
        // distinct lines survive — the classic FFT pathology (§II-D).
        let mut c = SetAssocCache::new(64, 8, 64);
        let stride = (64 * 64) as u64; // sets · line
        // Touch 16 lines in the same set, twice.
        for rep in 0..2 {
            for i in 0..16u64 {
                let r = c.access(i * stride, false, false);
                if rep == 1 {
                    // Working set (16) exceeds ways (8): all misses.
                    assert!(matches!(r, AccessResult::Miss { .. }), "i={i}");
                }
            }
        }
        // Same 16 lines at unit stride would all hit on the second pass.
        c.reset();
        for _ in 0..2 {
            for i in 0..16u64 {
                c.access(i * 64, false, false);
            }
        }
        assert_eq!(c.stats.hits, 16);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0, true, false); // A dirty
        c.access(64, false, false); // B clean
        // C evicts A (LRU) → writeback.
        let r = c.access(128, false, false);
        assert_eq!(r, AccessResult::Miss { evicted_dirty: true });
        assert_eq!(c.stats.writebacks, 1);
        // D evicts B (clean) → no writeback.
        let r = c.access(192, false, false);
        assert_eq!(r, AccessResult::Miss { evicted_dirty: false });
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn non_temporal_bypasses_and_pollutes_nothing() {
        let mut c = SetAssocCache::new(4, 2, 64);
        c.access(0, false, false);
        assert!(c.probe(0));
        for addr in (1024..8192u64).step_by(64) {
            assert_eq!(c.access(addr, true, true), AccessResult::Bypass);
        }
        // The resident line survived the NT stream.
        assert!(c.probe(0));
        assert_eq!(c.stats.bypasses, 112);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn lru_prefers_invalid_ways() {
        let mut c = SetAssocCache::new(1, 4, 64);
        for i in 0..4u64 {
            c.access(i * 64, false, false);
        }
        // All four resident.
        for i in 0..4u64 {
            assert!(c.probe(i * 64));
        }
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn writes_within_line_granularity_hit() {
        let mut c = SetAssocCache::new(4, 2, 64);
        c.access(0, true, false);
        for off in [8u64, 16, 63] {
            assert_eq!(c.access(off, true, false), AccessResult::Hit);
        }
    }
}
