//! The STREAM methodology (McCalpin, paper ref [1]).
//!
//! The paper's "achievable peak" roofline divides the FFT's minimum
//! memory traffic by the bandwidth *measured with STREAM*, not the
//! channel's theoretical rate. The presets already store the measured
//! numbers from §V, so this module's job is methodological fidelity:
//! it runs the triad access pattern through the discrete-event engine
//! (all threads streaming concurrently against the per-socket channels)
//! and reports what a STREAM run on the simulated machine would print.

use crate::engine::{Engine, ThreadProg};
use crate::spec::MachineSpec;

/// Result of the simulated STREAM triad.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamResult {
    /// Aggregate triad bandwidth over the whole machine, GB/s.
    pub triad_gbs: f64,
    /// Per-socket bandwidth, GB/s.
    pub per_socket_gbs: f64,
}

/// Simulates `a[i] = b[i] + s·c[i]` over `elems` doubles per socket,
/// with one streaming thread per core (NUMA-local, as STREAM is run).
pub fn stream_triad(spec: &MachineSpec, elems_per_socket: usize) -> StreamResult {
    let mut engine = Engine::new();
    let mut dram_ids = Vec::new();
    for s in 0..spec.sockets {
        dram_ids.push(engine.add_resource(
            format!("dram{s}"),
            spec.dram_bytes_per_ns(),
        ));
    }
    // Triad moves 3 arrays' worth of bytes: 2 reads + 1 write
    // (non-temporal store; with temporal stores it would be 4 with RFO,
    // which is why STREAM results depend on the store flavour).
    let bytes_per_socket = (3 * 8 * elems_per_socket) as f64;
    let per_thread = bytes_per_socket / spec.cores_per_socket as f64;
    let mut progs = Vec::new();
    for &dram in &dram_ids {
        for _ in 0..spec.cores_per_socket {
            let mut p = ThreadProg::new();
            p.use_res(dram, per_thread);
            progs.push(p);
        }
    }
    let stats = engine.run(progs);
    let total_bytes = bytes_per_socket * spec.sockets as f64;
    let triad_gbs = total_bytes / stats.total_ns;
    StreamResult {
        triad_gbs,
        per_socket_gbs: triad_gbs / spec.sockets as f64,
    }
}

/// Convenience: the achievable bandwidth figure used in the paper's
/// peak formula (whole-machine GB/s).
pub fn achievable_bandwidth_gbs(spec: &MachineSpec) -> f64 {
    stream_triad(spec, 1 << 24).triad_gbs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;

    #[test]
    fn triad_saturates_the_configured_bandwidth() {
        for spec in presets::all() {
            let r = stream_triad(&spec, 1 << 22);
            let expect = spec.total_dram_bw_gbs();
            assert!(
                (r.triad_gbs - expect).abs() < 1e-6 * expect,
                "{}: got {} expected {}",
                spec.name,
                r.triad_gbs,
                expect
            );
        }
    }

    #[test]
    fn two_sockets_double_the_single_socket_rate() {
        let spec = presets::haswell_2667v3_2s();
        let r = stream_triad(&spec, 1 << 22);
        assert!((r.triad_gbs - 2.0 * r.per_socket_gbs).abs() < 1e-9);
    }

    #[test]
    fn matches_paper_quoted_numbers() {
        // §V quotes 20/40/12 GB/s for the single-socket machines and
        // 85/20 for the duals.
        assert!((achievable_bandwidth_gbs(&presets::haswell_4770k()) - 20.0).abs() < 0.1);
        assert!((achievable_bandwidth_gbs(&presets::kaby_lake_7700k()) - 40.0).abs() < 0.1);
        assert!((achievable_bandwidth_gbs(&presets::amd_fx_8350()) - 12.0).abs() < 0.1);
        assert!((achievable_bandwidth_gbs(&presets::haswell_2667v3_2s()) - 85.0).abs() < 0.1);
        assert!((achievable_bandwidth_gbs(&presets::amd_opteron_6276_2s()) - 20.0).abs() < 0.1);
    }
}
