//! Aggregate simulation statistics and reporting helpers.

use std::fmt;

/// A full performance report for one simulated transform, in the units
/// the paper reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Machine the run was simulated on.
    pub machine: String,
    /// Human-readable problem label, e.g. "3D 512x512x512".
    pub problem: String,
    /// Simulated wall-clock, ns.
    pub time_ns: f64,
    /// Pseudo-flops (`5·N·log2 N`).
    pub pseudo_flops: f64,
    /// Total bytes served by all DRAM channels.
    pub dram_bytes: f64,
    /// Total bytes served by inter-socket links.
    pub link_bytes: f64,
    /// The paper's achievable-peak bound for this problem (Gflop/s).
    pub achievable_peak_gflops: f64,
}

impl PerfReport {
    /// Pseudo-Gflop/s, the paper's headline metric.
    pub fn gflops(&self) -> f64 {
        if self.time_ns == 0.0 {
            0.0
        } else {
            self.pseudo_flops / self.time_ns
        }
    }

    /// Percentage of the achievable (STREAM-bound) peak.
    pub fn percent_of_peak(&self) -> f64 {
        if self.achievable_peak_gflops == 0.0 {
            0.0
        } else {
            100.0 * self.gflops() / self.achievable_peak_gflops
        }
    }

    /// Achieved DRAM bandwidth, GB/s.
    pub fn dram_bandwidth_gbs(&self) -> f64 {
        if self.time_ns == 0.0 {
            0.0
        } else {
            self.dram_bytes / self.time_ns
        }
    }

    /// Achieved DRAM bandwidth as a percentage of a measured STREAM
    /// bandwidth — the bandwidth axis of the roofline, complementing
    /// [`PerfReport::percent_of_peak`] (the flop axis). Returns 0 when
    /// `stream_gbs` is not positive.
    pub fn percent_of_stream(&self, stream_gbs: f64) -> f64 {
        if stream_gbs <= 0.0 {
            0.0
        } else {
            100.0 * self.dram_bandwidth_gbs() / stream_gbs
        }
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:<18} {:>8.2} Gflop/s  {:>5.1}% of peak  ({:.2} ms, {:.1} GB/s DRAM)",
            self.machine,
            self.problem,
            self.gflops(),
            self.percent_of_peak(),
            self.time_ns / 1e6,
            self.dram_bandwidth_gbs(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_is_flops_over_time() {
        let r = PerfReport {
            time_ns: 1e6,
            pseudo_flops: 5e7,
            achievable_peak_gflops: 100.0,
            ..Default::default()
        };
        assert!((r.gflops() - 50.0).abs() < 1e-12);
        assert!((r.percent_of_peak() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn percent_of_stream_is_bandwidth_roofline() {
        let r = PerfReport {
            time_ns: 1e6,
            dram_bytes: 3e7, // 30 GB/s achieved
            ..Default::default()
        };
        assert!((r.percent_of_stream(40.0) - 75.0).abs() < 1e-9);
        assert_eq!(r.percent_of_stream(0.0), 0.0);
        assert_eq!(r.percent_of_stream(-1.0), 0.0);
    }

    #[test]
    fn zero_time_is_safe() {
        let r = PerfReport::default();
        assert_eq!(r.gflops(), 0.0);
        assert_eq!(r.percent_of_peak(), 0.0);
        assert_eq!(r.dram_bandwidth_gbs(), 0.0);
    }
}
