//! Adversarial property tests for the checkpoint journal, plus the
//! byte-exact `bwfft-ooc-journal/1` schema snapshot.
//!
//! The safety contract under test: whatever bytes end up in a journal
//! file — truncated, bit-flipped, duplicated, or followed by garbage —
//! recovery must return a typed [`JournalError`] or the clean prefix of
//! genuinely committed records. It must never panic, and it must never
//! invent a completion record that was not appended ("false complete"
//! is the one failure mode that could launder a wrong answer).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bwfft_kernels::Direction;
use bwfft_ooc::{Journal, JournalError, JournalHeader, JOURNAL_SCHEMA};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_file() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bwfft-journal-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("j{}.bwfft", CASE_SEQ.fetch_add(1, Ordering::Relaxed)))
}

fn header() -> JournalHeader {
    JournalHeader {
        n: 4096,
        n1: 64,
        n2: 64,
        half_elems: 256,
        stride_cols_n1: 72,
        stride_cols_n2: 72,
        dir: Direction::Forward,
        budget_bytes: 16384,
        seed: 7,
        input_fp: 12345,
    }
}

/// One logical append the generator may choose.
#[derive(Clone, Debug)]
enum Rec {
    Block { stage: usize, block: usize, sum: u64 },
    Stage { stage: usize, blocks: usize },
}

fn arb_recs() -> impl Strategy<Value = Vec<Rec>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..5, 0usize..32, any::<u64>())
                .prop_map(|(stage, block, sum)| Rec::Block { stage, block, sum }),
            (0usize..5, 1usize..32).prop_map(|(stage, blocks)| Rec::Stage { stage, blocks }),
        ],
        0..24,
    )
}

/// Block facts `(stage, block, checksum)` genuinely committed.
type BlockFacts = HashSet<(usize, usize, u64)>;
/// Stage-complete facts `(stage, blocks)` genuinely committed.
type StageFacts = HashSet<(usize, usize)>;

/// Writes a journal of `recs` and returns its path plus the sets of
/// facts that were genuinely committed.
fn write_journal(recs: &[Rec]) -> (PathBuf, BlockFacts, StageFacts) {
    let path = scratch_file();
    let _ = std::fs::remove_file(&path);
    let j = Journal::create(&path, &header()).unwrap();
    let mut blocks = HashSet::new();
    let mut stages = HashSet::new();
    for r in recs {
        match *r {
            Rec::Block { stage, block, sum } => {
                j.append_block(stage, block, sum).unwrap();
                blocks.insert((stage, block, sum));
            }
            Rec::Stage { stage, blocks: b } => {
                j.append_stage(stage, b).unwrap();
                stages.insert((stage, b));
            }
        }
    }
    (path, blocks, stages)
}

/// The "never false complete" check: every fact in a recovered state
/// must have been appended, byte for byte.
fn assert_no_invented_records(
    state: &bwfft_ooc::JournalState,
    blocks: &HashSet<(usize, usize, u64)>,
    stages: &HashSet<(usize, usize)>,
) {
    for (stage, map) in state.blocks.iter().enumerate() {
        for (&block, &sum) in map {
            assert!(
                blocks.contains(&(stage, block, sum)),
                "recovered block ({stage},{block})={sum} was never appended"
            );
        }
    }
    for (stage, done) in state.stage_done.iter().enumerate() {
        if let Some(b) = done {
            assert!(
                stages.contains(&(stage, *b)),
                "recovered stage record ({stage},{b}) was never appended"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A journal recovered untouched reproduces exactly the appended
    /// facts, with last-wins duplicate semantics.
    #[test]
    fn untouched_recovery_is_exact(recs in arb_recs()) {
        let (path, blocks, stages) = write_journal(&recs);
        let rec = Journal::recover(&path).unwrap();
        prop_assert_eq!(rec.dropped_bytes, 0);
        prop_assert_eq!(rec.records, recs.len() as u64);
        assert_no_invented_records(&rec.state, &blocks, &stages);
        // Last-wins: the final append for each key is what survives.
        let mut last_sum = std::collections::HashMap::new();
        let mut last_stage = std::collections::HashMap::new();
        for r in &recs {
            match *r {
                Rec::Block { stage, block, sum } => { last_sum.insert((stage, block), sum); }
                Rec::Stage { stage, blocks } => { last_stage.insert(stage, blocks); }
            }
        }
        for ((stage, block), sum) in last_sum {
            prop_assert_eq!(rec.state.blocks[stage].get(&block), Some(&sum));
        }
        for (stage, b) in last_stage {
            prop_assert_eq!(rec.state.stage_done[stage], Some(b));
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncation at any byte boundary: either a typed error (the
    /// header itself is gone) or the clean prefix — never a panic,
    /// never an invented record.
    #[test]
    fn arbitrary_truncation_is_safe(recs in arb_recs(), cut in any::<usize>()) {
        let (path, blocks, stages) = write_journal(&recs);
        let full = std::fs::read(&path).unwrap();
        let keep = cut % (full.len() + 1);
        std::fs::write(&path, &full[..keep]).unwrap();
        match Journal::recover(&path) {
            Ok(rec) => {
                assert_no_invented_records(&rec.state, &blocks, &stages);
                prop_assert!(rec.clean_bytes <= keep as u64);
            }
            Err(JournalError::NoHeader) => {
                // Legal only if the cut reached into the header frame
                // (which ends at the file's first newline).
                let header_len = full.iter().position(|&b| b == b'\n').unwrap() + 1;
                prop_assert!(keep < header_len, "NoHeader despite intact header frame");
            }
            Err(e) => return Err(TestCaseError::Fail(format!("unexpected error: {e}"))),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A single flipped bit anywhere: typed error or clean prefix,
    /// never a panic, never an invented record (CRC-32 catches every
    /// single-bit error within a frame).
    #[test]
    fn arbitrary_bit_flip_is_safe(
        recs in arb_recs(),
        at in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (path, blocks, stages) = write_journal(&recs);
        let mut bytes = std::fs::read(&path).unwrap();
        let i = at % bytes.len();
        bytes[i] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match Journal::recover(&path) {
            Ok(rec) => assert_no_invented_records(&rec.state, &blocks, &stages),
            Err(
                JournalError::NoHeader
                | JournalError::Schema { .. }
                | JournalError::Record { .. },
            ) => {}
            Err(e) => return Err(TestCaseError::Fail(format!("unexpected error: {e}"))),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Arbitrary garbage appended after the clean frames: recovery
    /// never panics and never invents records; a tail that happens to
    /// frame-decode but violates the record schema is a typed error.
    #[test]
    fn garbage_tail_is_safe(recs in arb_recs(), tail in prop::collection::vec(any::<u8>(), 1..64)) {
        let (path, blocks, stages) = write_journal(&recs);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&tail);
        std::fs::write(&path, &bytes).unwrap();
        match Journal::recover(&path) {
            Ok(rec) => {
                assert_no_invented_records(&rec.state, &blocks, &stages);
                prop_assert!(rec.dropped_bytes >= 1, "garbage tail cannot be clean");
            }
            Err(JournalError::Record { .. }) => {}
            Err(e) => return Err(TestCaseError::Fail(format!("unexpected error: {e}"))),
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// The `bwfft-ooc-journal/1` on-disk format, byte for byte. If this
/// test changes, the schema version must be bumped: a crashed run's
/// journal written by the previous build must either replay exactly or
/// be refused with a typed error — never reinterpreted.
#[test]
fn journal_schema_snapshot_is_byte_exact() {
    let path = scratch_file();
    let _ = std::fs::remove_file(&path);
    let j = Journal::create(&path, &header()).unwrap();
    j.append_block(0, 0, 42).unwrap();
    j.append_block(1, 3, 17).unwrap();
    j.append_stage(0, 16).unwrap();
    let got = std::fs::read_to_string(&path).unwrap();
    let want = concat!(
        "193 ec280865 {\"schema\":\"bwfft-ooc-journal/1\",\"kind\":\"header\",",
        "\"n\":4096,\"n1\":64,\"n2\":64,\"half_elems\":256,",
        "\"stride_cols_n1\":72,\"stride_cols_n2\":72,\"dir\":\"forward\",",
        "\"budget_bytes\":16384,\"seed\":7,\"input_fp\":12345}\n",
        "50 09bbf2fd {\"kind\":\"block\",\"stage\":0,\"block\":0,\"checksum\":42}\n",
        "50 bcd2d636 {\"kind\":\"block\",\"stage\":1,\"block\":3,\"checksum\":17}\n",
        "38 ef4a3b86 {\"kind\":\"stage\",\"stage\":0,\"blocks\":16}\n",
    );
    assert_eq!(got, want, "bwfft-ooc-journal/1 bytes drifted — bump the schema version");
    assert_eq!(JOURNAL_SCHEMA, "bwfft-ooc-journal/1");
    std::fs::remove_file(&path).unwrap();
}

/// A journal whose header names a future schema is refused, typed.
#[test]
fn future_schema_is_refused() {
    let path = scratch_file();
    let _ = std::fs::remove_file(&path);
    let payload = "{\"schema\":\"bwfft-ooc-journal/2\",\"kind\":\"header\"}";
    std::fs::write(&path, bwfft_ooc::journal::encode_frame(payload)).unwrap();
    match Journal::recover(&path) {
        Err(JournalError::Schema { found }) => assert_eq!(found, "bwfft-ooc-journal/2"),
        other => panic!("expected Schema error, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

/// An empty or non-journal file is `NoHeader`, not a crash.
#[test]
fn empty_and_foreign_files_are_typed() {
    let path = scratch_file();
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(Journal::recover(&path), Err(JournalError::NoHeader)));
    std::fs::write(&path, b"not a journal at all\n").unwrap();
    assert!(matches!(Journal::recover(&path), Err(JournalError::NoHeader)));
    std::fs::remove_file(&path).unwrap();
}
