//! Crash → resume integration tests for the checkpointed lifecycle.
//!
//! These use the in-process `CrashMode::Halt` flavor (a typed
//! [`OocError::CrashPoint`] instead of a real `abort()`, which would
//! kill the test runner); the real SIGKILL-grade drill lives in the
//! root crate's `tests/ooc_crash.rs` and the `soak --ooc-kill` harness,
//! which spawn CLI child processes.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bwfft_ooc::{
    run_checkpointed, CheckpointConfig, CheckpointRun, CrashMode, CrashPoint, JournalError,
    OocConfig, OocError, OracleConfig, ResumeError, ResumeVerify, JOURNAL_FILE,
};
use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

/// 4096-point plan with a 16 KiB budget: 64×64 split, 256-element
/// halves, 4 rows per block, 16 blocks in every one of the 5 stages.
const N: usize = 1 << 12;
const SEED: u64 = 0xFEED;
const BLOCKS_PER_STAGE: u64 = 16;

fn cfg(crash: Option<CrashPoint>) -> OocConfig {
    OocConfig {
        budget_bytes: 16 * 1024,
        checkpoint: CheckpointConfig {
            resume_verify: ResumeVerify::All,
            crash,
        },
        ..OocConfig::default()
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bwfft-resume-test-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fresh(dir: &PathBuf) -> CheckpointRun<'_> {
    CheckpointRun {
        dir,
        resume: false,
        keep: false,
    }
}

fn resume(dir: &PathBuf) -> CheckpointRun<'_> {
    CheckpointRun {
        dir,
        resume: true,
        keep: false,
    }
}

/// Runs to the injected Halt crash and asserts the keep-on-crash
/// contract: typed error, workspace (journal + scratch) left on disk.
fn crash_at(dir: &PathBuf, stage: usize, block: usize) {
    let c = cfg(Some(CrashPoint {
        stage,
        block,
        mode: CrashMode::Halt,
    }));
    match run_checkpointed(N, SEED, &c, &OracleConfig::default(), &fresh(dir)) {
        Err(OocError::CrashPoint { .. }) => {}
        other => panic!("expected CrashPoint, got {other:?}"),
    }
    assert!(
        dir.join(JOURNAL_FILE).exists(),
        "crashed run must keep its journal for the resume"
    );
}

#[test]
fn fresh_checkpointed_run_verifies_and_cleans_up() {
    let dir = test_dir("fresh");
    let out = run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &fresh(&dir))
        .expect("fresh checkpointed run");
    assert!(!out.report.resumed);
    assert_eq!(out.report.skipped_blocks, 0);
    assert_eq!(out.report.rework_blocks, 0);
    assert_eq!(out.report.resumed_bytes, 0);
    assert_eq!(out.oracle.bins_checked, 16);
    assert!(!dir.exists(), "successful run must remove its workspace");
}

#[test]
fn halt_crash_then_resume_completes_with_bounded_rework() {
    let dir = test_dir("crash-resume");
    crash_at(&dir, 2, 5);
    let out = run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir))
        .expect("resume after crash");
    let r = &out.report;
    assert!(r.resumed);
    // Stages 0 and 1 completed (stage records); blocks 0..=5 of the
    // in-flight stage 2 were journaled before the crash point fired.
    assert_eq!(r.skipped_blocks, 2 * BLOCKS_PER_STAGE + 6);
    // Rework = unjournaled blocks of the frontier stage only — the
    // bound the journal exists to enforce.
    assert_eq!(r.rework_blocks, BLOCKS_PER_STAGE - 6);
    assert!(r.rework_blocks <= BLOCKS_PER_STAGE);
    // Every journaled block was re-verified (ResumeVerify::All).
    assert_eq!(r.reverified_blocks, 2 * BLOCKS_PER_STAGE + 6);
    assert!(r.resumed_bytes > 0);
    // The resume moved strictly less data than a full run: stages 0-1
    // were skipped entirely.
    let full = run_checkpointed(
        N,
        SEED,
        &cfg(None),
        &OracleConfig::default(),
        &fresh(&test_dir("crash-resume-ref")),
    )
    .unwrap();
    assert!(r.bytes_read + r.bytes_written < full.report.bytes_read + full.report.bytes_written);
    assert!(!dir.exists(), "successful resume removes the workspace");
}

#[test]
fn resume_after_crash_in_every_stage_is_correct() {
    for stage in 0..5 {
        let dir = test_dir(&format!("stage{stage}"));
        crash_at(&dir, stage, 3);
        let out =
            run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir))
                .unwrap_or_else(|e| panic!("resume after stage-{stage} crash: {e}"));
        assert!(out.report.resumed);
        assert!(out.report.rework_blocks <= BLOCKS_PER_STAGE);
        assert_eq!(
            out.report.skipped_blocks,
            stage as u64 * BLOCKS_PER_STAGE + 4,
            "stage {stage}: stages before the frontier skip whole, \
             blocks 0..=3 of the frontier skip individually"
        );
    }
}

#[test]
fn fresh_run_refuses_to_clobber_an_existing_journal() {
    let dir = test_dir("clobber");
    crash_at(&dir, 1, 0);
    match run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &fresh(&dir)) {
        Err(OocError::Journal(JournalError::AlreadyExists { .. })) => {}
        other => panic!("expected AlreadyExists, got {other:?}"),
    }
    // The refused run must not have damaged the journal: resume works.
    run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir))
        .expect("resume after refused clobber");
}

#[test]
fn resume_without_a_journal_is_typed() {
    let dir = test_dir("nojournal");
    match run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir)) {
        Err(OocError::Resume(ResumeError::JournalMissing { .. })) => {}
        other => panic!("expected JournalMissing, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_a_different_seed_is_typed() {
    let dir = test_dir("seed");
    crash_at(&dir, 2, 5);
    match run_checkpointed(N, SEED + 1, &cfg(None), &OracleConfig::default(), &resume(&dir)) {
        Err(OocError::Resume(ResumeError::PlanMismatch { field: "seed", .. })) => {}
        other => panic!("expected seed PlanMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_a_different_budget_is_typed() {
    let dir = test_dir("budget");
    crash_at(&dir, 2, 5);
    let mut c = cfg(None);
    c.budget_bytes = 32 * 1024;
    match run_checkpointed(N, SEED, &c, &OracleConfig::default(), &resume(&dir)) {
        Err(OocError::Resume(ResumeError::PlanMismatch { .. })) => {}
        other => panic!("expected PlanMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_detects_a_bit_flipped_scratch_block() {
    let dir = test_dir("bitflip");
    // Crash in stage 3 (dft-n2): its destination s2.bin holds blocks
    // 0..=2 that the journal credits as complete.
    crash_at(&dir, 3, 2);
    // Flip one payload bit inside journaled block 0 (rows 0..4 of s2).
    let f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(dir.join("s2.bin"))
        .unwrap();
    let mut b = [0u8; 1];
    f.read_exact_at(&mut b, 0).unwrap();
    b[0] ^= 0x10;
    f.write_all_at(&b, 0).unwrap();
    drop(f);
    match run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir)) {
        Err(OocError::Resume(ResumeError::ScratchCorrupt {
            stage: "dft-n2",
            block: 0,
            ..
        })) => {}
        other => panic!("expected ScratchCorrupt at dft-n2 block 0, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_detects_a_deleted_scratch_store() {
    let dir = test_dir("missing");
    crash_at(&dir, 2, 5);
    // t2.bin is the destination the stage-2 journal records credit.
    std::fs::remove_file(dir.join("t2.bin")).unwrap();
    match run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir)) {
        Err(OocError::Resume(ResumeError::ScratchMissing { store: "t2.bin", .. })) => {}
        other => panic!("expected ScratchMissing t2.bin, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_survives_a_garbage_journal_tail() {
    let dir = test_dir("tail");
    crash_at(&dir, 2, 5);
    // Simulate a torn append: raw garbage after the last clean frame.
    let jpath = dir.join(JOURNAL_FILE);
    let clean = std::fs::metadata(&jpath).unwrap().len();
    let f = OpenOptions::new().write(true).open(&jpath).unwrap();
    f.write_all_at(b"42 0badc0de {\"kind\":\"blo", clean).unwrap();
    drop(f);
    let out = run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir))
        .expect("resume past a torn tail");
    assert!(out.report.resumed);
    assert_eq!(out.report.skipped_blocks, 2 * BLOCKS_PER_STAGE + 6);
}

#[test]
fn double_crash_then_resume_still_converges() {
    let dir = test_dir("double");
    crash_at(&dir, 1, 7);
    // Second run resumes, then crashes further along.
    let c = cfg(Some(CrashPoint {
        stage: 3,
        block: 4,
        mode: CrashMode::Halt,
    }));
    match run_checkpointed(N, SEED, &c, &OracleConfig::default(), &resume(&dir)) {
        Err(OocError::CrashPoint { .. }) => {}
        other => panic!("expected second CrashPoint, got {other:?}"),
    }
    // Third run finishes the job.
    let out = run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &resume(&dir))
        .expect("resume after two crashes");
    assert!(out.report.resumed);
    assert_eq!(
        out.report.skipped_blocks,
        3 * BLOCKS_PER_STAGE + 5,
        "stages 0-2 journaled complete, blocks 0..=4 of stage 3 skipped"
    );
    assert_eq!(out.report.rework_blocks, BLOCKS_PER_STAGE - 5);
}

#[test]
fn keep_flag_preserves_the_workspace_on_success() {
    let dir = test_dir("keep");
    let run = CheckpointRun {
        dir: &dir,
        resume: false,
        keep: true,
    };
    run_checkpointed(N, SEED, &cfg(None), &OracleConfig::default(), &run).unwrap();
    assert!(dir.join(JOURNAL_FILE).exists());
    assert!(dir.join("output.bin").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
