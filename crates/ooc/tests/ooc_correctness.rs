//! Out-of-core tier contracts: the streamed result is bit-identical to
//! the same arithmetic run in RAM, close to the naive DFT, the oracle
//! accepts correct runs and rejects corrupted blocks, scratch
//! directories never leak, and the acceptance scenario (a transform 4×
//! the working budget surviving an injected storage fault) holds.

// Test helpers unwrap like the #[test] fns they serve;
// `allow-unwrap-in-tests` only covers the annotated fns themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bwfft_kernels::reference::dft_naive;
use bwfft_kernels::Direction;
use bwfft_num::signal::random_complex;
use bwfft_num::Complex64;
use bwfft_ooc::plan::BYTES_PER_HALF_ELEM;
use bwfft_ooc::{
    execute, four_step_in_ram, plan, verify, OocConfig, OocError, OocFault, OocFaultKind,
    OocStore, OracleConfig, Workspace,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Writes `x` (length n1·n2) into a padded input store inside `ws`.
fn store_input(ws: &Workspace, p: &bwfft_ooc::OocPlan, x: &[Complex64]) -> OocStore {
    let input = OocStore::create(&ws.path("input.bin"), p.n1, p.n2, p.stride_cols_n2).unwrap();
    input.write_rows(0, x).unwrap();
    input
}

fn read_output(out: &OocStore) -> Vec<Complex64> {
    let mut y = vec![Complex64::ZERO; out.rows() * out.cols()];
    out.read_rows(0, &mut y).unwrap();
    y
}

/// Runs the full out-of-core path on `x` and returns the spectrum.
fn ooc_transform(x: &[Complex64], cfg: &OocConfig) -> (bwfft_ooc::OocPlan, Vec<Complex64>) {
    let p = plan(x.len(), cfg).unwrap();
    let ws = Workspace::create().unwrap();
    let input = store_input(&ws, &p, x);
    let output = OocStore::create(&ws.path("output.bin"), p.n2, p.n1, p.stride_cols_n1).unwrap();
    let report = execute(&p, cfg, &ws, &input, &output).unwrap();
    assert_eq!(report.retries, 0);
    assert_eq!(report.serial_fallbacks, 0);
    (p, read_output(&output))
}

/// A budget that forces at least four streamed blocks per stage.
fn tight_budget(n: usize) -> usize {
    let e = n.trailing_zeros() as usize;
    let n1 = n >> (e / 2);
    n1 * BYTES_PER_HALF_ELEM
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn streamed_result_is_bit_identical_to_in_ram_four_step(
        e in 4usize..=10,
        seed in any::<u64>(),
        inverse in any::<bool>(),
    ) {
        let n = 1usize << e;
        let dir = if inverse { Direction::Inverse } else { Direction::Forward };
        let cfg = OocConfig { dir, budget_bytes: tight_budget(n), ..OocConfig::default() };
        let x = random_complex(n, seed);
        let (p, y) = ooc_transform(&x, &cfg);
        prop_assert!(p.half_elems * p.n2.max(p.n1) <= n * p.n1.max(p.n2),
            "budget should force real blocking: half={} n={}", p.half_elems, n);
        let want = four_step_in_ram(&p, &x);
        // Same kernels, same twiddles, same per-row batching: the
        // streaming layer must not change one bit.
        prop_assert_eq!(y, want);
    }

    #[test]
    fn streamed_result_matches_the_naive_dft(
        e in 4usize..=9,
        seed in any::<u64>(),
    ) {
        let n = 1usize << e;
        let cfg = OocConfig { budget_bytes: tight_budget(n), ..OocConfig::default() };
        let x = random_complex(n, seed);
        let (_, y) = ooc_transform(&x, &cfg);
        let want = dft_naive(&x, Direction::Forward);
        let scale: f64 = x.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        for (k, (got, exp)) in y.iter().zip(&want).enumerate() {
            let err = (*got - *exp).abs();
            prop_assert!(err <= 1e-10 * scale, "bin {k}: |Δ| = {err:.3e}");
        }
    }
}

#[test]
fn forward_then_inverse_recovers_the_signal() {
    let n = 1 << 8;
    let x = random_complex(n, 11);
    let fwd = OocConfig {
        budget_bytes: tight_budget(n),
        ..OocConfig::default()
    };
    let (_, y) = ooc_transform(&x, &fwd);
    let inv = OocConfig {
        dir: Direction::Inverse,
        ..fwd
    };
    let (_, z) = ooc_transform(&y, &inv);
    for (a, (got, orig)) in z.iter().zip(&x).enumerate() {
        // Unnormalized kernels: inverse(forward(x)) = n·x.
        let err = (got.scale(1.0 / n as f64) - *orig).abs();
        assert!(err < 1e-10, "sample {a}: |Δ| = {err:.3e}");
    }
}

#[test]
fn oracle_accepts_correct_runs_and_rejects_a_corrupted_block() {
    let n = 1usize << 12;
    let cfg = OocConfig {
        budget_bytes: tight_budget(n),
        ..OocConfig::default()
    };
    let p = plan(n, &cfg).unwrap();
    let ws = Workspace::create().unwrap();
    let x = random_complex(n, 23);
    let input = store_input(&ws, &p, &x);
    let output = OocStore::create(&ws.path("output.bin"), p.n2, p.n1, p.stride_cols_n1).unwrap();
    execute(&p, &cfg, &ws, &input, &output).unwrap();

    let oracle_cfg = OracleConfig::default();
    let ok = verify(&input, &output, &p, &oracle_cfg).unwrap();
    assert_eq!(ok.bins_checked, oracle_cfg.bins);
    assert!(ok.max_abs_err <= ok.tol);
    assert!(ok.parseval_rel_err <= oracle_cfg.parseval_rel_tol);

    // Seed a corrupted block: overwrite one output row with garbage.
    // Parseval must catch the energy change even if no sampled bin
    // lands in the row; a sampled hit fails the spot check first.
    let garbage: Vec<Complex64> = (0..p.n1).map(|i| Complex64::new(1e3 + i as f64, -1e3)).collect();
    output.write_rows(p.n2 / 2, &garbage).unwrap();
    match verify(&input, &output, &p, &oracle_cfg) {
        Err(OocError::OracleMismatch { .. }) | Err(OocError::ParsevalMismatch { .. }) => {}
        other => panic!("oracle accepted a corrupted block: {other:?}"),
    }
}

/// Lists the entries the run left under `root` (hygiene assertions).
fn leftovers(root: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(root)
        .map(|it| it.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default()
}

fn hygiene_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "bwfft-ooc-hygiene-{}-{}",
        std::process::id(),
        tag
    ));
    std::fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn no_scratch_files_leak_on_success() {
    let root = hygiene_root("ok");
    let cfg = OocConfig {
        budget_bytes: tight_budget(1 << 10),
        ..OocConfig::default()
    };
    let out =
        bwfft_ooc::run_generated_in(1 << 10, 3, &cfg, &OracleConfig::default(), Some(&root))
            .unwrap();
    assert_eq!(out.report.faults_hit, 0);
    assert!(
        leftovers(&root).is_empty(),
        "success leaked: {:?}",
        leftovers(&root)
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn no_scratch_files_leak_on_error() {
    let root = hygiene_root("err");
    // A persistent failure: delete the input store's file mid-setup by
    // pointing the run at a budget the planner accepts but the input
    // fill cannot survive — easiest deterministic error is a fault in
    // every tier, which the one-shot injector can't provide, so use a
    // doomed store instead: create the workspace manually and hand
    // execute() an input store whose backing file is gone.
    let cfg = OocConfig {
        budget_bytes: tight_budget(1 << 8),
        ..OocConfig::default()
    };
    let p = plan(1 << 8, &cfg).unwrap();
    {
        let ws = Workspace::create_under(&root).unwrap();
        let input = store_input(&ws, &p, &random_complex(1 << 8, 5));
        let output =
            OocStore::create(&ws.path("output.bin"), p.n2, p.n1, p.stride_cols_n1).unwrap();
        // Shrink the backing file so every stage-0 read fails, on the
        // pipelined attempts and the serial tier alike.
        std::fs::File::options()
            .write(true)
            .open(input.path())
            .unwrap()
            .set_len(0)
            .unwrap();
        match execute(&p, &cfg, &ws, &input, &output) {
            Err(OocError::StageExhausted { stage, .. }) => assert_eq!(stage, "transpose-in"),
            other => panic!("expected StageExhausted, got {other:?}"),
        }
    }
    assert!(
        leftovers(&root).is_empty(),
        "error path leaked: {:?}",
        leftovers(&root)
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn no_scratch_files_leak_on_panic_containment() {
    let root = hygiene_root("panic");
    let result = std::panic::catch_unwind(|| {
        let ws = Workspace::create_under(&root).unwrap();
        std::fs::write(ws.path("big-scratch.bin"), vec![0u8; 4096]).unwrap();
        panic!("simulated worker blow-up while the workspace is live");
    });
    assert!(result.is_err());
    assert!(
        leftovers(&root).is_empty(),
        "panic unwind leaked: {:?}",
        leftovers(&root)
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// ISSUE 7 acceptance: a transform at least 4× larger than the working
/// budget completes from a file-backed store, passes the spot-check
/// oracle and streamed Parseval, and survives one injected storage
/// fault via the recovery ladder without a wrong answer.
#[test]
fn acceptance_4x_budget_with_injected_fault() {
    let n = 1usize << 14;
    let data_bytes = n * 16;
    let budget = data_bytes / 4;
    for kind in [OocFaultKind::Read, OocFaultKind::Write] {
        let cfg = OocConfig {
            budget_bytes: budget,
            p_d: 2,
            p_c: 2,
            fault: Some(OocFault {
                stage: 1,
                iter: 0,
                kind,
            }),
            ..OocConfig::default()
        };
        let out = bwfft_ooc::run_generated(n, 42, &cfg, &OracleConfig::default()).unwrap();
        assert!(
            out.plan.data_bytes() >= 4 * budget as u64,
            "problem must be ≥ 4× the budget"
        );
        assert_eq!(out.report.faults_hit, 1, "the injected {kind:?} fault must fire");
        assert!(out.report.retries >= 1, "the ladder must have retried");
        assert_eq!(out.report.serial_fallbacks, 0, "one fault must not exhaust the ladder");
        assert!(out.oracle.max_abs_err <= out.oracle.tol);
    }
}

#[test]
fn report_accounts_for_every_stage_byte() {
    let n = 1usize << 12;
    let cfg = OocConfig {
        budget_bytes: tight_budget(n),
        ..OocConfig::default()
    };
    let out = bwfft_ooc::run_generated(n, 9, &cfg, &OracleConfig::default()).unwrap();
    // Five stages each read and write the full payload exactly once.
    let payload = (n * 16) as u64;
    assert_eq!(out.report.bytes_read, 5 * payload);
    assert_eq!(out.report.bytes_written, 5 * payload);
    assert!(out.report.io_ns > 0);
    assert!(out.report.wall_ns >= out.report.io_ns / 2);
    assert!(out.report.storage_gbs() > 0.0);
}
