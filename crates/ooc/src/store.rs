//! File-backed complex matrices with conflict-killing padded strides.
//!
//! An [`OocStore`] is a row-major `rows × cols` matrix of `Complex64`
//! held in a plain file. Rows are laid out at a *padded* stride chosen
//! by [`padded_stride`] so that walking a column of the stored matrix
//! never maps successive elements onto the same LLC set: for
//! power-of-two `cols` the natural stride (in cachelines) is a multiple
//! of the LLC set count and the effective cache collapses to
//! `ways` lines — exactly the associativity-conflict collapse the
//! `bwfft-machine` pattern model (`patterns.rs::pencil_pass_cost`)
//! charges for. One extra cacheline per row breaks the congruence.
//!
//! All access is positioned (`pread`/`pwrite` via
//! [`std::os::unix::fs::FileExt`]): readers and writers share one
//! `File` through an `Arc` with no seek state, so the pipeline's data
//! threads can stream disjoint row ranges concurrently.

use crate::error::OocError;
use bwfft_machine::MachineSpec;
use bwfft_num::Complex64;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bytes per stored element (`Complex64` is `repr(C)` `[f64; 2]`).
pub const ELEM_BYTES: usize = std::mem::size_of::<Complex64>();

/// Smallest row stride (in elements) that is at least `cols`, starts
/// every row cacheline-aligned, and — the EFFT padding rule — is *not*
/// a whole multiple of `llc.sets()` cachelines, so column walks spread
/// over all sets instead of collapsing onto one.
pub fn padded_stride(cols: usize, spec: &MachineSpec) -> usize {
    let llc = spec.llc();
    let line_elems = (llc.line_bytes / ELEM_BYTES).max(1);
    let sets = llc.sets().max(1);
    let mut stride = cols.div_ceil(line_elems) * line_elems;
    while (stride / line_elems).is_multiple_of(sets) {
        stride += line_elems;
    }
    stride
}

/// `Complex64` is `repr(C)` with two `f64` components; its slice view
/// as raw bytes is well-defined (native endianness — the store is
/// scratch for one run, never an interchange format).
fn as_bytes(buf: &[Complex64]) -> &[u8] {
    // SAFETY: Complex64 is repr(C), size 16, align 8; any byte pattern
    // is a valid f64 pair, and the slice covers exactly buf.
    unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), std::mem::size_of_val(buf)) }
}

fn as_bytes_mut(buf: &mut [Complex64]) -> &mut [u8] {
    // SAFETY: as above; every byte pattern is a valid Complex64.
    unsafe {
        std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(buf))
    }
}

/// A file-backed row-major complex matrix with padded row stride.
#[derive(Debug)]
pub struct OocStore {
    file: Arc<File>,
    path: PathBuf,
    rows: usize,
    cols: usize,
    /// Row stride in elements (`>= cols`).
    stride: usize,
}

impl OocStore {
    /// Creates (or truncates) the backing file sized for
    /// `rows × stride` elements.
    pub fn create(
        path: &Path,
        rows: usize,
        cols: usize,
        stride: usize,
    ) -> Result<OocStore, OocError> {
        debug_assert!(stride >= cols);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| OocError::io("store create", e))?;
        file.set_len((rows * stride * ELEM_BYTES) as u64)
            .map_err(|e| OocError::io("store size", e))?;
        Ok(OocStore {
            file: Arc::new(file),
            path: path.to_path_buf(),
            rows,
            cols,
            stride,
        })
    }

    /// Opens an existing backing file *without* truncating it — the
    /// resume path, where the file's current contents are the point.
    /// The file must exist and be exactly the size `create` would have
    /// produced; anything else means the store belongs to a different
    /// plan and trusting it would corrupt the transform.
    pub fn open(
        path: &Path,
        rows: usize,
        cols: usize,
        stride: usize,
    ) -> Result<OocStore, OocError> {
        debug_assert!(stride >= cols);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| OocError::io("store open", e))?;
        let want = (rows * stride * ELEM_BYTES) as u64;
        let have = file
            .metadata()
            .map_err(|e| OocError::io("store stat", e))?
            .len();
        if have != want {
            return Err(OocError::Io {
                context: "store open",
                message: format!(
                    "{} is {have} bytes, expected {want} for {rows}x{cols} stride {stride}",
                    path.display()
                ),
            });
        }
        Ok(OocStore {
            file: Arc::new(file),
            path: path.to_path_buf(),
            rows,
            cols,
            stride,
        })
    }

    /// [`open`](Self::open) when the file exists, [`create`](Self::create)
    /// otherwise — scratch stores on the resume path, where a stage may
    /// or may not have gotten far enough to need its destination.
    pub fn open_or_create(
        path: &Path,
        rows: usize,
        cols: usize,
        stride: usize,
    ) -> Result<OocStore, OocError> {
        if path.exists() {
            Self::open(path, rows, cols, stride)
        } else {
            Self::create(path, rows, cols, stride)
        }
    }

    /// Creates a store whose stride is [`padded_stride`] for `spec`.
    pub fn create_padded(
        path: &Path,
        rows: usize,
        cols: usize,
        spec: &MachineSpec,
    ) -> Result<OocStore, OocError> {
        Self::create(path, rows, cols, padded_stride(cols, spec))
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn stride(&self) -> usize {
        self.stride
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical payload bytes (`rows × cols`, excluding padding).
    pub fn data_bytes(&self) -> u64 {
        (self.rows * self.cols * ELEM_BYTES) as u64
    }

    /// File bytes including row padding.
    pub fn file_bytes(&self) -> u64 {
        (self.rows * self.stride * ELEM_BYTES) as u64
    }

    /// A second handle onto the same backing file (for per-thread
    /// closures; positioned I/O keeps them independent).
    pub fn handle(&self) -> Arc<File> {
        Arc::clone(&self.file)
    }

    fn byte_offset(&self, row: usize, col: usize) -> u64 {
        debug_assert!(row < self.rows && col <= self.cols);
        ((row * self.stride + col) * ELEM_BYTES) as u64
    }

    /// Reads `buf.len() / cols` whole rows starting at `r0`.
    pub fn read_rows(&self, r0: usize, buf: &mut [Complex64]) -> std::io::Result<()> {
        debug_assert_eq!(buf.len() % self.cols, 0);
        for (i, row) in buf.chunks_mut(self.cols).enumerate() {
            let off = self.byte_offset(r0 + i, 0);
            self.file.read_exact_at(as_bytes_mut(row), off)?;
        }
        Ok(())
    }

    /// Writes `buf.len() / cols` whole rows starting at `r0`.
    pub fn write_rows(&self, r0: usize, buf: &[Complex64]) -> std::io::Result<()> {
        debug_assert_eq!(buf.len() % self.cols, 0);
        for (i, row) in buf.chunks(self.cols).enumerate() {
            let off = self.byte_offset(r0 + i, 0);
            self.file.write_all_at(as_bytes(row), off)?;
        }
        Ok(())
    }

    /// Reads `buf.len()` elements of one row starting at `col0`.
    pub fn read_row_segment(
        &self,
        row: usize,
        col0: usize,
        buf: &mut [Complex64],
    ) -> std::io::Result<()> {
        debug_assert!(col0 + buf.len() <= self.cols);
        self.file
            .read_exact_at(as_bytes_mut(buf), self.byte_offset(row, col0))
    }

    /// Writes `buf.len()` elements into one row starting at `col0`.
    pub fn write_row_segment(
        &self,
        row: usize,
        col0: usize,
        buf: &[Complex64],
    ) -> std::io::Result<()> {
        debug_assert!(col0 + buf.len() <= self.cols);
        self.file
            .write_all_at(as_bytes(buf), self.byte_offset(row, col0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_machine::presets;

    #[test]
    fn padded_stride_breaks_set_congruence() {
        let spec = presets::kaby_lake_7700k();
        let llc = spec.llc();
        let line_elems = llc.line_bytes / ELEM_BYTES;
        let sets = llc.sets();
        for cols in [64usize, 256, 1024, 4096, 65536] {
            let s = padded_stride(cols, &spec);
            assert!(s >= cols);
            assert_eq!(s % line_elems, 0, "rows must stay cacheline-aligned");
            assert_ne!(
                (s / line_elems) % sets,
                0,
                "stride of {s} elems for cols={cols} still aliases every LLC set"
            );
            // The pad costs at most one line beyond alignment whenever
            // the aligned stride was conflict-free already.
            assert!(s < cols + 2 * line_elems * sets.clamp(1, 2) + line_elems * 2);
        }
    }

    #[test]
    fn small_cols_need_no_conflict_pad() {
        let spec = presets::kaby_lake_7700k();
        // 8 elements round up to one cacheline; one line is never a
        // multiple of the (large) set count.
        let line_elems = spec.llc().line_bytes / ELEM_BYTES;
        assert_eq!(padded_stride(1, &spec), line_elems);
    }

    #[test]
    fn rows_round_trip_through_the_file() {
        let spec = presets::kaby_lake_7700k();
        let dir = std::env::temp_dir().join(format!("bwfft-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = OocStore::create_padded(&dir.join("m.bin"), 8, 16, &spec).unwrap();
        assert!(store.stride() > 16 || store.stride() >= 16);
        let row: Vec<Complex64> = (0..32).map(|i| Complex64::new(i as f64, -1.0)).collect();
        store.write_rows(2, &row).unwrap();
        let mut back = vec![Complex64::ZERO; 32];
        store.read_rows(2, &mut back).unwrap();
        assert_eq!(row, back);
        let mut seg = vec![Complex64::ZERO; 4];
        store.read_row_segment(3, 12, &mut seg).unwrap();
        assert_eq!(&seg[..], &row[16 + 12..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
