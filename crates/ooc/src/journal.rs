//! The durable checkpoint journal (`bwfft-ooc-journal/1`).
//!
//! A crash must never cost more than one in-flight stage of rework, so
//! every out-of-core checkpointed run appends a completion record per
//! `(stage, block)` — carrying the order-independent block checksum of
//! the bytes written — to an append-only journal in the workspace. The
//! file starts with a header that binds the plan (`n`, the `n1×n2`
//! split, the half size, strides, direction, budget, seed, and an
//! input fingerprint), so a resume against a different plan is a typed
//! [`ResumeError`], never a silently wrong answer.
//!
//! **Commit protocol.** Each record is one frame:
//!
//! ```text
//! <len> <crc32-hex8> <json>\n
//! ```
//!
//! where `len` is the decimal byte length of the JSON payload and the
//! CRC-32 (IEEE, reflected) covers exactly those payload bytes. A frame
//! is appended with positioned `write` then `fsync(file)`; the journal
//! file itself is fsync'd and its *directory* fsync'd at creation, so
//! the header is durable before any stage may complete. A record is
//! committed if and only if its complete frame is on disk — a torn
//! tail fails the length or CRC check and recovery truncates to the
//! last clean frame instead of misparsing it.
//!
//! **Recovery.** [`Journal::recover`] walks frames from the start: the
//! first frame must be a valid header (else a typed
//! [`JournalError`]); every following well-formed frame folds into a
//! [`JournalState`] (duplicate `(stage, block)` records are last-wins —
//! a stage retry deterministically rewrites its destination, so the
//! newest checksum is the one on disk); the first malformed frame ends
//! the clean prefix and everything after it is dropped (and truncated
//! away before new appends). Corruption *behind* a valid CRC is caught
//! one level up: resume re-verifies journaled block checksums against
//! the scratch stores ([`crate::exec`]).
//!
//! The payloads are hand-rolled JSON on [`bwfft_trace::value`] (no
//! serde in this environment), with fixed key order so the byte-exact
//! schema snapshot test can pin the format.

use crate::error::{JournalError, ResumeError};
use crate::plan::OocPlan;
use bwfft_kernels::Direction;
use bwfft_trace::value::{parse_document, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal schema identifier, bumped on any frame/field change.
pub const JOURNAL_SCHEMA: &str = "bwfft-ooc-journal/1";

/// File name of the journal inside a workspace.
pub const JOURNAL_FILE: &str = "journal.bwfft";

/// Number of streamed stages a journal tracks (see `exec::STAGE_NAMES`).
pub const JOURNAL_STAGES: usize = 5;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the frame
/// guard. Bitwise, table-free: journal frames are tens of bytes, so
/// this is nowhere near a hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn dir_token(dir: Direction) -> &'static str {
    match dir {
        Direction::Forward => "forward",
        Direction::Inverse => "inverse",
    }
}

fn dir_from_token(tok: &str) -> Option<Direction> {
    match tok {
        "forward" => Some(Direction::Forward),
        "inverse" => Some(Direction::Inverse),
        _ => None,
    }
}

/// Frames `json` for the on-disk journal: length, CRC, payload.
pub fn encode_frame(json: &str) -> String {
    format!("{} {:08x} {}\n", json.len(), crc32(json.as_bytes()), json)
}

/// The header frame: everything a resume must match before it may
/// trust a single completion record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    pub n: usize,
    pub n1: usize,
    pub n2: usize,
    pub half_elems: usize,
    pub stride_cols_n1: usize,
    pub stride_cols_n2: usize,
    pub dir: Direction,
    pub budget_bytes: u64,
    pub seed: u64,
    /// Order-independent checksum of the full input signal payload.
    pub input_fp: u64,
}

impl JournalHeader {
    /// Binds `plan` + run identity into a header.
    pub fn for_plan(plan: &OocPlan, budget_bytes: usize, seed: u64, input_fp: u64) -> Self {
        JournalHeader {
            n: plan.n,
            n1: plan.n1,
            n2: plan.n2,
            half_elems: plan.half_elems,
            stride_cols_n1: plan.stride_cols_n1,
            stride_cols_n2: plan.stride_cols_n2,
            dir: plan.dir,
            budget_bytes: budget_bytes as u64,
            seed,
            input_fp,
        }
    }

    /// Typed mismatch if this journal was written by a different plan
    /// or run identity than the one now requesting the resume.
    pub fn matches(
        &self,
        plan: &OocPlan,
        budget_bytes: usize,
        seed: u64,
    ) -> Result<(), ResumeError> {
        let checks: [(&'static str, u64, u64); 9] = [
            ("n", self.n as u64, plan.n as u64),
            ("n1", self.n1 as u64, plan.n1 as u64),
            ("n2", self.n2 as u64, plan.n2 as u64),
            ("half_elems", self.half_elems as u64, plan.half_elems as u64),
            (
                "stride_cols_n1",
                self.stride_cols_n1 as u64,
                plan.stride_cols_n1 as u64,
            ),
            (
                "stride_cols_n2",
                self.stride_cols_n2 as u64,
                plan.stride_cols_n2 as u64,
            ),
            (
                "dir",
                (self.dir == Direction::Inverse) as u64,
                (plan.dir == Direction::Inverse) as u64,
            ),
            ("budget_bytes", self.budget_bytes, budget_bytes as u64),
            ("seed", self.seed, seed),
        ];
        for (field, journaled, requested) in checks {
            if journaled != requested {
                return Err(ResumeError::PlanMismatch {
                    field,
                    journaled,
                    requested,
                });
            }
        }
        Ok(())
    }

    fn emit(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"");
        s.push_str(JOURNAL_SCHEMA);
        s.push_str("\",\"kind\":\"header\"");
        s.push_str(&format!(
            ",\"n\":{},\"n1\":{},\"n2\":{},\"half_elems\":{}",
            self.n, self.n1, self.n2, self.half_elems
        ));
        s.push_str(&format!(
            ",\"stride_cols_n1\":{},\"stride_cols_n2\":{}",
            self.stride_cols_n1, self.stride_cols_n2
        ));
        s.push_str(&format!(
            ",\"dir\":\"{}\",\"budget_bytes\":{},\"seed\":{},\"input_fp\":{}}}",
            dir_token(self.dir),
            self.budget_bytes,
            self.seed,
            self.input_fp
        ));
        s
    }

    fn from_value(v: &Value, offset: u64) -> Result<JournalHeader, JournalError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| JournalError::record(offset, "header frame is not an object"))?;
        let schema = obj.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != JOURNAL_SCHEMA {
            return Err(JournalError::Schema {
                found: schema.to_string(),
            });
        }
        let field = |name: &'static str| -> Result<u64, JournalError> {
            obj.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| JournalError::record(offset, format!("header missing {name}")))
        };
        let dir_tok = obj
            .get("dir")
            .and_then(Value::as_str)
            .ok_or_else(|| JournalError::record(offset, "header missing dir"))?;
        let dir = dir_from_token(dir_tok)
            .ok_or_else(|| JournalError::record(offset, format!("unknown direction {dir_tok}")))?;
        Ok(JournalHeader {
            n: field("n")? as usize,
            n1: field("n1")? as usize,
            n2: field("n2")? as usize,
            half_elems: field("half_elems")? as usize,
            stride_cols_n1: field("stride_cols_n1")? as usize,
            stride_cols_n2: field("stride_cols_n2")? as usize,
            dir,
            budget_bytes: field("budget_bytes")?,
            seed: field("seed")?,
            input_fp: field("input_fp")?,
        })
    }
}

fn emit_block(stage: usize, block: usize, checksum: u64) -> String {
    format!("{{\"kind\":\"block\",\"stage\":{stage},\"block\":{block},\"checksum\":{checksum}}}")
}

fn emit_stage(stage: usize, blocks: usize) -> String {
    format!("{{\"kind\":\"stage\",\"stage\":{stage},\"blocks\":{blocks}}}")
}

/// Everything the clean prefix of a journal asserts about the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalState {
    /// `Some(blocks)` once a stage's completion record is committed.
    pub stage_done: [Option<usize>; JOURNAL_STAGES],
    /// Committed `(block → checksum)` records per stage (last wins).
    pub blocks: [BTreeMap<usize, u64>; JOURNAL_STAGES],
}

impl JournalState {
    /// First stage without a completion record (`JOURNAL_STAGES` when
    /// the whole transform is journaled complete).
    pub fn frontier(&self) -> usize {
        self.stage_done
            .iter()
            .position(Option::is_none)
            .unwrap_or(JOURNAL_STAGES)
    }

    /// Total committed block records across all stages.
    pub fn journaled_blocks(&self) -> usize {
        self.blocks.iter().map(BTreeMap::len).sum()
    }
}

/// What [`Journal::recover`] salvaged from an on-disk journal.
#[derive(Clone, Debug)]
pub struct Recovered {
    pub header: JournalHeader,
    pub state: JournalState,
    /// Byte length of the clean frame prefix; appends resume here.
    pub clean_bytes: u64,
    /// Bytes past the clean prefix (torn tail / garbage) that were
    /// dropped, never misparsed.
    pub dropped_bytes: u64,
    /// Committed non-header records in the clean prefix.
    pub records: u64,
}

/// One frame decoded from `buf[pos..]`, or `None` when the bytes from
/// `pos` on do not form a complete valid frame (clean-prefix end).
fn decode_frame(buf: &[u8], pos: usize) -> Option<(&str, usize)> {
    let rest = &buf[pos..];
    // <len> digits (bounded so garbage can't scan forever).
    let mut i = 0;
    while i < rest.len() && i < 9 && rest[i].is_ascii_digit() {
        i += 1;
    }
    if i == 0 || i >= rest.len() || rest[i] != b' ' {
        return None;
    }
    let len: usize = std::str::from_utf8(&rest[..i]).ok()?.parse().ok()?;
    let crc_start = i + 1;
    let crc_end = crc_start + 8;
    if crc_end >= rest.len() || rest[crc_end] != b' ' {
        return None;
    }
    let crc_hex = std::str::from_utf8(&rest[crc_start..crc_end]).ok()?;
    let want_crc = u32::from_str_radix(crc_hex, 16).ok()?;
    let json_start = crc_end + 1;
    let json_end = json_start.checked_add(len)?;
    if json_end >= rest.len() || rest[json_end] != b'\n' {
        return None;
    }
    let json = &rest[json_start..json_end];
    if crc32(json) != want_crc {
        return None;
    }
    let json = std::str::from_utf8(json).ok()?;
    Some((json, pos + json_end + 1))
}

/// A live append handle on a journal file.
///
/// Appends are serialized under a mutex (the last-arriving storer of a
/// block commits its record), positioned at a tracked offset so no
/// seek state is shared, and fsync'd before [`Journal::append_block`]
/// returns — a block is only ever *reported* complete after its record
/// is durable.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    inner: Mutex<AppendState>,
}

#[derive(Debug)]
struct AppendState {
    file: File,
    offset: u64,
}

impl Journal {
    /// Creates a fresh journal (refusing to clobber an existing one)
    /// and durably commits the header: frame write, `fsync(file)`,
    /// then `fsync` of the containing directory so the file's
    /// existence survives a crash too.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    JournalError::AlreadyExists {
                        path: path.to_path_buf(),
                    }
                } else {
                    JournalError::io("journal create", e)
                }
            })?;
        let frame = encode_frame(&header.emit());
        file.write_all_at(frame.as_bytes(), 0)
            .map_err(|e| JournalError::io("journal header write", e))?;
        file.sync_all()
            .map_err(|e| JournalError::io("journal header fsync", e))?;
        if let Some(dir) = path.parent() {
            File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| JournalError::io("journal dir fsync", e))?;
        }
        Ok(Journal {
            path: path.to_path_buf(),
            inner: Mutex::new(AppendState {
                file,
                offset: frame.len() as u64,
            }),
        })
    }

    /// Reopens a recovered journal for appending: the torn tail past
    /// `clean_bytes` is truncated away (durably) so replay and append
    /// agree on the frame boundary.
    pub fn open_append(path: &Path, clean_bytes: u64) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| JournalError::io("journal open", e))?;
        file.set_len(clean_bytes)
            .map_err(|e| JournalError::io("journal truncate", e))?;
        file.sync_all()
            .map_err(|e| JournalError::io("journal truncate fsync", e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            inner: Mutex::new(AppendState {
                file,
                offset: clean_bytes,
            }),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, json: &str) -> Result<(), JournalError> {
        let frame = encode_frame(json);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .file
            .write_all_at(frame.as_bytes(), inner.offset)
            .map_err(|e| JournalError::io("journal append", e))?;
        inner
            .file
            .sync_data()
            .map_err(|e| JournalError::io("journal fsync", e))?;
        inner.offset += frame.len() as u64;
        Ok(())
    }

    /// Durably records that `block` of `stage` is fully on disk with
    /// the given order-independent checksum of its written elements.
    pub fn append_block(&self, stage: usize, block: usize, checksum: u64) -> Result<(), JournalError> {
        self.append(&emit_block(stage, block, checksum))
    }

    /// Durably records that all `blocks` blocks of `stage` completed.
    pub fn append_stage(&self, stage: usize, blocks: usize) -> Result<(), JournalError> {
        self.append(&emit_stage(stage, blocks))
    }

    /// Replays a journal file into its clean-prefix state. Typed
    /// errors only for an unusable journal (unreadable, no valid
    /// header, wrong schema, or a CRC-valid record that violates the
    /// schema); torn or corrupt *tails* are clean-prefix truncations,
    /// reported via `dropped_bytes`, never misparsed.
    pub fn recover(path: &Path) -> Result<Recovered, JournalError> {
        let buf = std::fs::read(path).map_err(|e| JournalError::io("journal read", e))?;
        let (header_json, mut pos) = decode_frame(&buf, 0).ok_or(JournalError::NoHeader)?;
        let header_val = parse_document(header_json)
            .map_err(|e| JournalError::record(0, format!("header JSON: {e}")))?;
        let header = JournalHeader::from_value(&header_val, 0)?;
        let mut state = JournalState::default();
        let mut records = 0u64;
        while pos < buf.len() {
            let Some((json, next)) = decode_frame(&buf, pos) else {
                break;
            };
            let offset = pos as u64;
            // A frame whose CRC validates but whose JSON does not parse
            // cannot come from a torn write — it is version skew or a
            // bug, and silently dropping it could hide committed work.
            let val = parse_document(json)
                .map_err(|e| JournalError::record(offset, format!("record JSON: {e}")))?;
            let obj = val
                .as_obj()
                .ok_or_else(|| JournalError::record(offset, "record is not an object"))?;
            match obj.get("kind").and_then(Value::as_str) {
                Some("block") => {
                    let (stage, block, sum) = block_fields(obj, offset)?;
                    state.blocks[stage].insert(block, sum);
                }
                Some("stage") => {
                    let stage = stage_field(obj, offset)?;
                    let blocks = obj
                        .get("blocks")
                        .and_then(Value::as_usize)
                        .ok_or_else(|| JournalError::record(offset, "stage record missing blocks"))?;
                    state.stage_done[stage] = Some(blocks);
                }
                Some("header") => {
                    return Err(JournalError::record(offset, "duplicate header frame"));
                }
                // Unknown kinds are additive schema evolution: skip.
                Some(_) => {}
                None => return Err(JournalError::record(offset, "record missing kind")),
            }
            records += 1;
            pos = next;
        }
        Ok(Recovered {
            header,
            state,
            clean_bytes: pos as u64,
            dropped_bytes: (buf.len() - pos) as u64,
            records,
        })
    }
}

fn stage_field(obj: &BTreeMap<String, Value>, offset: u64) -> Result<usize, JournalError> {
    let stage = obj
        .get("stage")
        .and_then(Value::as_usize)
        .ok_or_else(|| JournalError::record(offset, "record missing stage"))?;
    if stage >= JOURNAL_STAGES {
        return Err(JournalError::record(offset, format!("stage {stage} out of range")));
    }
    Ok(stage)
}

fn block_fields(
    obj: &BTreeMap<String, Value>,
    offset: u64,
) -> Result<(usize, usize, u64), JournalError> {
    let stage = stage_field(obj, offset)?;
    let block = obj
        .get("block")
        .and_then(Value::as_usize)
        .ok_or_else(|| JournalError::record(offset, "block record missing block"))?;
    let sum = obj
        .get("checksum")
        .and_then(Value::as_u64)
        .ok_or_else(|| JournalError::record(offset, "block record missing checksum"))?;
    Ok((stage, block, sum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_machine::presets;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bwfft-journal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn header() -> JournalHeader {
        let cfg = crate::plan::OocConfig {
            budget_bytes: 1 << 16,
            spec: presets::kaby_lake_7700k(),
            ..Default::default()
        };
        let p = crate::plan::plan(1 << 12, &cfg).unwrap();
        JournalHeader::for_plan(&p, cfg.budget_bytes, 7, 0xDEAD_BEEF)
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn create_append_recover_round_trips() {
        let path = tmp("roundtrip.bwfft");
        let _ = std::fs::remove_file(&path);
        let h = header();
        let j = Journal::create(&path, &h).unwrap();
        j.append_block(0, 0, 11).unwrap();
        j.append_block(0, 1, 22).unwrap();
        j.append_block(0, 1, 33).unwrap(); // retry: last wins
        j.append_stage(0, 2).unwrap();
        j.append_block(1, 0, 44).unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.header, h);
        assert_eq!(rec.dropped_bytes, 0);
        assert_eq!(rec.records, 5);
        assert_eq!(rec.state.stage_done[0], Some(2));
        assert_eq!(rec.state.blocks[0].get(&1), Some(&33));
        assert_eq!(rec.state.blocks[1].get(&0), Some(&44));
        assert_eq!(rec.state.frontier(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_misparsed() {
        let path = tmp("torn.bwfft");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path, &header()).unwrap();
        j.append_block(2, 5, 99).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        // Tear off the last 3 bytes of the final frame.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let rec = Journal::recover(&path).unwrap();
        assert!(rec.state.blocks[2].is_empty(), "torn record must not commit");
        assert_eq!(rec.dropped_bytes, full - 3 - rec.clean_bytes);
        // Reopen for append truncates to the clean prefix.
        let j = Journal::open_append(&path, rec.clean_bytes).unwrap();
        j.append_block(2, 5, 100).unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.state.blocks[2].get(&5), Some(&100));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_to_clobber_an_existing_journal() {
        let path = tmp("exists.bwfft");
        let _ = std::fs::remove_file(&path);
        let _j = Journal::create(&path, &header()).unwrap();
        match Journal::create(&path, &header()) {
            Err(JournalError::AlreadyExists { .. }) => {}
            other => panic!("expected AlreadyExists, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_mismatch_is_typed() {
        let cfg = crate::plan::OocConfig {
            budget_bytes: 1 << 16,
            ..Default::default()
        };
        let p = crate::plan::plan(1 << 12, &cfg).unwrap();
        let h = JournalHeader::for_plan(&p, cfg.budget_bytes, 7, 1);
        assert!(h.matches(&p, cfg.budget_bytes, 7).is_ok());
        match h.matches(&p, cfg.budget_bytes, 8) {
            Err(ResumeError::PlanMismatch { field: "seed", .. }) => {}
            other => panic!("expected seed mismatch, got {other:?}"),
        }
        let q = crate::plan::plan(1 << 14, &cfg).unwrap();
        assert!(h.matches(&q, cfg.budget_bytes, 7).is_err());
    }
}
