//! Planning the out-of-core four-step decomposition.
//!
//! [`plan`] picks the `n1 × n2` split, the double-buffer half size,
//! and the padded row strides from the machine description plus a
//! caller-set working-memory budget, rejecting infeasible pairings
//! with typed errors instead of allocating and hoping.
//!
//! Budget accounting is deliberately coarse and conservative: a half
//! of `H` elements charges `64·H` bytes — the two 16-byte-element
//! halves (`32·H`) plus headroom for the buffer canaries and the
//! per-thread transpose gather scratch, which are both small multiples
//! of a block row. The planner takes the largest power-of-two `H`
//! under that charge, clamped to `[max(n1, n2), n]` so every stage
//! moves whole rows and no block exceeds the matrix.

use crate::error::OocError;
use crate::store::padded_stride;
use bwfft_core::supervisor::RetryPolicy;
use bwfft_kernels::Direction;
use bwfft_machine::{presets, MachineSpec};
use bwfft_pipeline::exec::IntegrityConfig;
use bwfft_trace::TraceCollector;
use std::sync::Arc;

/// Bytes charged per element of double-buffer half (see module docs).
pub const BYTES_PER_HALF_ELEM: usize = 64;

/// Which streamed stage an injected storage fault should hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OocFaultKind {
    /// Fail the block's load phase once.
    Read,
    /// Fail the block's store phase once.
    Write,
}

/// A one-shot injected storage fault (resilience drills): stage
/// `stage` (0–4), block `iter`, read or write side. The fault fires
/// exactly once per run; the retry ladder must absorb it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OocFault {
    pub stage: usize,
    pub iter: usize,
    pub kind: OocFaultKind,
}

/// How a resume re-checks journaled block checksums against the bytes
/// actually in the scratch stores before trusting them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumeVerify {
    /// Re-verify up to this many evenly spaced blocks per stage —
    /// cheap spot coverage proportional to nothing (the default).
    Sample(usize),
    /// Re-verify every journaled block (the kill-soak setting: any
    /// bit-flipped scratch block *must* be caught, not sampled past).
    All,
}

impl Default for ResumeVerify {
    fn default() -> Self {
        ResumeVerify::Sample(4)
    }
}

/// What an injected crash point does once its journal record commits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// `std::process::abort()` — a real hard kill (no destructors, no
    /// unwinding), the CLI child's flavor in the kill/restart soak.
    Abort,
    /// Stop the run with a typed [`crate::OocError::CrashPoint`] —
    /// the in-process flavor for library tests, which cannot abort
    /// the test runner.
    Halt,
}

/// Crash the run immediately after the journal record for
/// `(stage, block)` is durably committed — the most adversarial
/// instant, because the record exists but nothing after it does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    pub stage: usize,
    pub block: usize,
    pub mode: CrashMode,
}

/// Checkpointing knobs, consulted only when a run carries a journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Resume-time checksum re-verification policy.
    pub resume_verify: ResumeVerify,
    /// Injected crash point (kill-soak / crash-safety drills).
    pub crash: Option<CrashPoint>,
}

/// Caller knobs for an out-of-core run.
#[derive(Clone, Debug)]
pub struct OocConfig {
    pub dir: Direction,
    /// Working-memory budget in bytes for the streaming buffer.
    pub budget_bytes: usize,
    /// Data (soft-DMA) threads per stage.
    pub p_d: usize,
    /// Compute threads per stage.
    pub p_c: usize,
    /// Machine description: supplies the LLC geometry for the padded
    /// strides and the default budget.
    pub spec: MachineSpec,
    /// Per-stage retry ladder (attempts, backoff) before the serial
    /// fallback tier.
    pub retry: RetryPolicy,
    /// Pipeline integrity guards (canaries + checksums) per stage.
    pub integrity: IntegrityConfig,
    /// One-shot injected storage fault.
    pub fault: Option<OocFault>,
    /// Span/mark sink shared with the in-RAM executors.
    pub trace: Option<Arc<TraceCollector>>,
    /// Metrics registry for per-stage storage accounting
    /// (`ooc.<stage>.*`). `None` keeps the run metric-free.
    pub metrics: Option<Arc<bwfft_metrics::Registry>>,
    /// Checkpointing knobs; inert unless the run carries a journal
    /// (see [`crate::run_checkpointed`]).
    pub checkpoint: CheckpointConfig,
}

impl Default for OocConfig {
    fn default() -> Self {
        let spec = presets::kaby_lake_7700k();
        // Default budget: an LLC-sized working set, the paper's target
        // residency for the streaming buffer.
        let budget_bytes = spec.llc().size_bytes.max(1 << 20);
        OocConfig {
            dir: Direction::Forward,
            budget_bytes,
            p_d: 1,
            p_c: 1,
            spec,
            retry: RetryPolicy::default(),
            integrity: IntegrityConfig::default(),
            fault: None,
            trace: None,
            metrics: None,
            checkpoint: CheckpointConfig::default(),
        }
    }
}

/// A feasible out-of-core decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OocPlan {
    /// Transform length.
    pub n: usize,
    /// Row count of the input matrix (`n = n1 · n2`, `n1 >= n2`).
    pub n1: usize,
    /// Column count of the input matrix.
    pub n2: usize,
    /// Elements per double-buffer half.
    pub half_elems: usize,
    /// Padded stride (elements) for stores with `n1` columns.
    pub stride_cols_n1: usize,
    /// Padded stride (elements) for stores with `n2` columns.
    pub stride_cols_n2: usize,
    pub dir: Direction,
    pub p_d: usize,
    pub p_c: usize,
}

impl OocPlan {
    /// Blocks streamed by a stage over a matrix with `cols` columns.
    pub fn iters_for_cols(&self, rows: usize, cols: usize) -> usize {
        rows / (self.half_elems / cols).min(rows)
    }

    /// Total logical payload bytes of the input signal.
    pub fn data_bytes(&self) -> u64 {
        (self.n * crate::store::ELEM_BYTES) as u64
    }
}

/// Plans an out-of-core 1D transform of length `n` under `cfg`.
pub fn plan(n: usize, cfg: &OocConfig) -> Result<OocPlan, OocError> {
    if !n.is_power_of_two() {
        return Err(OocError::NotPow2 { n });
    }
    if n < 4 {
        return Err(OocError::TooSmall { n });
    }
    let e = n.trailing_zeros() as usize;
    let n2 = 1usize << (e / 2);
    let n1 = n / n2; // n1 >= n2, both powers of two
    let row_max = n1.max(n2);
    let needed = row_max * BYTES_PER_HALF_ELEM;
    if cfg.budget_bytes < needed {
        return Err(OocError::BudgetTooSmall {
            needed,
            budget: cfg.budget_bytes,
        });
    }
    // Largest power-of-two half under the budget charge, clamped so a
    // block never exceeds the whole matrix.
    let mut half = (cfg.budget_bytes / BYTES_PER_HALF_ELEM).max(1);
    if !half.is_power_of_two() {
        half = (half + 1).next_power_of_two() >> 1;
    }
    let half_elems = half.min(n).max(row_max);
    Ok(OocPlan {
        n,
        n1,
        n2,
        half_elems,
        stride_cols_n1: padded_stride(n1, &cfg.spec),
        stride_cols_n2: padded_stride(n2, &cfg.spec),
        dir: cfg.dir,
        p_d: cfg.p_d.max(1),
        p_c: cfg.p_c.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_balanced_and_exact() {
        let cfg = OocConfig::default();
        for e in 2..=20 {
            let n = 1usize << e;
            let p = plan(n, &cfg).unwrap();
            assert_eq!(p.n1 * p.n2, n);
            assert!(p.n1 == p.n2 || p.n1 == 2 * p.n2);
            assert!(p.half_elems >= p.n1.max(p.n2));
            assert!(p.half_elems <= n.max(p.n1));
        }
    }

    #[test]
    fn non_pow2_and_tiny_sizes_are_typed_errors() {
        let cfg = OocConfig::default();
        assert!(matches!(plan(1000, &cfg), Err(OocError::NotPow2 { n: 1000 })));
        assert!(matches!(plan(2, &cfg), Err(OocError::TooSmall { n: 2 })));
    }

    #[test]
    fn budget_floor_is_enforced() {
        let cfg = OocConfig {
            budget_bytes: 64, // one element per half: can't hold a row
            ..OocConfig::default()
        };
        match plan(1 << 16, &cfg) {
            Err(OocError::BudgetTooSmall { needed, budget }) => {
                assert_eq!(budget, 64);
                assert_eq!(needed, 256 * BYTES_PER_HALF_ELEM);
            }
            other => panic!("expected BudgetTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn budget_scales_the_half() {
        let n = 1 << 16;
        let small = plan(
            n,
            &OocConfig {
                budget_bytes: 256 * BYTES_PER_HALF_ELEM,
                ..OocConfig::default()
            },
        )
        .unwrap();
        let large = plan(
            n,
            &OocConfig {
                budget_bytes: 4096 * BYTES_PER_HALF_ELEM,
                ..OocConfig::default()
            },
        )
        .unwrap();
        assert_eq!(small.half_elems, 256);
        assert_eq!(large.half_elems, 4096);
    }
}
