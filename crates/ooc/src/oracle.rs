//! Correctness oracles for transforms too large to check in RAM.
//!
//! A full reference transform of an out-of-core problem is unaffordable
//! by definition, so verification samples instead:
//!
//! * **Spot check** — `bins` random output bins `k` are recomputed by a
//!   direct `O(n)` DFT sum streamed over the *stored input* (which the
//!   executor never overwrites) and compared against the stored
//!   spectrum. Tolerance scales with `Σ|x|`, the sum that bounds any
//!   `|Y[k]|` and the rounding of its direct evaluation.
//! * **Streamed Parseval** — input and output energies are accumulated
//!   block by block; for the unnormalized kernels both directions must
//!   satisfy `Σ|Y|² = n·Σ|x|²`.
//!
//! Both checks read the stores through the same positioned-I/O path
//! the executor uses, so a corrupted block on disk — not just a wrong
//! in-RAM value — fails the run.

use crate::error::OocError;
use crate::exec::twiddle;
use crate::plan::OocPlan;
use crate::store::OocStore;
use bwfft_num::alloc::try_vec_zeroed;
use bwfft_num::signal::SplitMix64;
use bwfft_num::Complex64;

/// Oracle knobs.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Random output bins to spot-check.
    pub bins: usize,
    /// Seed for the bin choice.
    pub seed: u64,
    /// Spot tolerance as a fraction of `Σ|x|`.
    pub rel_tol: f64,
    /// Parseval tolerance as a fraction of `n·Σ|x|²`.
    pub parseval_rel_tol: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            bins: 16,
            seed: 0xC0FFEE,
            rel_tol: 1e-9,
            parseval_rel_tol: 1e-9,
        }
    }
}

/// What the oracle measured on an accepted run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleReport {
    pub bins_checked: usize,
    /// Largest `|expected − stored|` over the sampled bins.
    pub max_abs_err: f64,
    /// The absolute tolerance those errors were held to.
    pub tol: f64,
    pub input_energy: f64,
    pub output_energy: f64,
    pub parseval_rel_err: f64,
}

/// Verifies `output` against `input` per the plan. Streams both stores;
/// peak memory is one row of each plus the sampled accumulators.
pub fn verify(
    input: &OocStore,
    output: &OocStore,
    plan: &OocPlan,
    cfg: &OracleConfig,
) -> Result<OracleReport, OocError> {
    let n = plan.n;
    let bins = cfg.bins.max(1).min(n);
    let mut rng = SplitMix64::new(cfg.seed);
    let ks: Vec<usize> = (0..bins).map(|_| (rng.next_u64() % n as u64) as usize).collect();

    // One pass over the stored input: per-bin direct DFT sums, Σ|x|,
    // and Σ|x|².
    let mut acc = try_vec_zeroed::<Complex64>(bins, "oracle accumulators")?;
    let mut sum_abs = 0.0f64;
    let mut input_energy = 0.0f64;
    let mut row = try_vec_zeroed::<Complex64>(plan.n2, "oracle input row")?;
    for a1 in 0..plan.n1 {
        input
            .read_rows(a1, &mut row)
            .map_err(|e| OocError::io("oracle input stream", e))?;
        for (a2, &x) in row.iter().enumerate() {
            sum_abs += x.abs();
            input_energy += x.norm_sqr();
            let a = a1 * plan.n2 + a2;
            for (slot, &k) in acc.iter_mut().zip(&ks) {
                *slot += x * twiddle(a, k, n, plan.dir);
            }
        }
    }

    // One pass over the stored output: Σ|Y|².
    let mut output_energy = 0.0f64;
    let mut out_row = try_vec_zeroed::<Complex64>(plan.n1, "oracle output row")?;
    for k2 in 0..plan.n2 {
        output
            .read_rows(k2, &mut out_row)
            .map_err(|e| OocError::io("oracle output stream", e))?;
        for y in &out_row {
            output_energy += y.norm_sqr();
        }
    }

    // Sampled bins: Y[k] lives at output row k / n1, column k % n1.
    let tol = cfg.rel_tol * sum_abs.max(1.0);
    let mut max_abs_err = 0.0f64;
    let mut one = [Complex64::ZERO];
    for (expected, &k) in acc.iter().zip(&ks) {
        output
            .read_row_segment(k / plan.n1, k % plan.n1, &mut one)
            .map_err(|e| OocError::io("oracle bin read", e))?;
        let err = (*expected - one[0]).abs();
        max_abs_err = max_abs_err.max(err);
        // A NaN error (corrupted bytes decoded as NaN) must reject too.
        if err > tol || err.is_nan() {
            return Err(OocError::OracleMismatch {
                bin: k,
                expected: *expected,
                got: one[0],
                err,
                tol,
            });
        }
    }

    // Unnormalized kernels in both directions: Σ|Y|² = n·Σ|x|².
    let expected_energy = n as f64 * input_energy;
    let parseval_rel_err =
        (output_energy - expected_energy).abs() / expected_energy.max(f64::MIN_POSITIVE);
    if parseval_rel_err > cfg.parseval_rel_tol || parseval_rel_err.is_nan() {
        return Err(OocError::ParsevalMismatch {
            input_energy,
            output_energy,
            rel_err: parseval_rel_err,
            tol: cfg.parseval_rel_tol,
        });
    }

    Ok(OracleReport {
        bins_checked: bins,
        max_abs_err,
        tol,
        input_energy,
        output_energy,
        parseval_rel_err,
    })
}
