//! Typed errors for the out-of-core tier.
//!
//! Everything that can go wrong — an infeasible problem/budget pairing,
//! a storage failure that survived the retry ladder, or an oracle
//! verdict against the produced spectrum — surfaces as a variant here;
//! the library never panics on these paths.

use bwfft_num::alloc::AllocError;
use bwfft_num::Complex64;
use bwfft_pipeline::PipelineError;
use std::fmt;
use std::path::PathBuf;

/// Why a checkpoint journal could not be created, appended, or
/// replayed. Torn/corrupt *tails* are not errors — recovery truncates
/// them to the last clean frame — so these fire only for an unusable
/// journal: unreadable storage, no valid header, the wrong schema, or
/// a CRC-valid record that violates the record schema (version skew).
#[derive(Debug)]
pub enum JournalError {
    /// A journal file operation failed.
    Io { context: &'static str, message: String },
    /// The file's first frame is not a valid header frame (empty file,
    /// foreign file, or a header torn mid-write before its fsync).
    NoHeader,
    /// The header names a schema this build does not speak.
    Schema { found: String },
    /// A frame passed its CRC but violates the record schema.
    Record { offset: u64, message: String },
    /// `Journal::create` refused to clobber an existing journal.
    AlreadyExists { path: PathBuf },
}

impl JournalError {
    pub(crate) fn io(context: &'static str, e: std::io::Error) -> Self {
        JournalError::Io {
            context,
            message: e.to_string(),
        }
    }

    pub(crate) fn record(offset: u64, message: impl Into<String>) -> Self {
        JournalError::Record {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { context, message } => {
                write!(f, "journal failure in {context}: {message}")
            }
            JournalError::NoHeader => {
                write!(f, "journal has no valid header frame (empty, torn, or not a journal)")
            }
            JournalError::Schema { found } => {
                write!(f, "journal schema {found:?} is not the supported bwfft-ooc-journal/1")
            }
            JournalError::Record { offset, message } => {
                write!(f, "journal record at byte {offset} is invalid: {message}")
            }
            JournalError::AlreadyExists { path } => write!(
                f,
                "journal already exists at {}; pass --resume to continue it or remove the workspace",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// Why a resume request could not be honored. Every variant is a
/// refusal *before* any stage runs — a resume never produces a wrong
/// answer; it produces the transform or one of these.
#[derive(Debug)]
pub enum ResumeError {
    /// `--resume` was requested but the workspace has no journal.
    JournalMissing { path: PathBuf },
    /// The journal header was written by a different plan or run
    /// identity than the one requesting the resume.
    PlanMismatch {
        field: &'static str,
        journaled: u64,
        requested: u64,
    },
    /// The input store's streamed fingerprint no longer matches the
    /// one bound in the header: the input was corrupted or replaced.
    InputFingerprint { journaled: u64, computed: u64 },
    /// A store the journal says holds completed work is gone.
    ScratchMissing { store: &'static str, path: PathBuf },
    /// A journaled block's re-verified checksum disagrees with the
    /// bytes now in the scratch store: post-crash corruption.
    ScratchCorrupt {
        stage: &'static str,
        block: usize,
        journaled: u64,
        computed: u64,
    },
    /// A journaled record indexes a block past the stage's block count
    /// under the (validated) plan — the journal is self-inconsistent.
    BlockOutOfRange {
        stage: &'static str,
        block: usize,
        blocks: usize,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::JournalMissing { path } => write!(
                f,
                "cannot resume: no checkpoint journal at {}",
                path.display()
            ),
            ResumeError::PlanMismatch {
                field,
                journaled,
                requested,
            } => write!(
                f,
                "cannot resume: journal {field} = {journaled} but the requested run has \
                 {field} = {requested}"
            ),
            ResumeError::InputFingerprint { journaled, computed } => write!(
                f,
                "cannot resume: input store fingerprint {computed:#018x} does not match the \
                 journaled {journaled:#018x} (input corrupted or replaced)"
            ),
            ResumeError::ScratchMissing { store, path } => write!(
                f,
                "cannot resume: journaled work references missing store {store} at {}",
                path.display()
            ),
            ResumeError::ScratchCorrupt {
                stage,
                block,
                journaled,
                computed,
            } => write!(
                f,
                "resume re-verify rejected stage {stage} block {block}: stored bytes checksum \
                 {computed:#018x}, journal committed {journaled:#018x} (scratch corrupted \
                 after the crash)"
            ),
            ResumeError::BlockOutOfRange {
                stage,
                block,
                blocks,
            } => write!(
                f,
                "journal records block {block} for stage {stage}, but the plan streams only \
                 {blocks} blocks there"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Why an out-of-core plan or run failed.
#[derive(Debug)]
pub enum OocError {
    /// The transform length must be a power of two (the four-step
    /// split and the Stockham row kernels both require it).
    NotPow2 { n: usize },
    /// The transform is too small to split out of core (`n < 4`);
    /// an in-RAM plan is the right tool.
    TooSmall { n: usize },
    /// The working-memory budget cannot hold even one row of the
    /// n1×n2 decomposition in each double-buffer half.
    BudgetTooSmall { needed: usize, budget: usize },
    /// The working buffer itself failed to allocate.
    Alloc(AllocError),
    /// A storage operation failed outside any retryable stage
    /// (creating the workspace, sizing a store, oracle reads).
    Io { context: &'static str, message: String },
    /// One streamed stage kept failing after every retry and the
    /// serial fallback; `last` renders the final cause.
    StageExhausted {
        stage: &'static str,
        attempts: usize,
        last: String,
    },
    /// The pipeline executor rejected a stage for a non-I/O reason
    /// (worker panic, watchdog, integrity guard) on the final attempt.
    Pipeline {
        stage: &'static str,
        error: PipelineError,
    },
    /// A sampled output bin disagreed with the direct DFT of the
    /// stored input beyond tolerance.
    OracleMismatch {
        bin: usize,
        expected: Complex64,
        got: Complex64,
        err: f64,
        tol: f64,
    },
    /// The streamed energies violate Parseval beyond tolerance.
    ParsevalMismatch {
        input_energy: f64,
        output_energy: f64,
        rel_err: f64,
        tol: f64,
    },
    /// The checkpoint journal could not be created, appended, or
    /// replayed.
    Journal(JournalError),
    /// A resume request was refused before any stage ran.
    Resume(ResumeError),
    /// An injected crash point halted the run after committing its
    /// journal record (test/soak hook; the `Halt` flavor of a real
    /// `abort`). The workspace is kept; resume from it.
    CrashPoint { stage: &'static str, block: usize },
}

impl fmt::Display for OocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OocError::NotPow2 { n } => {
                write!(f, "out-of-core transform length {n} is not a power of two")
            }
            OocError::TooSmall { n } => {
                write!(f, "transform length {n} is too small to run out of core")
            }
            OocError::BudgetTooSmall { needed, budget } => write!(
                f,
                "working-memory budget of {budget} B cannot hold the decomposition \
                 (needs at least {needed} B)"
            ),
            OocError::Alloc(e) => write!(f, "working buffer allocation failed: {e}"),
            OocError::Io { context, message } => write!(f, "storage failure in {context}: {message}"),
            OocError::StageExhausted {
                stage,
                attempts,
                last,
            } => write!(
                f,
                "stage {stage} failed after {attempts} attempts (pipelined retries + serial \
                 fallback); last error: {last}"
            ),
            OocError::Pipeline { stage, error } => {
                write!(f, "pipeline failure in stage {stage}: {error}")
            }
            OocError::OracleMismatch {
                bin,
                expected,
                got,
                err,
                tol,
            } => write!(
                f,
                "spot-check oracle rejected bin {bin}: expected {expected}, stored {got} \
                 (|Δ| = {err:.3e} > tol {tol:.3e})"
            ),
            OocError::ParsevalMismatch {
                input_energy,
                output_energy,
                rel_err,
                tol,
            } => write!(
                f,
                "streamed Parseval check failed: input energy {input_energy:.6e}, \
                 output energy {output_energy:.6e}, relative error {rel_err:.3e} > tol {tol:.3e}"
            ),
            OocError::Journal(e) => write!(f, "checkpoint journal failure: {e}"),
            OocError::Resume(e) => write!(f, "{e}"),
            OocError::CrashPoint { stage, block } => write!(
                f,
                "run halted at injected crash point: stage {stage} block {block} journaled"
            ),
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocError::Alloc(e) => Some(e),
            OocError::Pipeline { error, .. } => Some(error),
            OocError::Journal(e) => Some(e),
            OocError::Resume(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for OocError {
    fn from(e: JournalError) -> Self {
        OocError::Journal(e)
    }
}

impl From<ResumeError> for OocError {
    fn from(e: ResumeError) -> Self {
        OocError::Resume(e)
    }
}

impl From<AllocError> for OocError {
    fn from(e: AllocError) -> Self {
        OocError::Alloc(e)
    }
}

impl OocError {
    /// Wraps an I/O error with the operation that hit it.
    pub fn io(context: &'static str, e: std::io::Error) -> Self {
        OocError::Io {
            context,
            message: e.to_string(),
        }
    }
}
