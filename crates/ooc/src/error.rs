//! Typed errors for the out-of-core tier.
//!
//! Everything that can go wrong — an infeasible problem/budget pairing,
//! a storage failure that survived the retry ladder, or an oracle
//! verdict against the produced spectrum — surfaces as a variant here;
//! the library never panics on these paths.

use bwfft_num::alloc::AllocError;
use bwfft_num::Complex64;
use bwfft_pipeline::PipelineError;
use std::fmt;

/// Why an out-of-core plan or run failed.
#[derive(Debug)]
pub enum OocError {
    /// The transform length must be a power of two (the four-step
    /// split and the Stockham row kernels both require it).
    NotPow2 { n: usize },
    /// The transform is too small to split out of core (`n < 4`);
    /// an in-RAM plan is the right tool.
    TooSmall { n: usize },
    /// The working-memory budget cannot hold even one row of the
    /// n1×n2 decomposition in each double-buffer half.
    BudgetTooSmall { needed: usize, budget: usize },
    /// The working buffer itself failed to allocate.
    Alloc(AllocError),
    /// A storage operation failed outside any retryable stage
    /// (creating the workspace, sizing a store, oracle reads).
    Io { context: &'static str, message: String },
    /// One streamed stage kept failing after every retry and the
    /// serial fallback; `last` renders the final cause.
    StageExhausted {
        stage: &'static str,
        attempts: usize,
        last: String,
    },
    /// The pipeline executor rejected a stage for a non-I/O reason
    /// (worker panic, watchdog, integrity guard) on the final attempt.
    Pipeline {
        stage: &'static str,
        error: PipelineError,
    },
    /// A sampled output bin disagreed with the direct DFT of the
    /// stored input beyond tolerance.
    OracleMismatch {
        bin: usize,
        expected: Complex64,
        got: Complex64,
        err: f64,
        tol: f64,
    },
    /// The streamed energies violate Parseval beyond tolerance.
    ParsevalMismatch {
        input_energy: f64,
        output_energy: f64,
        rel_err: f64,
        tol: f64,
    },
}

impl fmt::Display for OocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OocError::NotPow2 { n } => {
                write!(f, "out-of-core transform length {n} is not a power of two")
            }
            OocError::TooSmall { n } => {
                write!(f, "transform length {n} is too small to run out of core")
            }
            OocError::BudgetTooSmall { needed, budget } => write!(
                f,
                "working-memory budget of {budget} B cannot hold the decomposition \
                 (needs at least {needed} B)"
            ),
            OocError::Alloc(e) => write!(f, "working buffer allocation failed: {e}"),
            OocError::Io { context, message } => write!(f, "storage failure in {context}: {message}"),
            OocError::StageExhausted {
                stage,
                attempts,
                last,
            } => write!(
                f,
                "stage {stage} failed after {attempts} attempts (pipelined retries + serial \
                 fallback); last error: {last}"
            ),
            OocError::Pipeline { stage, error } => {
                write!(f, "pipeline failure in stage {stage}: {error}")
            }
            OocError::OracleMismatch {
                bin,
                expected,
                got,
                err,
                tol,
            } => write!(
                f,
                "spot-check oracle rejected bin {bin}: expected {expected}, stored {got} \
                 (|Δ| = {err:.3e} > tol {tol:.3e})"
            ),
            OocError::ParsevalMismatch {
                input_energy,
                output_energy,
                rel_err,
                tol,
            } => write!(
                f,
                "streamed Parseval check failed: input energy {input_energy:.6e}, \
                 output energy {output_energy:.6e}, relative error {rel_err:.3e} > tol {tol:.3e}"
            ),
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocError::Alloc(e) => Some(e),
            OocError::Pipeline { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<AllocError> for OocError {
    fn from(e: AllocError) -> Self {
        OocError::Alloc(e)
    }
}

impl OocError {
    /// Wraps an I/O error with the operation that hit it.
    pub fn io(context: &'static str, e: std::io::Error) -> Self {
        OocError::Io {
            context,
            message: e.to_string(),
        }
    }
}
