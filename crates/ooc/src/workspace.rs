//! Scratch-directory hygiene for out-of-core runs.
//!
//! Every run owns a [`Workspace`]: a uniquely named directory holding
//! the input/scratch/output stores. Dropping the workspace removes the
//! directory recursively — on success, on the error path, and during
//! panic unwinding alike — so no run can leak multi-gigabyte scratch
//! files onto the host. Tests assert all three paths.

use crate::error::OocError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

static WORKSPACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Directory-name prefix shared by generated workspaces; [`gc_stale`]
/// only ever touches directories carrying it.
pub const WORKSPACE_PREFIX: &str = "bwfft-ooc-";

/// A uniquely named scratch directory, removed on drop.
#[derive(Debug)]
pub struct Workspace {
    dir: PathBuf,
    keep: bool,
}

impl Workspace {
    /// Creates a fresh directory under `parent`.
    pub fn create_under(parent: &Path) -> Result<Workspace, OocError> {
        let seq = WORKSPACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = parent.join(format!("{WORKSPACE_PREFIX}{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&dir).map_err(|e| OocError::io("workspace create", e))?;
        Ok(Workspace { dir, keep: false })
    }

    /// Adopts a caller-chosen directory (created if absent, reused if
    /// present) — the checkpointed lifecycle, where a resumed process
    /// must land in the *same* directory the crashed one used. The
    /// workspace owns the directory: it is still removed on drop
    /// unless [`keep`](Self::keep) is called.
    pub fn at(dir: &Path) -> Result<Workspace, OocError> {
        std::fs::create_dir_all(dir).map_err(|e| OocError::io("workspace create", e))?;
        Ok(Workspace {
            dir: dir.to_path_buf(),
            keep: false,
        })
    }

    /// Creates a fresh directory under the system temp dir.
    pub fn create() -> Result<Workspace, OocError> {
        Self::create_under(&std::env::temp_dir())
    }

    /// The workspace directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A file path inside the workspace.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Disables removal on drop (debugging aid; the CLI's `--keep`).
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

/// Removes workspaces under `parent` whose directory name carries
/// [`WORKSPACE_PREFIX`] and whose last modification is older than
/// `older_than` — the `workspace gc` helper for scratch kept alive by
/// crashed or keep-on-failure runs that nobody came back to resume.
/// Returns the removed paths. Only prefix-named directories are ever
/// touched, so pointing this at a shared temp root is safe.
pub fn gc_stale(parent: &Path, older_than: Duration) -> Result<Vec<PathBuf>, OocError> {
    let mut removed = Vec::new();
    let entries = std::fs::read_dir(parent).map_err(|e| OocError::io("workspace gc scan", e))?;
    let now = SystemTime::now();
    for entry in entries {
        let entry = entry.map_err(|e| OocError::io("workspace gc scan", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(WORKSPACE_PREFIX) {
            continue;
        }
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let age = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| now.duration_since(t).ok());
        if age.is_some_and(|a| a >= older_than) {
            std::fs::remove_dir_all(&path).map_err(|e| OocError::io("workspace gc remove", e))?;
            removed.push(path);
        }
    }
    Ok(removed)
}

impl Drop for Workspace {
    fn drop(&mut self) {
        if !self.keep {
            // Best-effort: a failed cleanup must not turn a successful
            // transform (or an in-flight unwind) into an abort.
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_removes_directory_and_contents() {
        let ws = Workspace::create().unwrap();
        let dir = ws.dir().to_path_buf();
        std::fs::write(ws.path("junk.bin"), b"x").unwrap();
        assert!(dir.exists());
        drop(ws);
        assert!(!dir.exists());
    }

    #[test]
    fn at_reuses_an_existing_directory() {
        let root = std::env::temp_dir().join(format!(
            "{WORKSPACE_PREFIX}at-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut ws = Workspace::at(&root).unwrap();
        std::fs::write(ws.path("crumb.bin"), b"x").unwrap();
        ws.keep();
        drop(ws);
        // A second adoption sees the surviving contents.
        let ws = Workspace::at(&root).unwrap();
        assert!(ws.path("crumb.bin").exists());
        drop(ws); // not kept: removed
        assert!(!root.exists());
    }

    #[test]
    fn gc_removes_only_stale_prefixed_dirs() {
        let parent = std::env::temp_dir().join(format!("bwfft-gc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&parent);
        std::fs::create_dir_all(&parent).unwrap();
        let stale = parent.join(format!("{WORKSPACE_PREFIX}stale"));
        let foreign = parent.join("keep-me");
        std::fs::create_dir_all(&stale).unwrap();
        std::fs::create_dir_all(&foreign).unwrap();
        // Everything is younger than an hour: nothing to collect.
        assert!(gc_stale(&parent, Duration::from_secs(3600)).unwrap().is_empty());
        // Zero threshold: the prefixed dir goes, the foreign one stays.
        let removed = gc_stale(&parent, Duration::ZERO).unwrap();
        assert_eq!(removed, vec![stale.clone()]);
        assert!(!stale.exists());
        assert!(foreign.exists());
        std::fs::remove_dir_all(&parent).unwrap();
    }

    #[test]
    fn keep_leaves_directory_in_place() {
        let mut ws = Workspace::create().unwrap();
        ws.keep();
        let dir = ws.dir().to_path_buf();
        drop(ws);
        assert!(dir.exists());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
