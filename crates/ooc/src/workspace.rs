//! Scratch-directory hygiene for out-of-core runs.
//!
//! Every run owns a [`Workspace`]: a uniquely named directory holding
//! the input/scratch/output stores. Dropping the workspace removes the
//! directory recursively — on success, on the error path, and during
//! panic unwinding alike — so no run can leak multi-gigabyte scratch
//! files onto the host. Tests assert all three paths.

use crate::error::OocError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static WORKSPACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory, removed on drop.
#[derive(Debug)]
pub struct Workspace {
    dir: PathBuf,
    keep: bool,
}

impl Workspace {
    /// Creates a fresh directory under `parent`.
    pub fn create_under(parent: &Path) -> Result<Workspace, OocError> {
        let seq = WORKSPACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = parent.join(format!("bwfft-ooc-{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&dir).map_err(|e| OocError::io("workspace create", e))?;
        Ok(Workspace { dir, keep: false })
    }

    /// Creates a fresh directory under the system temp dir.
    pub fn create() -> Result<Workspace, OocError> {
        Self::create_under(&std::env::temp_dir())
    }

    /// The workspace directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A file path inside the workspace.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Disables removal on drop (debugging aid; the CLI's `--keep`).
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        if !self.keep {
            // Best-effort: a failed cleanup must not turn a successful
            // transform (or an in-flight unwind) into an abort.
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_removes_directory_and_contents() {
        let ws = Workspace::create().unwrap();
        let dir = ws.dir().to_path_buf();
        std::fs::write(ws.path("junk.bin"), b"x").unwrap();
        assert!(dir.exists());
        drop(ws);
        assert!(!dir.exists());
    }

    #[test]
    fn keep_leaves_directory_in_place() {
        let mut ws = Workspace::create().unwrap();
        ws.keep();
        let dir = ws.dir().to_path_buf();
        drop(ws);
        assert!(dir.exists());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
