//! # bwfft-ooc — out-of-core streaming FFTs
//!
//! The storage-backed execution tier: 1D transforms whose working set
//! exceeds RAM, streamed as padded blocks from file-backed stores
//! through an LLC-sized double buffer — the paper's soft-DMA machinery
//! (`bwfft-pipeline`) pointed one level deeper in the hierarchy, after
//! the Colfax EFFT construction (see PAPERS.md and DESIGN.md §12).
//!
//! The decomposition is the four-step split of `core::fft1d`
//! generalized to five read-one-store/write-another stages (transpose,
//! row DFT + twiddle, transpose, row DFT, transpose), each streamed
//! with `p_d` soft-DMA threads overlapping positioned storage I/O
//! against `p_c` compute threads. Stores pad their row strides by the
//! `bwfft-machine` conflict rule so power-of-two column walks don't
//! collapse the LLC to its associativity ([`store::padded_stride`]).
//!
//! Because a stage's source is never overwritten, storage faults are
//! absorbed by rerunning the stage: a bounded pipelined retry ladder,
//! then a single-threaded serial tier, then a typed error. Correctness
//! at sizes where no in-RAM reference exists comes from the sampled
//! spot-check + streamed-Parseval oracle ([`oracle::verify`]).
//!
//! ```no_run
//! use bwfft_ooc::{run_generated, OocConfig, OracleConfig};
//!
//! // A transform 4× larger than the working-memory budget, verified.
//! let cfg = OocConfig { budget_bytes: 1 << 18, ..OocConfig::default() };
//! let out = run_generated(1 << 16, 7, &cfg, &OracleConfig::default()).unwrap();
//! assert_eq!(out.oracle.bins_checked, 16);
//! ```

pub mod error;
pub mod exec;
pub mod journal;
pub mod oracle;
pub mod plan;
pub mod store;
pub mod workspace;

pub use error::{JournalError, OocError, ResumeError};
pub use exec::{execute, execute_resumable, four_step_in_ram, OocReport, STAGE_NAMES};
pub use journal::{Journal, JournalHeader, JournalState, Recovered, JOURNAL_FILE, JOURNAL_SCHEMA};
pub use oracle::{verify, OracleConfig, OracleReport};
pub use plan::{
    plan, CheckpointConfig, CrashMode, CrashPoint, OocConfig, OocFault, OocFaultKind, OocPlan,
    ResumeVerify,
};
pub use store::{padded_stride, OocStore};
pub use workspace::{gc_stale, Workspace, WORKSPACE_PREFIX};

use bwfft_num::signal::SplitMix64;
use bwfft_num::Complex64;
use bwfft_pipeline::exec::block_checksum;
use std::path::Path;

/// Everything a verified end-to-end run produced.
#[derive(Clone, Debug)]
pub struct OocOutcome {
    pub plan: OocPlan,
    pub report: OocReport,
    pub oracle: OracleReport,
}

/// Streams the reproducible pseudo-random signal `seed` into `store`
/// row by row — the same element sequence as
/// `bwfft_num::signal::random_complex(rows·cols, seed)`, without ever
/// materializing it whole.
pub fn fill_random(store: &OocStore, seed: u64) -> Result<(), OocError> {
    fill_random_fingerprinted(store, seed).map(|_| ())
}

/// [`fill_random`] that also returns the order-independent checksum of
/// the whole signal — the input fingerprint a checkpoint journal binds
/// in its header.
pub fn fill_random_fingerprinted(store: &OocStore, seed: u64) -> Result<u64, OocError> {
    let mut rng = SplitMix64::new(seed);
    let mut row = bwfft_num::alloc::try_vec_zeroed::<Complex64>(store.cols(), "ooc signal row")?;
    let mut fp = 0u64;
    for r in 0..store.rows() {
        for slot in row.iter_mut() {
            *slot = rng.next_complex();
        }
        store
            .write_rows(r, &row)
            .map_err(|e| OocError::io("signal fill", e))?;
        fp = fp.wrapping_add(block_checksum(&row));
    }
    Ok(fp)
}

/// Streams the store's payload (padding excluded) into the same
/// order-independent checksum [`fill_random_fingerprinted`] computed —
/// the resume-time check that the input is still the journaled one.
pub fn input_fingerprint(store: &OocStore) -> Result<u64, OocError> {
    let mut row = bwfft_num::alloc::try_vec_zeroed::<Complex64>(store.cols(), "ooc signal row")?;
    let mut fp = 0u64;
    for r in 0..store.rows() {
        store
            .read_rows(r, &mut row)
            .map_err(|e| OocError::io("fingerprint read", e))?;
        fp = fp.wrapping_add(block_checksum(&row));
    }
    Ok(fp)
}

/// Plans, materializes a seeded random input store, executes, and
/// verifies — the whole lifecycle in one call, inside a private
/// workspace that is removed on return (success *and* failure).
pub fn run_generated(
    n: usize,
    seed: u64,
    cfg: &OocConfig,
    oracle_cfg: &OracleConfig,
) -> Result<OocOutcome, OocError> {
    run_generated_in(n, seed, cfg, oracle_cfg, None)
}

/// [`run_generated`] with an explicit parent directory for the
/// workspace (tests point this at an observable temp root).
pub fn run_generated_in(
    n: usize,
    seed: u64,
    cfg: &OocConfig,
    oracle_cfg: &OracleConfig,
    parent: Option<&std::path::Path>,
) -> Result<OocOutcome, OocError> {
    let p = plan::plan(n, cfg)?;
    let ws = match parent {
        Some(dir) => Workspace::create_under(dir)?,
        None => Workspace::create()?,
    };
    let input = OocStore::create(&ws.path("input.bin"), p.n1, p.n2, p.stride_cols_n2)?;
    fill_random(&input, seed)?;
    let output = OocStore::create(&ws.path("output.bin"), p.n2, p.n1, p.stride_cols_n1)?;
    let report = exec::execute(&p, cfg, &ws, &input, &output)?;
    let oracle = oracle::verify(&input, &output, &p, oracle_cfg)?;
    Ok(OocOutcome {
        plan: p,
        report,
        oracle,
    })
}

/// How a checkpointed run uses its workspace directory.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointRun<'a> {
    /// The workspace directory — fixed, because a resumed process must
    /// land exactly where the crashed one worked.
    pub dir: &'a Path,
    /// Continue an existing journal instead of starting fresh.
    pub resume: bool,
    /// Keep the workspace even on success (debugging aid).
    pub keep: bool,
}

/// The crash-safe lifecycle: like [`run_generated`], but in a fixed
/// workspace with a durable `bwfft-ooc-journal/1` checkpoint journal.
///
/// Fresh runs (`resume: false`) refuse to clobber an existing journal
/// (typed [`JournalError::AlreadyExists`] — pass `resume: true` or
/// remove the workspace). Resumed runs replay the journal's clean
/// prefix, validate its header against the requested plan and the
/// input store's fingerprint, re-verify journaled block checksums per
/// [`plan::CheckpointConfig::resume_verify`], skip completed work, and
/// finish the transform through the usual retry ladder and oracle.
///
/// On *any* failure the workspace (scratch + journal) is kept so the
/// run can be resumed or examined — that is the whole point; callers
/// print the path. On success it is removed unless `run.keep`.
pub fn run_checkpointed(
    n: usize,
    seed: u64,
    cfg: &OocConfig,
    oracle_cfg: &OracleConfig,
    run: &CheckpointRun<'_>,
) -> Result<OocOutcome, OocError> {
    let mut ws = Workspace::at(run.dir)?;
    if run.keep {
        ws.keep();
    }
    let out = run_checkpointed_in(n, seed, cfg, oracle_cfg, run, &ws);
    if out.is_err() {
        // Keep-on-crash: a typed failure must preserve the evidence
        // and the resume frontier, not destroy them.
        ws.keep();
    }
    out
}

fn run_checkpointed_in(
    n: usize,
    seed: u64,
    cfg: &OocConfig,
    oracle_cfg: &OracleConfig,
    run: &CheckpointRun<'_>,
    ws: &Workspace,
) -> Result<OocOutcome, OocError> {
    let p = plan::plan(n, cfg)?;
    let jpath = ws.path(JOURNAL_FILE);
    let input_path = ws.path("input.bin");
    let output_path = ws.path("output.bin");
    if run.resume {
        if !jpath.exists() {
            return Err(ResumeError::JournalMissing { path: jpath }.into());
        }
        let rec = Journal::recover(&jpath).map_err(OocError::Journal)?;
        rec.header.matches(&p, cfg.budget_bytes, seed)?;
        if !input_path.exists() {
            return Err(ResumeError::ScratchMissing {
                store: "input.bin",
                path: input_path,
            }
            .into());
        }
        let input = OocStore::open(&input_path, p.n1, p.n2, p.stride_cols_n2)?;
        let fp = input_fingerprint(&input)?;
        if fp != rec.header.input_fp {
            return Err(ResumeError::InputFingerprint {
                journaled: rec.header.input_fp,
                computed: fp,
            }
            .into());
        }
        let stage4_credited =
            rec.state.stage_done[4].is_some() || !rec.state.blocks[4].is_empty();
        if stage4_credited && !output_path.exists() {
            return Err(ResumeError::ScratchMissing {
                store: "output.bin",
                path: output_path,
            }
            .into());
        }
        let output = OocStore::open_or_create(&output_path, p.n2, p.n1, p.stride_cols_n1)?;
        let journal = Journal::open_append(&jpath, rec.clean_bytes).map_err(OocError::Journal)?;
        let report = exec::execute_resumable(
            &p,
            cfg,
            ws,
            &input,
            &output,
            Some(&journal),
            Some(&rec.state),
        )?;
        let oracle = oracle::verify(&input, &output, &p, oracle_cfg)?;
        Ok(OocOutcome {
            plan: p,
            report,
            oracle,
        })
    } else {
        if jpath.exists() {
            return Err(OocError::Journal(JournalError::AlreadyExists { path: jpath }));
        }
        let input = OocStore::create(&input_path, p.n1, p.n2, p.stride_cols_n2)?;
        let fp = fill_random_fingerprinted(&input, seed)?;
        let header = JournalHeader::for_plan(&p, cfg.budget_bytes, seed, fp);
        let journal = Journal::create(&jpath, &header).map_err(OocError::Journal)?;
        let output = OocStore::create(&output_path, p.n2, p.n1, p.stride_cols_n1)?;
        let report =
            exec::execute_resumable(&p, cfg, ws, &input, &output, Some(&journal), None)?;
        let oracle = oracle::verify(&input, &output, &p, oracle_cfg)?;
        Ok(OocOutcome {
            plan: p,
            report,
            oracle,
        })
    }
}
