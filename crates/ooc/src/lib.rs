//! # bwfft-ooc — out-of-core streaming FFTs
//!
//! The storage-backed execution tier: 1D transforms whose working set
//! exceeds RAM, streamed as padded blocks from file-backed stores
//! through an LLC-sized double buffer — the paper's soft-DMA machinery
//! (`bwfft-pipeline`) pointed one level deeper in the hierarchy, after
//! the Colfax EFFT construction (see PAPERS.md and DESIGN.md §12).
//!
//! The decomposition is the four-step split of `core::fft1d`
//! generalized to five read-one-store/write-another stages (transpose,
//! row DFT + twiddle, transpose, row DFT, transpose), each streamed
//! with `p_d` soft-DMA threads overlapping positioned storage I/O
//! against `p_c` compute threads. Stores pad their row strides by the
//! `bwfft-machine` conflict rule so power-of-two column walks don't
//! collapse the LLC to its associativity ([`store::padded_stride`]).
//!
//! Because a stage's source is never overwritten, storage faults are
//! absorbed by rerunning the stage: a bounded pipelined retry ladder,
//! then a single-threaded serial tier, then a typed error. Correctness
//! at sizes where no in-RAM reference exists comes from the sampled
//! spot-check + streamed-Parseval oracle ([`oracle::verify`]).
//!
//! ```no_run
//! use bwfft_ooc::{run_generated, OocConfig, OracleConfig};
//!
//! // A transform 4× larger than the working-memory budget, verified.
//! let cfg = OocConfig { budget_bytes: 1 << 18, ..OocConfig::default() };
//! let out = run_generated(1 << 16, 7, &cfg, &OracleConfig::default()).unwrap();
//! assert_eq!(out.oracle.bins_checked, 16);
//! ```

pub mod error;
pub mod exec;
pub mod oracle;
pub mod plan;
pub mod store;
pub mod workspace;

pub use error::OocError;
pub use exec::{execute, four_step_in_ram, OocReport, STAGE_NAMES};
pub use oracle::{verify, OracleConfig, OracleReport};
pub use plan::{plan, OocConfig, OocFault, OocFaultKind, OocPlan};
pub use store::{padded_stride, OocStore};
pub use workspace::Workspace;

use bwfft_num::signal::SplitMix64;
use bwfft_num::Complex64;

/// Everything a verified end-to-end run produced.
#[derive(Clone, Debug)]
pub struct OocOutcome {
    pub plan: OocPlan,
    pub report: OocReport,
    pub oracle: OracleReport,
}

/// Streams the reproducible pseudo-random signal `seed` into `store`
/// row by row — the same element sequence as
/// `bwfft_num::signal::random_complex(rows·cols, seed)`, without ever
/// materializing it whole.
pub fn fill_random(store: &OocStore, seed: u64) -> Result<(), OocError> {
    let mut rng = SplitMix64::new(seed);
    let mut row = bwfft_num::alloc::try_vec_zeroed::<Complex64>(store.cols(), "ooc signal row")?;
    for r in 0..store.rows() {
        for slot in row.iter_mut() {
            *slot = rng.next_complex();
        }
        store
            .write_rows(r, &row)
            .map_err(|e| OocError::io("signal fill", e))?;
    }
    Ok(())
}

/// Plans, materializes a seeded random input store, executes, and
/// verifies — the whole lifecycle in one call, inside a private
/// workspace that is removed on return (success *and* failure).
pub fn run_generated(
    n: usize,
    seed: u64,
    cfg: &OocConfig,
    oracle_cfg: &OracleConfig,
) -> Result<OocOutcome, OocError> {
    run_generated_in(n, seed, cfg, oracle_cfg, None)
}

/// [`run_generated`] with an explicit parent directory for the
/// workspace (tests point this at an observable temp root).
pub fn run_generated_in(
    n: usize,
    seed: u64,
    cfg: &OocConfig,
    oracle_cfg: &OracleConfig,
    parent: Option<&std::path::Path>,
) -> Result<OocOutcome, OocError> {
    let p = plan::plan(n, cfg)?;
    let ws = match parent {
        Some(dir) => Workspace::create_under(dir)?,
        None => Workspace::create()?,
    };
    let input = OocStore::create(&ws.path("input.bin"), p.n1, p.n2, p.stride_cols_n2)?;
    fill_random(&input, seed)?;
    let output = OocStore::create(&ws.path("output.bin"), p.n2, p.n1, p.stride_cols_n1)?;
    let report = exec::execute(&p, cfg, &ws, &input, &output)?;
    let oracle = oracle::verify(&input, &output, &p, oracle_cfg)?;
    Ok(OocOutcome {
        plan: p,
        report,
        oracle,
    })
}
