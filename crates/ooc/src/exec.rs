//! The streaming out-of-core executor.
//!
//! A 1D transform of length `n = n1·n2` runs as five storage-to-storage
//! stages, each of which reads one store and writes another (so every
//! stage is idempotent and safely retryable):
//!
//! | stage | name             | src (rows×cols) | dst           | compute              |
//! |-------|------------------|-----------------|---------------|----------------------|
//! | 0     | `transpose-in`   | input `n1×n2`   | `t1` `n2×n1`  | none                 |
//! | 1     | `dft-n1-twiddle` | `t1` `n2×n1`    | `s1` `n2×n1`  | row DFT + `ω_N^{a₂k₁}` |
//! | 2     | `transpose-mid`  | `s1` `n2×n1`    | `t2` `n1×n2`  | none                 |
//! | 3     | `dft-n2`         | `t2` `n1×n2`    | `s2` `n1×n2`  | row DFT              |
//! | 4     | `transpose-out`  | `s2` `n1×n2`    | out `n2×n1`   | none                 |
//!
//! Reading the output store row-major yields `Y[k]` in natural order.
//!
//! Every stage streams whole-row blocks through the shared
//! [`DoubleBuffer`] with the Table II soft-DMA roles: `p_d` data
//! threads issue positioned reads/writes against the stores while
//! `p_c` compute threads run the batched Stockham kernels on the other
//! half. Storage failures (real or injected) are absorbed by a
//! per-stage recovery ladder — bounded pipelined retries with backoff,
//! then a single-threaded serial fallback — because a stage that
//! rereads its (never-overwritten) source is exactly repeatable.

use crate::error::{OocError, ResumeError};
use crate::journal::{Journal, JournalState};
use crate::plan::{
    CrashMode, CrashPoint, OocConfig, OocFault, OocFaultKind, OocPlan, ResumeVerify,
    BYTES_PER_HALF_ELEM,
};
use crate::store::{OocStore, ELEM_BYTES};
use bwfft_kernels::batch::BatchFft;
use bwfft_kernels::Direction;
use bwfft_num::alloc::{check_alloc_budget, try_vec_zeroed};
use bwfft_num::Complex64;
use bwfft_pipeline::buffer::{partition, DoubleBuffer};
use bwfft_pipeline::exec::{block_checksum, run_pipeline, PipelineCallbacks, PipelineConfig};
use bwfft_trace::MarkKind;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Stage names, in execution order (indices match [`OocFault::stage`]).
pub const STAGE_NAMES: [&str; 5] = [
    "transpose-in",
    "dft-n1-twiddle",
    "transpose-mid",
    "dft-n2",
    "transpose-out",
];

/// What one out-of-core run did.
#[derive(Clone, Debug, Default)]
pub struct OocReport {
    pub n: usize,
    pub n1: usize,
    pub n2: usize,
    pub half_elems: usize,
    /// Payload bytes read from storage across all stages and retries.
    pub bytes_read: u64,
    /// Payload bytes written to storage across all stages and retries.
    pub bytes_written: u64,
    /// Wall nanoseconds spent inside positioned storage I/O calls.
    pub io_ns: u64,
    /// End-to-end wall nanoseconds for all five stages.
    pub wall_ns: u64,
    /// Pipelined stage attempts that failed and were retried.
    pub retries: u32,
    /// Stages that degraded to the single-threaded serial tier.
    pub serial_fallbacks: u32,
    /// Injected faults that actually fired.
    pub faults_hit: u32,
    /// True when the run continued a checkpoint journal instead of
    /// starting from the input.
    pub resumed: bool,
    /// Journaled-complete blocks the resume skipped instead of
    /// recomputing (across all stages).
    pub skipped_blocks: u64,
    /// Journaled block checksums the resume re-verified against the
    /// scratch stores before trusting them.
    pub reverified_blocks: u64,
    /// Blocks re-executed in the journal-frontier (in-flight) stage —
    /// the rework bound: never more than one stage's blocks.
    pub rework_blocks: u64,
    /// Payload bytes this run moved when resumed (0 for fresh runs):
    /// the storage cost of finishing instead of restarting.
    pub resumed_bytes: u64,
}

impl OocReport {
    /// Achieved storage bandwidth over the whole run, bytes/ns ≡ GB/s.
    pub fn storage_gbs(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / self.wall_ns as f64
    }
}

/// The four-step twiddle `ω_N^{a₂·k₁}` (conjugated for inverse), with
/// the exponent reduced exactly so huge `n` loses no precision.
pub fn twiddle(a2: usize, k1: usize, n: usize, dir: Direction) -> Complex64 {
    let t = ((a2 as u128 * k1 as u128) % n as u128) as u64;
    let w = Complex64::root_of_unity(t as i64, n as u64);
    match dir {
        Direction::Forward => w,
        Direction::Inverse => w.conj(),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum StageKind {
    Transpose,
    Dft { twiddle: bool },
}

struct Stage<'a> {
    index: usize,
    name: &'static str,
    src: &'a OocStore,
    dst: &'a OocStore,
    kind: StageKind,
}

/// Counters and the first-error slot shared by the per-thread I/O
/// closures of one stage attempt (callbacks cannot return `Result`).
#[derive(Default)]
struct IoShared {
    err: Mutex<Option<String>>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    io_ns: AtomicU64,
    faults_hit: AtomicU32,
    /// Latched by a `CrashMode::Halt` crash point: the ladder must
    /// stop the run with a typed error instead of retrying it back to
    /// health (a retried "crash" would prove nothing).
    halt: AtomicBool,
}

impl IoShared {
    fn set_err(&self, msg: String) {
        let mut slot = self.err.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(msg);
        }
    }

    fn has_err(&self) -> bool {
        self.err
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    fn take_err(&self) -> Option<String> {
        self.err.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// One-shot fault arming shared across stages and retry attempts: the
/// injected fault fires at most once per run, so the first retry after
/// it observes healthy storage.
struct FaultOnce {
    fault: Option<OocFault>,
    consumed: AtomicBool,
}

impl FaultOnce {
    fn new(fault: Option<OocFault>) -> Self {
        FaultOnce {
            fault,
            consumed: AtomicBool::new(false),
        }
    }

    fn fires(&self, stage: usize, iter: usize, kind: OocFaultKind) -> bool {
        match self.fault {
            Some(f) if f.stage == stage && f.iter == iter && f.kind == kind => self
                .consumed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            _ => false,
        }
    }
}

/// Per-run checkpoint context: where completion records go and which
/// (if any) injected crash point is armed.
struct CkptCtx<'a> {
    journal: &'a Journal,
    crash: Option<CrashPoint>,
}

impl CkptCtx<'_> {
    /// Fires the armed crash point for `(stage, block)` — called only
    /// *after* that block's journal record is durable, the worst
    /// possible instant for the resume logic.
    fn maybe_crash(&self, stage: usize, block: usize, io: &IoShared) {
        let Some(cp) = self.crash else { return };
        if cp.stage != stage || cp.block != block {
            return;
        }
        match cp.mode {
            CrashMode::Abort => std::process::abort(),
            CrashMode::Halt => {
                io.halt.store(true, Ordering::Release);
                io.set_err(format!(
                    "injected crash point halted run at stage {stage} block {block}"
                ));
            }
        }
    }
}

/// Per-attempt completion tracker for one pipelined stage: each storer
/// folds the order-independent checksum of its share into the block's
/// slot; the last of `expected` arrivals owns the durable commit.
struct StageCommit<'a, 'b> {
    ctx: &'b CkptCtx<'a>,
    stage: usize,
    /// Wrapping partial-checksum accumulator per local block.
    sums: Vec<AtomicU64>,
    /// Arrival count per local block.
    arrivals: Vec<AtomicUsize>,
    /// Non-empty storer partitions — arrivals needed for a commit.
    expected: usize,
}

impl StageCommit<'_, '_> {
    /// One storer finished its share of local block `local` (global
    /// block index `actual`) with partial checksum `partial`.
    fn arrive(&self, local: usize, actual: usize, partial: u64, io: &IoShared) {
        self.sums[local].fetch_add(partial, Ordering::Relaxed);
        // AcqRel on the counter: the release half publishes this
        // thread's sum, the acquire half (in the last arriver) sees
        // every other storer's.
        let n = self.arrivals[local].fetch_add(1, Ordering::AcqRel) + 1;
        if n == self.expected {
            let sum = self.sums[local].load(Ordering::Acquire);
            if let Err(e) = self.ctx.journal.append_block(self.stage, actual, sum) {
                io.set_err(format!(
                    "journal append at stage {} block {actual}: {e}",
                    self.stage
                ));
                return;
            }
            self.ctx.maybe_crash(self.stage, actual, io);
        }
    }
}

/// Reads a span of `buf.len()` elements starting at `(row, col)` in
/// row-major logical order, splitting positioned reads at row ends.
fn read_span(
    store: &OocStore,
    mut row: usize,
    mut col: usize,
    buf: &mut [Complex64],
) -> std::io::Result<()> {
    let mut i = 0;
    while i < buf.len() {
        let take = (store.cols() - col).min(buf.len() - i);
        store.read_row_segment(row, col, &mut buf[i..i + take])?;
        i += take;
        row += 1;
        col = 0;
    }
    Ok(())
}

fn mark_recovery(cfg: &OocConfig, label: String) {
    if let Some(trace) = cfg.trace.as_ref() {
        trace.mark(MarkKind::Recovery, label, None);
    }
}

/// Data-thread load role: `(block, element offset, destination half)`.
type LoaderFn<'a> = Box<dyn FnMut(usize, usize, &mut [Complex64]) + Send + 'a>;
/// Data-thread store role: `(block, finished half)`.
type StorerFn<'a> = Box<dyn FnMut(usize, &[Complex64]) + Send + 'a>;
/// Compute role: `(block, element offset, half slice)`.
type ComputeFn<'a> = Box<dyn FnMut(usize, usize, &mut [Complex64]) + Send + 'a>;

/// Runs one stage through the double-buffered pipeline, streaming only
/// the blocks listed in `pending` (a resume skips journaled-complete
/// ones; a fresh run lists them all). I/O problems surface through
/// `io`; pipeline-level failures return directly. When `ckpt` is set,
/// every fully stored block commits a durable journal record.
#[allow(clippy::too_many_arguments)]
fn run_stage_pipelined(
    stage: &Stage<'_>,
    plan: &OocPlan,
    cfg: &OocConfig,
    buffer: &DoubleBuffer,
    io: &IoShared,
    fault: &FaultOnce,
    pending: &[usize],
    ckpt: Option<&CkptCtx<'_>>,
) -> Result<(), OocError> {
    let r = stage.src.rows();
    let c = stage.src.cols();
    let br = (buffer.half_elems() / c).min(r).max(1);
    let iters = pending.len();
    let b = br * c;
    let idx = stage.index;

    // Fresh commit slots per attempt: a retried stage re-accumulates
    // from zero (its storers rewrite every pending block).
    let storer_parts = match stage.kind {
        StageKind::Dft { .. } => partition(br, plan.p_d),
        StageKind::Transpose => partition(c, plan.p_d),
    };
    let expected = storer_parts.iter().filter(|p| !p.is_empty()).count();
    let commit = ckpt.map(|ctx| StageCommit {
        ctx,
        stage: idx,
        sums: (0..iters).map(|_| AtomicU64::new(0)).collect(),
        arrivals: (0..iters).map(|_| AtomicUsize::new(0)).collect(),
        expected,
    });
    let commit = commit.as_ref();

    let mut loaders: Vec<LoaderFn<'_>> = Vec::new();
    for _ in 0..plan.p_d {
        let src = stage.src;
        loaders.push(Box::new(move |blk, off, share| {
            if share.is_empty() {
                return;
            }
            let blk = pending[blk];
            if fault.fires(idx, blk, OocFaultKind::Read) {
                io.faults_hit.fetch_add(1, Ordering::Relaxed);
                io.set_err(format!("injected read fault at stage {idx} block {blk}"));
            }
            if io.has_err() {
                share.fill(Complex64::ZERO);
                return;
            }
            let row0 = blk * br + off / c;
            let col0 = off % c;
            let t0 = Instant::now();
            let res = read_span(src, row0, col0, share);
            io.io_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            match res {
                Ok(()) => {
                    io.bytes_read
                        .fetch_add((share.len() * ELEM_BYTES) as u64, Ordering::Relaxed);
                }
                Err(e) => {
                    io.set_err(format!("read at stage {idx} block {blk}: {e}"));
                    share.fill(Complex64::ZERO);
                }
            }
        }));
    }

    let mut storers: Vec<StorerFn<'_>> = Vec::new();
    match stage.kind {
        StageKind::Dft { .. } => {
            // Partition the block's rows across the data threads; each
            // storer writes its rows straight through (same shape).
            for range in storer_parts {
                let dst = stage.dst;
                storers.push(Box::new(move |local, half| {
                    if range.is_empty() {
                        return;
                    }
                    let blk = pending[local];
                    if fault.fires(idx, blk, OocFaultKind::Write) {
                        io.faults_hit.fetch_add(1, Ordering::Relaxed);
                        io.set_err(format!("injected write fault at stage {idx} block {blk}"));
                    }
                    if io.has_err() {
                        return;
                    }
                    let buf = &half[range.start * c..range.end * c];
                    let t0 = Instant::now();
                    let res = dst.write_rows(blk * br + range.start, buf);
                    io.io_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    match res {
                        Ok(()) => {
                            io.bytes_written
                                .fetch_add((buf.len() * ELEM_BYTES) as u64, Ordering::Relaxed);
                            if let Some(cm) = commit {
                                cm.arrive(local, blk, block_checksum(buf), io);
                            }
                        }
                        Err(e) => io.set_err(format!("write at stage {idx} block {blk}: {e}")),
                    }
                }));
            }
        }
        StageKind::Transpose => {
            // Partition the destination rows (source columns): storer t
            // gathers its columns out of the block and writes each as a
            // contiguous `br`-element run of the destination row.
            for range in storer_parts {
                let dst = stage.dst;
                let mut scratch = vec![Complex64::ZERO; br];
                storers.push(Box::new(move |local, half| {
                    if range.is_empty() {
                        return;
                    }
                    let blk = pending[local];
                    if fault.fires(idx, blk, OocFaultKind::Write) {
                        io.faults_hit.fetch_add(1, Ordering::Relaxed);
                        io.set_err(format!("injected write fault at stage {idx} block {blk}"));
                    }
                    if io.has_err() {
                        return;
                    }
                    let mut partial = 0u64;
                    for col in range.clone() {
                        for (j, slot) in scratch.iter_mut().enumerate() {
                            *slot = half[col + j * c];
                        }
                        let t0 = Instant::now();
                        let res = dst.write_row_segment(col, blk * br, &scratch);
                        io.io_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        match res {
                            Ok(()) => {
                                io.bytes_written.fetch_add(
                                    (scratch.len() * ELEM_BYTES) as u64,
                                    Ordering::Relaxed,
                                );
                                partial = partial.wrapping_add(block_checksum(&scratch));
                            }
                            Err(e) => {
                                io.set_err(format!("write at stage {idx} block {blk}: {e}"));
                                return;
                            }
                        }
                    }
                    if let Some(cm) = commit {
                        cm.arrive(local, blk, partial, io);
                    }
                }));
            }
        }
    }

    let mut computes: Vec<ComputeFn<'_>> = Vec::new();
    for _ in 0..plan.p_c {
        match stage.kind {
            StageKind::Transpose => computes.push(Box::new(|_, _, _| {})),
            StageKind::Dft { twiddle: tw } => {
                let mut kernel = BatchFft::new(c, 1, plan.dir);
                let n = plan.n;
                let dir = plan.dir;
                computes.push(Box::new(move |blk, off, share| {
                    if share.is_empty() || io.has_err() {
                        return;
                    }
                    kernel.run(share);
                    if tw {
                        let row0 = pending[blk] * br + off / c;
                        for (j, row) in share.chunks_mut(c).enumerate() {
                            let a2 = row0 + j;
                            for (k1, v) in row.iter_mut().enumerate() {
                                *v *= twiddle(a2, k1, n, dir);
                            }
                        }
                    }
                }));
            }
        }
    }

    let pcfg = PipelineConfig {
        iters,
        load_unit: c.min(b),
        compute_unit: c.min(b),
        stage: stage.index,
        trace: cfg.trace.clone(),
        integrity: cfg.integrity,
        ..PipelineConfig::default()
    };
    run_pipeline(
        buffer,
        &pcfg,
        PipelineCallbacks {
            loaders,
            storers,
            computes,
        },
    )
    .map_err(|error| OocError::Pipeline {
        stage: stage.name,
        error,
    })?;
    Ok(())
}

/// The degraded tier: one thread, one block in flight, plain loops.
/// Identical arithmetic to the pipelined path (same kernels, same
/// twiddles), so degrading never changes the answer.
fn run_stage_serial(
    stage: &Stage<'_>,
    plan: &OocPlan,
    half_elems: usize,
    io: &IoShared,
    fault: &FaultOnce,
    pending: &[usize],
    ckpt: Option<&CkptCtx<'_>>,
) -> Result<(), OocError> {
    let r = stage.src.rows();
    let c = stage.src.cols();
    let br = (half_elems / c).min(r).max(1);
    let idx = stage.index;
    let mut block = try_vec_zeroed::<Complex64>(br * c, "ooc serial block")?;
    let mut scratch = try_vec_zeroed::<Complex64>(br, "ooc serial gather")?;
    let mut kernel = match stage.kind {
        StageKind::Dft { .. } => Some(BatchFft::new(c, 1, plan.dir)),
        StageKind::Transpose => None,
    };
    for &blk in pending {
        let row0 = blk * br;
        if fault.fires(idx, blk, OocFaultKind::Read) {
            io.faults_hit.fetch_add(1, Ordering::Relaxed);
            return Err(OocError::Io {
                context: stage.name,
                message: format!("injected read fault at block {blk} (serial tier)"),
            });
        }
        let t0 = Instant::now();
        stage
            .src
            .read_rows(row0, &mut block)
            .map_err(|e| OocError::io(stage.name, e))?;
        io.io_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        io.bytes_read
            .fetch_add((block.len() * ELEM_BYTES) as u64, Ordering::Relaxed);
        if let StageKind::Dft { twiddle: tw } = stage.kind {
            if let Some(k) = kernel.as_mut() {
                k.run(&mut block);
            }
            if tw {
                for (j, row) in block.chunks_mut(c).enumerate() {
                    let a2 = row0 + j;
                    for (k1, v) in row.iter_mut().enumerate() {
                        *v *= twiddle(a2, k1, plan.n, plan.dir);
                    }
                }
            }
        }
        if fault.fires(idx, blk, OocFaultKind::Write) {
            io.faults_hit.fetch_add(1, Ordering::Relaxed);
            return Err(OocError::Io {
                context: stage.name,
                message: format!("injected write fault at block {blk} (serial tier)"),
            });
        }
        let t0 = Instant::now();
        match stage.kind {
            StageKind::Dft { .. } => {
                stage
                    .dst
                    .write_rows(row0, &block)
                    .map_err(|e| OocError::io(stage.name, e))?;
            }
            StageKind::Transpose => {
                for col in 0..c {
                    for (j, slot) in scratch.iter_mut().enumerate() {
                        *slot = block[col + j * c];
                    }
                    stage
                        .dst
                        .write_row_segment(col, row0, &scratch)
                        .map_err(|e| OocError::io(stage.name, e))?;
                }
            }
        }
        io.io_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        io.bytes_written
            .fetch_add((block.len() * ELEM_BYTES) as u64, Ordering::Relaxed);
        if let Some(ctx) = ckpt {
            // The serial tier writes the whole block itself, so the
            // order-independent checksum of the block buffer *is* the
            // checksum of the bytes on disk (transposed or not — the
            // multiset of elements is identical).
            ctx.journal
                .append_block(idx, blk, block_checksum(&block))
                .map_err(OocError::Journal)?;
            if let Some(cp) = ctx.crash {
                if cp.stage == idx && cp.block == blk {
                    match cp.mode {
                        CrashMode::Abort => std::process::abort(),
                        CrashMode::Halt => {
                            return Err(OocError::CrashPoint {
                                stage: stage.name,
                                block: blk,
                            })
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs one stage under the recovery ladder: pipelined attempts with
/// backoff, then the serial tier, then a typed exhaustion error.
#[allow(clippy::too_many_arguments)]
fn run_stage_recovered(
    stage: &Stage<'_>,
    plan: &OocPlan,
    cfg: &OocConfig,
    buffer: &DoubleBuffer,
    io: &IoShared,
    fault: &FaultOnce,
    pending: &[usize],
    ckpt: Option<&CkptCtx<'_>>,
    retries: &mut u32,
    serial_fallbacks: &mut u32,
) -> Result<(), OocError> {
    let attempts = cfg.retry.max_attempts.max(1);
    let mut last = String::new();
    let mut backoff = cfg.retry.backoff_base;
    for attempt in 0..attempts {
        // A fresh attempt starts with a clean error slot; the stage
        // rewrites its whole (pending) destination, so reruns are
        // idempotent.
        let _ = io.take_err();
        let outcome = run_stage_pipelined(stage, plan, cfg, buffer, io, fault, pending, ckpt);
        // An injected crash point is not a storage fault: retrying it
        // away would defeat the drill. Surface it typed, immediately.
        if io.halt.load(Ordering::Acquire) {
            return Err(OocError::CrashPoint {
                stage: stage.name,
                block: cfg.checkpoint.crash.map_or(0, |cp| cp.block),
            });
        }
        match outcome {
            Ok(()) => match io.take_err() {
                None => return Ok(()),
                Some(msg) => last = msg,
            },
            Err(e) => last = e.to_string(),
        }
        *retries += 1;
        mark_recovery(
            cfg,
            format!(
                "ooc {} attempt {} failed: {last}; retrying",
                stage.name,
                attempt + 1
            ),
        );
        if attempt + 1 < attempts && !backoff.is_zero() {
            std::thread::sleep(backoff.min(cfg.retry.backoff_cap));
            backoff = backoff
                .saturating_mul(cfg.retry.backoff_factor.max(1))
                .min(cfg.retry.backoff_cap);
        }
    }
    *serial_fallbacks += 1;
    mark_recovery(
        cfg,
        format!("ooc {} degraded to serial tier", stage.name),
    );
    let _ = io.take_err();
    run_stage_serial(stage, plan, buffer.half_elems(), io, fault, pending, ckpt).map_err(|e| {
        match e {
            // Typed crash/journal refusals are verdicts in their own
            // right, not one more storage failure to roll up.
            OocError::CrashPoint { .. } | OocError::Journal(_) => e,
            e => OocError::StageExhausted {
                stage: stage.name,
                attempts: attempts + 1,
                last: if last.is_empty() {
                    e.to_string()
                } else {
                    format!("{e} (after pipelined: {last})")
                },
            },
        }
    })
}

/// Executes the planned transform: `input` is an `n1 × n2` store of the
/// signal, `output` an `n2 × n1` store that receives the spectrum in
/// natural row-major order. Scratch stores live in `ws` (removed when
/// the workspace drops); the input store is never written, so the
/// oracle can re-read it afterwards.
pub fn execute(
    plan: &OocPlan,
    cfg: &OocConfig,
    ws: &crate::workspace::Workspace,
    input: &OocStore,
    output: &OocStore,
) -> Result<OocReport, OocError> {
    execute_resumable(plan, cfg, ws, input, output, None, None)
}

/// Order-independent checksum of the destination region a stage block
/// covers — the resume re-verify read-back. For a DFT stage the block
/// is `br` whole destination rows; for a transpose it is the
/// `br`-column band `[blk·br, blk·br + br)` of every destination row.
/// Either way the element multiset equals what the storers checksummed
/// when the block was journaled.
fn stage_block_read_checksum(
    stage: &Stage<'_>,
    br: usize,
    blk: usize,
    buf: &mut Vec<Complex64>,
) -> Result<u64, OocError> {
    let c = stage.src.cols();
    match stage.kind {
        StageKind::Dft { .. } => {
            buf.clear();
            buf.resize(br * c, Complex64::ZERO);
            stage
                .dst
                .read_rows(blk * br, buf)
                .map_err(|e| OocError::io("resume re-verify read", e))?;
            Ok(block_checksum(buf))
        }
        StageKind::Transpose => {
            buf.clear();
            buf.resize(br, Complex64::ZERO);
            let mut sum = 0u64;
            for row in 0..c {
                stage
                    .dst
                    .read_row_segment(row, blk * br, buf)
                    .map_err(|e| OocError::io("resume re-verify read", e))?;
                sum = sum.wrapping_add(block_checksum(buf));
            }
            Ok(sum)
        }
    }
}

/// Evenly spaced sample of the journaled block indices of one stage,
/// per the configured [`ResumeVerify`] policy.
fn verify_sample(blocks: &[usize], policy: ResumeVerify) -> Vec<usize> {
    match policy {
        ResumeVerify::All => blocks.to_vec(),
        ResumeVerify::Sample(k) => {
            let k = k.min(blocks.len());
            if k == 0 {
                return Vec::new();
            }
            let step = blocks.len().div_ceil(k).max(1);
            blocks.iter().copied().step_by(step).take(k).collect()
        }
    }
}

/// [`execute`] with crash-safety: when `journal` is set every completed
/// block commits a durable record, and when `resume` carries a
/// recovered [`JournalState`] the run validates it against the plan
/// geometry, re-verifies a sampled subset of journaled block checksums
/// against the scratch stores, skips everything the journal proves
/// done, and re-executes only the frontier stage's unjournaled blocks
/// (plus all later, never-started stages) — bounded rework by
/// construction.
#[allow(clippy::too_many_arguments)]
pub fn execute_resumable(
    plan: &OocPlan,
    cfg: &OocConfig,
    ws: &crate::workspace::Workspace,
    input: &OocStore,
    output: &OocStore,
    journal: Option<&Journal>,
    resume: Option<&JournalState>,
) -> Result<OocReport, OocError> {
    if input.rows() != plan.n1 || input.cols() != plan.n2 {
        return Err(OocError::Io {
            context: "input store shape",
            message: format!(
                "expected {}x{}, got {}x{}",
                plan.n1,
                plan.n2,
                input.rows(),
                input.cols()
            ),
        });
    }
    if output.rows() != plan.n2 || output.cols() != plan.n1 {
        return Err(OocError::Io {
            context: "output store shape",
            message: format!(
                "expected {}x{}, got {}x{}",
                plan.n2,
                plan.n1,
                output.rows(),
                output.cols()
            ),
        });
    }
    check_alloc_budget(
        "ooc working buffer",
        plan.half_elems * BYTES_PER_HALF_ELEM,
        Some(cfg.budget_bytes),
    )?;
    let buffer = DoubleBuffer::try_new(plan.half_elems)?;

    // On resume, scratch the journal credits with completed work must
    // still exist — `open_or_create` would silently hand back zeroed
    // stores and the (sampled!) re-verify might not catch it.
    let scratch_shapes: [(&'static str, usize, usize, usize); 4] = [
        ("t1.bin", plan.n2, plan.n1, plan.stride_cols_n1),
        ("s1.bin", plan.n2, plan.n1, plan.stride_cols_n1),
        ("t2.bin", plan.n1, plan.n2, plan.stride_cols_n2),
        ("s2.bin", plan.n1, plan.n2, plan.stride_cols_n2),
    ];
    if let Some(st) = resume {
        for (k, (name, ..)) in scratch_shapes.iter().enumerate() {
            let credited = st.stage_done[k].is_some() || !st.blocks[k].is_empty();
            if credited && !ws.path(name).exists() {
                return Err(ResumeError::ScratchMissing {
                    store: name,
                    path: ws.path(name),
                }
                .into());
            }
        }
    }
    let mut scratch = Vec::with_capacity(4);
    for (name, rows, cols, stride) in scratch_shapes {
        let store = if resume.is_some() {
            OocStore::open_or_create(&ws.path(name), rows, cols, stride)?
        } else {
            OocStore::create(&ws.path(name), rows, cols, stride)?
        };
        scratch.push(store);
    }
    let (t1, s1, t2, s2) = (&scratch[0], &scratch[1], &scratch[2], &scratch[3]);

    let stages = [
        Stage {
            index: 0,
            name: STAGE_NAMES[0],
            src: input,
            dst: t1,
            kind: StageKind::Transpose,
        },
        Stage {
            index: 1,
            name: STAGE_NAMES[1],
            src: t1,
            dst: s1,
            kind: StageKind::Dft { twiddle: true },
        },
        Stage {
            index: 2,
            name: STAGE_NAMES[2],
            src: s1,
            dst: t2,
            kind: StageKind::Transpose,
        },
        Stage {
            index: 3,
            name: STAGE_NAMES[3],
            src: t2,
            dst: s2,
            kind: StageKind::Dft { twiddle: false },
        },
        Stage {
            index: 4,
            name: STAGE_NAMES[4],
            src: s2,
            dst: output,
            kind: StageKind::Transpose,
        },
    ];

    // Per-stage block geometry: must match what the journaled run
    // used, which the header guarantees (same n1/n2/half_elems).
    let geom: Vec<(usize, usize)> = stages
        .iter()
        .map(|s| {
            let r = s.src.rows();
            let c = s.src.cols();
            let br = (plan.half_elems / c).min(r).max(1);
            (br, r / br)
        })
        .collect();

    // Validate the recovered state against the plan geometry before
    // trusting a single record.
    let mut reverified_blocks = 0u64;
    if let Some(st) = resume {
        for (k, stage) in stages.iter().enumerate() {
            let (br, iters) = geom[k];
            if let Some(m) = st.stage_done[k] {
                if m != iters {
                    return Err(ResumeError::PlanMismatch {
                        field: "stage_blocks",
                        journaled: m as u64,
                        requested: iters as u64,
                    }
                    .into());
                }
            }
            if let Some((&max_blk, _)) = st.blocks[k].iter().next_back() {
                if max_blk >= iters {
                    return Err(ResumeError::BlockOutOfRange {
                        stage: stage.name,
                        block: max_blk,
                        blocks: iters,
                    }
                    .into());
                }
            }
            // Re-verify journaled checksums against the bytes actually
            // in the store — a crash can corrupt what it already
            // "completed", and skipping a corrupt block would launder
            // the corruption into the final spectrum.
            let journaled: Vec<usize> = st.blocks[k].keys().copied().collect();
            let mut buf = Vec::new();
            for blk in verify_sample(&journaled, cfg.checkpoint.resume_verify) {
                let computed = stage_block_read_checksum(stage, br, blk, &mut buf)?;
                let committed = st.blocks[k][&blk];
                if computed != committed {
                    return Err(ResumeError::ScratchCorrupt {
                        stage: stage.name,
                        block: blk,
                        journaled: committed,
                        computed,
                    }
                    .into());
                }
                reverified_blocks += 1;
            }
        }
        if let Some(trace) = cfg.trace.as_ref() {
            let frontier = st.frontier();
            trace.mark(
                MarkKind::Resume,
                format!(
                    "ooc resume: frontier {}, {} journaled blocks, {} re-verified",
                    STAGE_NAMES.get(frontier).copied().unwrap_or("complete"),
                    st.journaled_blocks(),
                    reverified_blocks
                ),
                None,
            );
        }
    }

    let ckpt_ctx = journal.map(|j| CkptCtx {
        journal: j,
        crash: cfg.checkpoint.crash,
    });
    let ckpt = ckpt_ctx.as_ref();
    let frontier = resume.map(JournalState::frontier);

    let io = IoShared::default();
    let fault = FaultOnce::new(cfg.fault);
    let mut retries = 0u32;
    let mut serial_fallbacks = 0u32;
    let mut skipped_blocks = 0u64;
    let mut rework_blocks = 0u64;
    let wall0 = Instant::now();
    for stage in &stages {
        let k = stage.index;
        let (_, iters) = geom[k];
        if resume.is_some_and(|st| st.stage_done[k].is_some()) {
            skipped_blocks += iters as u64;
            continue;
        }
        let pending: Vec<usize> = match resume {
            Some(st) if !st.blocks[k].is_empty() => (0..iters)
                .filter(|b| !st.blocks[k].contains_key(b))
                .collect(),
            _ => (0..iters).collect(),
        };
        skipped_blocks += (iters - pending.len()) as u64;
        if frontier == Some(k) {
            rework_blocks += pending.len() as u64;
        }
        if !pending.is_empty() {
            // Per-stage metrics are deltas of the run-wide accumulators
            // captured around each stage, so the hot I/O loops stay
            // untouched.
            let before = cfg.metrics.as_ref().map(|_| {
                (
                    io.bytes_read.load(Ordering::Relaxed),
                    io.bytes_written.load(Ordering::Relaxed),
                    retries,
                    serial_fallbacks,
                )
            });
            let stage_t0 = cfg.metrics.as_ref().map(|_| Instant::now());
            let verdict = run_stage_recovered(
                stage,
                plan,
                cfg,
                &buffer,
                &io,
                &fault,
                &pending,
                ckpt,
                &mut retries,
                &mut serial_fallbacks,
            );
            if let (Some(reg), Some((r0, w0, rt0, sf0))) = (cfg.metrics.as_ref(), before) {
                reg.add(
                    &format!("ooc.{}.bytes_read", stage.name),
                    io.bytes_read.load(Ordering::Relaxed) - r0,
                );
                reg.add(
                    &format!("ooc.{}.bytes_written", stage.name),
                    io.bytes_written.load(Ordering::Relaxed) - w0,
                );
                reg.add(
                    &format!("ooc.{}.retries", stage.name),
                    u64::from(retries - rt0),
                );
                reg.add(
                    &format!("ooc.{}.serial_fallbacks", stage.name),
                    u64::from(serial_fallbacks - sf0),
                );
                if let Some(t0) = stage_t0 {
                    reg.observe(
                        &format!("ooc.{}.stage_ns", stage.name),
                        t0.elapsed().as_nanos() as u64,
                    );
                }
            }
            verdict?;
        }
        if let Some(j) = journal {
            // The stage record commits only after every block record:
            // a resume that sees it may skip the stage wholesale.
            j.append_stage(k, iters).map_err(OocError::Journal)?;
        }
    }
    let bytes_read = io.bytes_read.load(Ordering::Relaxed);
    let bytes_written = io.bytes_written.load(Ordering::Relaxed);
    let resumed = resume.is_some();
    if let (Some(reg), true) = (cfg.metrics.as_ref(), resumed) {
        reg.add("ooc.resume.runs", 1);
        reg.add("ooc.resume.skipped_blocks", skipped_blocks);
        reg.add("ooc.resume.reverified_blocks", reverified_blocks);
        reg.add("ooc.resume.rework_blocks", rework_blocks);
        reg.add("ooc.resume.resumed_bytes", bytes_read + bytes_written);
    }
    Ok(OocReport {
        n: plan.n,
        n1: plan.n1,
        n2: plan.n2,
        half_elems: plan.half_elems,
        bytes_read,
        bytes_written,
        io_ns: io.io_ns.load(Ordering::Relaxed),
        wall_ns: wall0.elapsed().as_nanos() as u64,
        retries,
        serial_fallbacks,
        faults_hit: io.faults_hit.load(Ordering::Relaxed),
        resumed,
        skipped_blocks,
        reverified_blocks,
        rework_blocks,
        resumed_bytes: if resumed { bytes_read + bytes_written } else { 0 },
    })
}

/// The same five-stage arithmetic run serially in RAM — the equality
/// oracle for tests: streaming, blocking, and retries must never
/// change a single bit relative to this.
pub fn four_step_in_ram(plan: &OocPlan, x: &[Complex64]) -> Vec<Complex64> {
    let (n1, n2) = (plan.n1, plan.n2);
    debug_assert_eq!(x.len(), plan.n);
    // transpose-in: n1×n2 → n2×n1
    let mut a = vec![Complex64::ZERO; plan.n];
    for a1 in 0..n1 {
        for a2 in 0..n2 {
            a[a2 * n1 + a1] = x[a1 * n2 + a2];
        }
    }
    // dft-n1-twiddle over rows of length n1
    let mut k = BatchFft::new(n1, 1, plan.dir);
    k.run(&mut a);
    for a2 in 0..n2 {
        for k1 in 0..n1 {
            a[a2 * n1 + k1] *= twiddle(a2, k1, plan.n, plan.dir);
        }
    }
    // transpose-mid: n2×n1 → n1×n2
    let mut b = vec![Complex64::ZERO; plan.n];
    for a2 in 0..n2 {
        for k1 in 0..n1 {
            b[k1 * n2 + a2] = a[a2 * n1 + k1];
        }
    }
    // dft-n2 over rows of length n2
    let mut k = BatchFft::new(n2, 1, plan.dir);
    k.run(&mut b);
    // transpose-out: n1×n2 → n2×n1, read row-major ≡ natural order
    let mut y = vec![Complex64::ZERO; plan.n];
    for k1 in 0..n1 {
        for k2 in 0..n2 {
            y[k2 * n1 + k1] = b[k1 * n2 + k2];
        }
    }
    y
}
