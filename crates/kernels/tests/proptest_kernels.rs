//! Property-based tests of the numeric kernels: agreement with the
//! naive DFT at arbitrary power-of-two sizes and strides, layout
//! round-trips, and the algebraic identities transforms must satisfy.

use bwfft_kernels::batch::BatchFft;
use bwfft_kernels::layout::{from_block_format, to_block_format};
use bwfft_kernels::radix2::fft_radix2_inplace;
use bwfft_kernels::radix4::{stockham_radix4_strided, Radix4Twiddles};
use bwfft_kernels::reference::dft_naive;
use bwfft_kernels::stockham::stockham_strided;
use bwfft_kernels::transpose::{rotate_blocked, transpose_blocked};
use bwfft_kernels::twiddle::StockhamTwiddles;
use bwfft_kernels::{Direction, Fft1d};
use bwfft_num::compare::rel_l2_error;
use bwfft_num::signal::random_complex;
use bwfft_num::Complex64;
use proptest::prelude::*;

fn pow2(lo: u32, hi: u32) -> impl Strategy<Value = usize> {
    (lo..=hi).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stockham_matches_naive(n in pow2(0, 10), seed in 0u64..500) {
        let x = random_complex(n, seed);
        let mut got = x.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        let tw = StockhamTwiddles::new(n, Direction::Forward);
        stockham_strided(&mut got, &mut scratch, n, 1, &tw);
        prop_assert!(rel_l2_error(&got, &dft_naive(&x, Direction::Forward)) < 1e-11);
    }

    #[test]
    fn three_kernels_agree(n in pow2(1, 11), seed in 0u64..500) {
        let x = random_complex(n, seed);
        let mut a = x.clone();
        fft_radix2_inplace(&mut a, Direction::Forward);
        let mut b = x.clone();
        let mut s2 = vec![Complex64::ZERO; n];
        stockham_strided(&mut b, &mut s2, n, 1, &StockhamTwiddles::new(n, Direction::Forward));
        let mut c = x.clone();
        let mut s4 = vec![Complex64::ZERO; n];
        stockham_radix4_strided(&mut c, &mut s4, n, 1, &Radix4Twiddles::new(n, Direction::Forward));
        prop_assert!(rel_l2_error(&b, &a) < 1e-11);
        prop_assert!(rel_l2_error(&c, &a) < 1e-11);
    }

    #[test]
    fn strided_kernels_factor_through_batches(
        n in pow2(1, 6),
        s in 1usize..6,
        seed in 0u64..500,
    ) {
        // (DFT_n ⊗ I_s) column j == DFT_n of the stride-s subsequence.
        let x = random_complex(n * s, seed);
        let mut got = x.clone();
        let mut scratch = vec![Complex64::ZERO; n * s];
        stockham_strided(&mut got, &mut scratch, n, s, &StockhamTwiddles::new(n, Direction::Forward));
        for j in 0..s {
            let sub: Vec<Complex64> = (0..n).map(|i| x[i * s + j]).collect();
            let expect = dft_naive(&sub, Direction::Forward);
            let col: Vec<Complex64> = (0..n).map(|i| got[i * s + j]).collect();
            prop_assert!(rel_l2_error(&col, &expect) < 1e-11, "column {j}");
        }
    }

    #[test]
    fn batch_is_elementwise_independent(
        c in 1usize..6,
        m in pow2(1, 6),
        seed in 0u64..500,
    ) {
        // Transforming pencils jointly equals transforming them alone.
        let x = random_complex(c * m, seed);
        let mut joint = x.clone();
        BatchFft::new(m, 1, Direction::Forward).run(&mut joint);
        for p in 0..c {
            let mut alone = x[p * m..(p + 1) * m].to_vec();
            Fft1d::new(m, Direction::Forward).run(&mut alone);
            prop_assert!(rel_l2_error(&joint[p * m..(p + 1) * m], &alone) < 1e-12);
        }
    }

    #[test]
    fn layout_roundtrip_is_lossless(blocks in 1usize..32, seed in 0u64..500) {
        let n = blocks * 4;
        let x = random_complex(n, seed);
        let mut blocked = vec![0.0f64; 2 * n];
        to_block_format(&x, &mut blocked);
        let mut back = vec![Complex64::ZERO; n];
        from_block_format(&blocked, &mut back);
        prop_assert_eq!(back, x);
    }

    #[test]
    fn transpose_twice_is_identity(
        r in 1usize..8,
        c in 1usize..8,
        blk in prop_oneof![Just(1usize), Just(2), Just(4)],
        seed in 0u64..500,
    ) {
        let x = random_complex(r * c * blk, seed);
        let mut t = vec![Complex64::ZERO; x.len()];
        let mut back = vec![Complex64::ZERO; x.len()];
        transpose_blocked(&x, &mut t, r, c, blk);
        transpose_blocked(&t, &mut back, c, r, blk);
        prop_assert_eq!(back, x);
    }

    #[test]
    fn rotate_thrice_is_identity(
        k in 1usize..5,
        n in 1usize..5,
        m in 1usize..5,
        blk in prop_oneof![Just(1usize), Just(2), Just(4)],
        seed in 0u64..500,
    ) {
        let x = random_complex(k * n * m * blk, seed);
        let mut t1 = vec![Complex64::ZERO; x.len()];
        let mut t2 = vec![Complex64::ZERO; x.len()];
        let mut t3 = vec![Complex64::ZERO; x.len()];
        rotate_blocked(&x, &mut t1, k, n, m, blk);
        rotate_blocked(&t1, &mut t2, m, k, n, blk);
        rotate_blocked(&t2, &mut t3, n, m, k, blk);
        prop_assert_eq!(t3, x);
    }

    #[test]
    fn dft_is_an_isometry_up_to_sqrt_n(n in pow2(1, 10), seed in 0u64..500) {
        let x = random_complex(n, seed);
        let mut y = x.clone();
        Fft1d::new(n, Direction::Forward).run(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        let rel = ((ey / ex) - n as f64).abs() / (n as f64);
        prop_assert!(rel < 1e-11);
    }

    #[test]
    fn time_reversal_conjugation_identity(n in pow2(2, 8), seed in 0u64..500) {
        // DFT(conj(x))[k] = conj(DFT(x)[(n−k) mod n]).
        let x = random_complex(n, seed);
        let conj_x: Vec<Complex64> = x.iter().map(|c| c.conj()).collect();
        let mut fx = x.clone();
        Fft1d::new(n, Direction::Forward).run(&mut fx);
        let mut fc = conj_x;
        Fft1d::new(n, Direction::Forward).run(&mut fc);
        for k in 0..n {
            let expect = fx[(n - k) % n].conj();
            prop_assert!((fc[k] - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        }
    }
}
