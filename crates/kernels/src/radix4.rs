//! Radix-4 Stockham FFT.
//!
//! Halves the number of ping-pong passes of the radix-2 kernel and
//! trims twiddle multiplies — the compute task runs on cached data, so
//! pass count translates directly into L2/L3 traffic per block. Odd
//! powers of two take one radix-2 stage first, then radix-4 all the
//! way down. Like the radix-2 kernel it computes the strided form
//! `DFT_n ⊗ I_s` natively.

use crate::stockham::butterfly_row_scalar;
use crate::Direction;
use bwfft_num::Complex64;

/// Per-stage twiddles for the radix-4 kernel: at stage length `len`,
/// the table holds `(ω^p, ω^{2p}, ω^{3p})` for `p < len/4`.
#[derive(Clone, Debug)]
pub struct Radix4Twiddles {
    pub n: usize,
    pub dir: Direction,
    /// Radix-4 stage tables, outermost first.
    stages4: Vec<Vec<[Complex64; 3]>>,
    /// Optional leading radix-2 table (`ω_n^p`, `p < n/2`) when
    /// `log2 n` is odd.
    lead2: Option<Vec<Complex64>>,
}

impl Radix4Twiddles {
    pub fn new(n: usize, dir: Direction) -> Self {
        assert!(bwfft_num::is_pow2(n), "radix-4 kernel requires power-of-two size");
        let conj = |w: Complex64| match dir {
            Direction::Forward => w,
            Direction::Inverse => w.conj(),
        };
        let mut len = n;
        let mut lead2 = None;
        if bwfft_num::log2_exact(n) % 2 == 1 && n >= 2 {
            let mut tbl = Vec::with_capacity(len / 2);
            for p in 0..len / 2 {
                tbl.push(conj(Complex64::root_of_unity(p as i64, len as u64)));
            }
            lead2 = Some(tbl);
            len /= 2;
        }
        let mut stages4 = Vec::new();
        while len >= 4 {
            let quarter = len / 4;
            let mut tbl = Vec::with_capacity(quarter);
            for p in 0..quarter {
                tbl.push([
                    conj(Complex64::root_of_unity(p as i64, len as u64)),
                    conj(Complex64::root_of_unity(2 * p as i64, len as u64)),
                    conj(Complex64::root_of_unity(3 * p as i64, len as u64)),
                ]);
            }
            stages4.push(tbl);
            len /= 4;
        }
        Self {
            n,
            dir,
            stages4,
            lead2,
        }
    }

    /// Total passes over the data (1 for an odd leading radix-2 stage
    /// plus one per radix-4 stage) — compare `log2 n` for radix-2.
    pub fn num_passes(&self) -> usize {
        self.stages4.len() + usize::from(self.lead2.is_some())
    }
}

/// Computes `(DFT_n ⊗ I_s)` in place on `data` using `scratch`
/// (both `n·s` elements), radix-4 Stockham.
pub fn stockham_radix4_strided(
    data: &mut [Complex64],
    scratch: &mut [Complex64],
    n: usize,
    s: usize,
    tw: &Radix4Twiddles,
) {
    assert_eq!(tw.n, n);
    assert_eq!(data.len(), n * s);
    assert_eq!(scratch.len(), n * s);
    if n == 1 {
        return;
    }
    let mut len = n;
    let mut stride = s;
    let mut src_is_data = true;

    if let Some(tbl) = &tw.lead2 {
        let (src, dst): (&mut [Complex64], &mut [Complex64]) = (&mut *data, &mut *scratch);
        radix2_stage(src, dst, len, stride, tbl);
        len /= 2;
        stride *= 2;
        src_is_data = false;
    }
    for tbl in &tw.stages4 {
        let (src, dst): (&mut [Complex64], &mut [Complex64]) = if src_is_data {
            (&mut *data, &mut *scratch)
        } else {
            (&mut *scratch, &mut *data)
        };
        radix4_stage(src, dst, len, stride, tbl, tw.dir);
        len /= 4;
        stride *= 4;
        src_is_data = !src_is_data;
    }
    debug_assert_eq!(len, 1);
    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

fn radix2_stage(
    src: &[Complex64],
    dst: &mut [Complex64],
    len: usize,
    stride: usize,
    table: &[Complex64],
) {
    let half = len / 2;
    for p in 0..half {
        let w = table[p];
        let a = &src[stride * p..stride * (p + 1)];
        let b = &src[stride * (p + half)..stride * (p + half + 1)];
        let (lo, hi) = dst[stride * 2 * p..stride * (2 * p + 2)].split_at_mut(stride);
        butterfly_row_scalar(a, b, lo, hi, w);
    }
}

fn radix4_stage(
    src: &[Complex64],
    dst: &mut [Complex64],
    len: usize,
    stride: usize,
    table: &[[Complex64; 3]],
    dir: Direction,
) {
    let quarter = len / 4;
    for (p, &[w1, w2, w3]) in table.iter().enumerate().take(quarter) {
        let base_a = stride * p;
        let base_b = stride * (p + quarter);
        let base_c = stride * (p + 2 * quarter);
        let base_d = stride * (p + 3 * quarter);
        let out = stride * 4 * p;
        for q in 0..stride {
            let a = src[base_a + q];
            let b = src[base_b + q];
            let c = src[base_c + q];
            let d = src[base_d + q];
            let t0 = a + c;
            let t1 = a - c;
            let t2 = b + d;
            // ∓i·(b − d): −i for the forward transform, +i inverse.
            let t3 = match dir {
                Direction::Forward => (b - d).mul_neg_i(),
                Direction::Inverse => (b - d).mul_i(),
            };
            dst[out + q] = t0 + t2;
            dst[out + stride + q] = (t1 + t3) * w1;
            dst[out + 2 * stride + q] = (t0 - t2) * w2;
            dst[out + 3 * stride + q] = (t1 - t3) * w3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dft_naive;
    use crate::stockham::stockham_strided;
    use crate::twiddle::StockhamTwiddles;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    fn run4(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
        let n = x.len();
        let mut data = x.to_vec();
        let mut scratch = vec![Complex64::ZERO; n];
        let tw = Radix4Twiddles::new(n, dir);
        stockham_radix4_strided(&mut data, &mut scratch, n, 1, &tw);
        data
    }

    #[test]
    fn matches_naive_even_and_odd_logs() {
        for lg in 1..=12 {
            let n = 1usize << lg;
            let x = random_complex(n, 300 + lg as u64);
            assert_fft_close(&run4(&x, Direction::Forward), &dft_naive(&x, Direction::Forward));
        }
    }

    #[test]
    fn inverse_matches_naive() {
        let x = random_complex(256, 301);
        assert_fft_close(&run4(&x, Direction::Inverse), &dft_naive(&x, Direction::Inverse));
    }

    #[test]
    fn agrees_with_radix2_stockham_bitwise_tolerance() {
        for lg in [6usize, 9, 11] {
            let n = 1 << lg;
            let x = random_complex(n, 302);
            let r4 = run4(&x, Direction::Forward);
            let mut r2 = x.clone();
            let mut scratch = vec![Complex64::ZERO; n];
            let tw = StockhamTwiddles::new(n, Direction::Forward);
            stockham_strided(&mut r2, &mut scratch, n, 1, &tw);
            assert_fft_close(&r4, &r2);
        }
    }

    #[test]
    fn strided_form_matches_spl() {
        for (n, s) in [(16usize, 4usize), (64, 3), (32, 4)] {
            let x = random_complex(n * s, 303);
            let mut data = x.clone();
            let mut scratch = vec![Complex64::ZERO; n * s];
            let tw = Radix4Twiddles::new(n, Direction::Forward);
            stockham_radix4_strided(&mut data, &mut scratch, n, s, &tw);
            let expect = bwfft_spl::Formula::tensor(
                bwfft_spl::Formula::dft(n),
                bwfft_spl::Formula::identity(s),
            )
            .apply_vec(&x);
            assert_fft_close(&data, &expect);
        }
    }

    #[test]
    fn pass_counts_halve() {
        assert_eq!(Radix4Twiddles::new(256, Direction::Forward).num_passes(), 4);
        assert_eq!(Radix4Twiddles::new(512, Direction::Forward).num_passes(), 5);
        assert_eq!(Radix4Twiddles::new(4, Direction::Forward).num_passes(), 1);
        assert_eq!(Radix4Twiddles::new(2, Direction::Forward).num_passes(), 1);
    }

    #[test]
    fn roundtrip() {
        let n = 1024;
        let x = random_complex(n, 304);
        let y = run4(&x, Direction::Forward);
        let z = run4(&y, Direction::Inverse);
        let scaled: Vec<Complex64> = z.iter().map(|c| c.scale(1.0 / n as f64)).collect();
        assert_fft_close(&scaled, &x);
    }
}
