//! Reference (oracle) transforms: the definitions, computed naively.
//!
//! Everything else in the workspace is tested against these. They are
//! `O(n²)` per 1D transform and must only be used on test-sized inputs.

use crate::Direction;
use bwfft_num::Complex64;

/// Naive `O(n²)` DFT: `y[k] = Σ_l x[l]·ω^{kl}` with
/// `ω = e^{∓2πi/n}` per [`Direction`].
pub fn dft_naive(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    let mut y = vec![Complex64::ZERO; n];
    for (k, yk) in y.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (l, xl) in x.iter().enumerate() {
            let w = Complex64::root_of_unity((k * l) as i64, n as u64);
            let w = match dir {
                Direction::Forward => w,
                Direction::Inverse => w.conj(),
            };
            acc += *xl * w;
        }
        *yk = acc;
    }
    y
}

/// Naive 2D DFT of an `n × m` row-major array, via row then column
/// naive DFTs (the separability definition).
pub fn dft2_naive(x: &[Complex64], n: usize, m: usize, dir: Direction) -> Vec<Complex64> {
    assert_eq!(x.len(), n * m);
    let mut t = vec![Complex64::ZERO; n * m];
    // Rows.
    for r in 0..n {
        let row = dft_naive(&x[r * m..(r + 1) * m], dir);
        t[r * m..(r + 1) * m].copy_from_slice(&row);
    }
    // Columns.
    let mut y = vec![Complex64::ZERO; n * m];
    let mut col = vec![Complex64::ZERO; n];
    for c in 0..m {
        for r in 0..n {
            col[r] = t[r * m + c];
        }
        let out = dft_naive(&col, dir);
        for r in 0..n {
            y[r * m + c] = out[r];
        }
    }
    y
}

/// Naive 3D DFT of a `k × n × m` row-major cube.
pub fn dft3_naive(
    x: &[Complex64],
    k: usize,
    n: usize,
    m: usize,
    dir: Direction,
) -> Vec<Complex64> {
    assert_eq!(x.len(), k * n * m);
    // 2D transform of each z-slab, then 1D along z.
    let mut t = vec![Complex64::ZERO; k * n * m];
    for z in 0..k {
        let slab = dft2_naive(&x[z * n * m..(z + 1) * n * m], n, m, dir);
        t[z * n * m..(z + 1) * n * m].copy_from_slice(&slab);
    }
    let mut y = vec![Complex64::ZERO; k * n * m];
    let mut pencil = vec![Complex64::ZERO; k];
    for yy in 0..n {
        for xx in 0..m {
            for z in 0..k {
                pencil[z] = t[z * n * m + yy * m + xx];
            }
            let out = dft_naive(&pencil, dir);
            for z in 0..k {
                y[z * n * m + yy * m + xx] = out[z];
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::{complex_tone, impulse, random_complex};

    #[test]
    fn dft_of_tone_is_a_spike() {
        let n = 32;
        let f = 5;
        let y = dft_naive(&complex_tone(n, f), Direction::Forward);
        for (k, v) in y.iter().enumerate() {
            if k == f {
                assert!((v.re - n as f64).abs() < 1e-9 && v.im.abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "bin {k} should be empty, got {v}");
            }
        }
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let y = dft_naive(&impulse(16, 0), Direction::Forward);
        for v in &y {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn forward_then_inverse_recovers_input() {
        let x = random_complex(24, 11);
        let y = dft_naive(&x, Direction::Forward);
        let mut z = dft_naive(&y, Direction::Inverse);
        for v in &mut z {
            *v = v.scale(1.0 / 24.0);
        }
        assert_fft_close(&z, &x);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x = random_complex(64, 12);
        let y = dft_naive(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|c| c.norm_sqr()).sum();
        assert!((ey - 64.0 * ex).abs() / (64.0 * ex) < 1e-12);
    }

    #[test]
    fn dft2_matches_spl_tensor() {
        let (n, m) = (4usize, 6usize);
        let x = random_complex(n * m, 13);
        let by_naive = dft2_naive(&x, n, m, Direction::Forward);
        let by_spl = bwfft_spl::Formula::tensor(
            bwfft_spl::Formula::dft(n),
            bwfft_spl::Formula::dft(m),
        )
        .apply_vec(&x);
        assert_fft_close(&by_naive, &by_spl);
    }

    #[test]
    fn dft3_matches_spl_tensor() {
        let (k, n, m) = (2usize, 3usize, 4usize);
        let x = random_complex(k * n * m, 14);
        let by_naive = dft3_naive(&x, k, n, m, Direction::Forward);
        let by_spl = bwfft_spl::rewrite::mdft_tensor_3d(k, n, m).apply_vec(&x);
        assert_fft_close(&by_naive, &by_spl);
    }

    #[test]
    fn dft3_separability_order_does_not_matter() {
        // z-first vs xy-first must agree (Fubini for finite sums).
        let (k, n, m) = (3usize, 2usize, 4usize);
        let x = random_complex(k * n * m, 15);
        let a = dft3_naive(&x, k, n, m, Direction::Forward);
        // Alternative: 1D along z first, then 2D per slab.
        let mut t = vec![Complex64::ZERO; k * n * m];
        let mut pencil = vec![Complex64::ZERO; k];
        for yy in 0..n {
            for xx in 0..m {
                for z in 0..k {
                    pencil[z] = x[z * n * m + yy * m + xx];
                }
                let out = dft_naive(&pencil, Direction::Forward);
                for z in 0..k {
                    t[z * n * m + yy * m + xx] = out[z];
                }
            }
        }
        let mut b = vec![Complex64::ZERO; k * n * m];
        for z in 0..k {
            let slab = dft2_naive(&t[z * n * m..(z + 1) * n * m], n, m, Direction::Forward);
            b[z * n * m..(z + 1) * n * m].copy_from_slice(&slab);
        }
        assert_fft_close(&a, &b);
    }
}
