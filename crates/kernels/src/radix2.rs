//! In-place radix-2 decimation-in-time FFT with bit-reversal reorder.
//!
//! Kept alongside the Stockham kernel for two reasons: it cross-checks
//! the workhorse kernel with an independently-derived algorithm, and its
//! strided access pattern (stride doubling per stage over the whole
//! array) is the canonical example of the cache-hostile behaviour the
//! paper's blocked decompositions avoid — the baselines use it to model
//! "pencil FFT straight over strided data".

use crate::twiddle::StockhamTwiddles;
use crate::Direction;
use bwfft_num::Complex64;

/// Bit-reversal permutation of `data` (length must be a power of two).
pub fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    assert!(bwfft_num::is_pow2(n));
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// In-place radix-2 DIT FFT. Direction is chosen at call time (twiddles
/// are computed on the fly from the quadrant-exact root helper; for hot
/// paths use the Stockham kernel with precomputed tables).
pub fn fft_radix2_inplace(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    assert!(bwfft_num::is_pow2(n));
    if n == 1 {
        return;
    }
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for base in (0..n).step_by(len) {
            for p in 0..half {
                let w = Complex64::root_of_unity(p as i64, len as u64);
                let w = match dir {
                    Direction::Forward => w,
                    Direction::Inverse => w.conj(),
                };
                let a = data[base + p];
                let b = data[base + p + half] * w;
                data[base + p] = a + b;
                data[base + p + half] = a - b;
            }
        }
        len *= 2;
    }
}

/// Radix-2 DIT with precomputed twiddles (stage `q` of the Stockham
/// table is consumed in reverse stage order here).
pub fn fft_radix2_tables(data: &mut [Complex64], tw: &StockhamTwiddles) {
    let n = data.len();
    assert_eq!(n, tw.n);
    if n == 1 {
        return;
    }
    bit_reverse_permute(data);
    let mut len = 2;
    let mut stage_idx = tw.num_stages();
    while len <= n {
        stage_idx -= 1;
        let table = tw.stage(stage_idx); // ω_len^p table
        let half = len / 2;
        for base in (0..n).step_by(len) {
            for p in 0..half {
                let w = table[p];
                let a = data[base + p];
                let b = data[base + p + half] * w;
                data[base + p] = a + b;
                data[base + p + half] = a - b;
            }
        }
        len *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dft_naive;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[test]
    fn bit_reversal_is_an_involution() {
        let x = random_complex(64, 1);
        let mut y = x.clone();
        bit_reverse_permute(&mut y);
        assert_ne!(x, y);
        bit_reverse_permute(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn bit_reversal_small_case() {
        let mut v: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
        bit_reverse_permute(&mut v);
        let order: Vec<f64> = v.iter().map(|c| c.re).collect();
        assert_eq!(order, vec![0.0, 4.0, 2.0, 6.0, 1.0, 5.0, 3.0, 7.0]);
    }

    #[test]
    fn matches_naive_dft() {
        for lg in 0..=10 {
            let n = 1usize << lg;
            let x = random_complex(n, 20 + lg as u64);
            let mut got = x.clone();
            fft_radix2_inplace(&mut got, Direction::Forward);
            assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
        }
    }

    #[test]
    fn inverse_direction() {
        let x = random_complex(128, 30);
        let mut got = x.clone();
        fft_radix2_inplace(&mut got, Direction::Inverse);
        assert_fft_close(&got, &dft_naive(&x, Direction::Inverse));
    }

    #[test]
    fn table_variant_matches_on_the_fly() {
        let x = random_complex(256, 31);
        let mut a = x.clone();
        fft_radix2_inplace(&mut a, Direction::Forward);
        let tw = StockhamTwiddles::new(256, Direction::Forward);
        let mut b = x.clone();
        fft_radix2_tables(&mut b, &tw);
        assert_fft_close(&b, &a);
    }

    #[test]
    fn agrees_with_stockham_kernel() {
        // Two independently-derived algorithms must agree.
        let n = 2048;
        let x = random_complex(n, 32);
        let mut a = x.clone();
        fft_radix2_inplace(&mut a, Direction::Forward);
        let mut b = x.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        let tw = StockhamTwiddles::new(n, Direction::Forward);
        crate::stockham::stockham_strided(&mut b, &mut scratch, n, 1, &tw);
        assert_fft_close(&b, &a);
    }
}
