//! Precomputed twiddle-factor tables.
//!
//! FFT stages consume roots of unity in a fixed order; recomputing
//! `sin`/`cos` inside the butterfly loops would dominate runtime, so
//! plans precompute per-stage tables once. Tables are direction-aware
//! (inverse transforms use conjugated roots).

use crate::Direction;
use bwfft_num::Complex64;

/// Twiddle tables for a radix-2 Stockham FFT of size `n = 2^s`:
/// `stage[q][p] = ω_len^p` with `len = n >> q` and `p < len/2`.
#[derive(Clone, Debug)]
pub struct StockhamTwiddles {
    pub n: usize,
    pub dir: Direction,
    stages: Vec<Vec<Complex64>>,
}

impl StockhamTwiddles {
    pub fn new(n: usize, dir: Direction) -> Self {
        assert!(bwfft_num::is_pow2(n), "Stockham kernel requires power-of-two size");
        let mut stages = Vec::new();
        let mut len = n;
        while len > 1 {
            let half = len / 2;
            let mut tbl = Vec::with_capacity(half);
            for p in 0..half {
                let w = Complex64::root_of_unity(p as i64, len as u64);
                tbl.push(match dir {
                    Direction::Forward => w,
                    Direction::Inverse => w.conj(),
                });
            }
            stages.push(tbl);
            len = half;
        }
        Self { n, dir, stages }
    }

    /// Number of butterfly stages (`log2 n`).
    #[inline]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The table for stage `q` (stage 0 spans the full length `n`).
    #[inline]
    pub fn stage(&self, q: usize) -> &[Complex64] {
        &self.stages[q]
    }

    /// Total complex values stored (`n − 1` for radix-2).
    pub fn footprint_elems(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }
}

/// The diagonal `D_{m,n}` twiddles of a Cooley–Tukey split, flattened in
/// the order the data is traversed (`i·n + j` holds `ω_{mn}^{ij}`).
pub fn cooley_tukey_diag(m: usize, n: usize, dir: Direction) -> Vec<Complex64> {
    let total = (m * n) as u64;
    let mut d = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            let w = Complex64::root_of_unity((i * j) as i64, total);
            d.push(match dir {
                Direction::Forward => w,
                Direction::Inverse => w.conj(),
            });
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_lengths_halve() {
        let t = StockhamTwiddles::new(64, Direction::Forward);
        assert_eq!(t.num_stages(), 6);
        let lens: Vec<usize> = (0..6).map(|q| t.stage(q).len()).collect();
        assert_eq!(lens, vec![32, 16, 8, 4, 2, 1]);
        assert_eq!(t.footprint_elems(), 63);
    }

    #[test]
    fn forward_and_inverse_tables_conjugate() {
        let f = StockhamTwiddles::new(16, Direction::Forward);
        let i = StockhamTwiddles::new(16, Direction::Inverse);
        for q in 0..f.num_stages() {
            for (a, b) in f.stage(q).iter().zip(i.stage(q)) {
                assert_eq!(a.conj(), *b);
            }
        }
    }

    #[test]
    fn entries_are_the_expected_roots() {
        let t = StockhamTwiddles::new(8, Direction::Forward);
        // Stage 0: ω_8^p.
        for (p, w) in t.stage(0).iter().enumerate() {
            assert!((*w - Complex64::root_of_unity(p as i64, 8)).abs() < 1e-15);
        }
        // Stage 1: ω_4^p.
        for (p, w) in t.stage(1).iter().enumerate() {
            assert!((*w - Complex64::root_of_unity(p as i64, 4)).abs() < 1e-15);
        }
    }

    #[test]
    fn ct_diag_matches_spl_twiddle() {
        let d = cooley_tukey_diag(4, 3, Direction::Forward);
        let f = bwfft_spl::Formula::twiddle(4, 3);
        let x = vec![Complex64::ONE; 12];
        let y = f.apply_vec(&x);
        assert_eq!(d.len(), 12);
        for (a, b) in d.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_pow2() {
        let _ = StockhamTwiddles::new(12, Direction::Forward);
    }
}
