//! 1D FFT plans: twiddles + scratch, reusable across calls.

use crate::stockham::stockham_strided;
use crate::twiddle::StockhamTwiddles;
use crate::Direction;
use bwfft_num::{AlignedVec, Complex64};

/// A reusable 1D FFT plan of fixed size and direction.
///
/// ```
/// use bwfft_kernels::{Fft1d, Direction};
/// use bwfft_num::{signal, Complex64};
///
/// let mut plan = Fft1d::new(1024, Direction::Forward);
/// let mut data = signal::complex_tone(1024, 3);
/// plan.run(&mut data);
/// assert!((data[3].re - 1024.0).abs() < 1e-8);
/// ```
pub struct Fft1d {
    n: usize,
    dir: Direction,
    twiddles: StockhamTwiddles,
    scratch: AlignedVec<Complex64>,
}

impl Fft1d {
    /// Plans a power-of-two FFT of size `n`.
    pub fn new(n: usize, dir: Direction) -> Self {
        Self {
            n,
            dir,
            twiddles: StockhamTwiddles::new(n, dir),
            scratch: AlignedVec::zeroed(n),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Transforms `data` in place (unnormalized).
    pub fn run(&mut self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n);
        stockham_strided(data, &mut self.scratch, self.n, 1, &self.twiddles);
    }

    /// Transforms and, for inverse plans, scales by `1/n` so that
    /// forward∘inverse is the identity.
    pub fn run_normalized(&mut self, data: &mut [Complex64]) {
        self.run(data);
        if matches!(self.dir, Direction::Inverse) {
            let s = 1.0 / self.n as f64;
            for v in data.iter_mut() {
                *v = v.scale(s);
            }
        }
    }

    /// Shared twiddle table (used by the batch kernels so that one plan
    /// serves many pencils).
    pub fn twiddles(&self) -> &StockhamTwiddles {
        &self.twiddles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dft_naive;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[test]
    fn plan_is_reusable() {
        let mut plan = Fft1d::new(64, Direction::Forward);
        for seed in 0..5 {
            let x = random_complex(64, seed);
            let mut got = x.clone();
            plan.run(&mut got);
            assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
        }
    }

    #[test]
    fn normalized_roundtrip() {
        let x = random_complex(256, 9);
        let mut fwd = Fft1d::new(256, Direction::Forward);
        let mut inv = Fft1d::new(256, Direction::Inverse);
        let mut data = x.clone();
        fwd.run_normalized(&mut data);
        inv.run_normalized(&mut data);
        assert_fft_close(&data, &x);
    }

    #[test]
    #[should_panic]
    fn wrong_length_is_rejected() {
        let mut plan = Fft1d::new(64, Direction::Forward);
        let mut data = vec![Complex64::ZERO; 32];
        plan.run(&mut data);
    }
}
