//! Real-input transforms via the half-length complex FFT (DESIGN.md
//! §13).
//!
//! A real array of length `n = 2h` is re-read as `h` complex elements
//! ([`crate::layout::fold_real`] — the conjugate-even packing folded
//! into the first stage's layout change), transformed by an ordinary
//! complex FFT of length `h`, and an `O(n)` *split-merge* post-pass
//! separates the even/odd-sample spectra and rotates them into the
//! `h + 1` conjugate-even packed bins `Y[0..=n/2]`:
//!
//! ```text
//! E[k] =  (Z[k] + conj(Z[h−k])) / 2          (even samples' spectrum)
//! O[k] = −i·(Z[k] − conj(Z[h−k])) / 2        (odd  samples' spectrum)
//! Y[kf] = E[kf%h] + w^kf · O[kf%h],  w = e^{−2πi/n},  kf = 0..=h
//! ```
//!
//! `c2r` is the exact mirror: an inverse merge pre-pass rebuilds the
//! half-length spectrum, an inverse complex FFT of length `h` runs, and
//! the pairs unfold back into reals. Both directions are unnormalized
//! like every transform in this workspace: `c2r(r2c(x)) = n·x`.
//!
//! The same passes generalize to multidimensional real transforms: the
//! row index gains a per-dimension mirror (`(−s) mod dim`), which is
//! exactly the `mirror` parameter of the pass functions here —
//! `bwfft-core`'s real plans call them with their row mirror while the
//! half-width *complex* transform runs unchanged through the
//! pipelined/fused/reference executors and all their guards.
//!
//! [`fused_multiply_merge`] is the spectral-convolution fast path: one
//! sweep over conjugate bin pairs computes the packed product spectrum
//! `Y·H` and immediately re-merges it for the inverse FFT, so the
//! product spectrum is never materialized.

use crate::layout::{fold_real, packed_spectrum_len, unfold_real};
use crate::plan1d::Fft1d;
use crate::Direction;
use bwfft_num::{is_pow2, AlignedVec, Complex64};

/// Column twiddles `w^kf = e^{−2πi·kf/n}` for `kf = 0..=n/2` — the
/// rotation the split-merge pass applies to the odd-sample spectrum.
pub fn half_twiddles(n: usize) -> Vec<Complex64> {
    assert!(n >= 2 && n.is_multiple_of(2), "half twiddles need even n");
    (0..=n / 2)
        .map(|kf| Complex64::root_of_unity(kf as i64, n as u64))
        .collect()
}

/// Forward split-merge post-pass: turns the complex FFT `z` of the
/// folded (half-width) real array into the conjugate-even packed
/// spectrum `out` (`rows × (h+1)` bins, `h = z.len()/rows`). `mirror`
/// maps a row index to its negated-frequency row (`(−s) mod dim` per
/// leading dimension; the identity for 1D). `tw` is
/// [`half_twiddles`]`(2h)`.
pub fn split_merge_forward(
    z: &[Complex64],
    tw: &[Complex64],
    rows: usize,
    mirror: impl Fn(usize) -> usize,
    out: &mut [Complex64],
) {
    assert!(rows > 0 && z.len().is_multiple_of(rows));
    let h = z.len() / rows;
    assert!(h >= 1);
    assert_eq!(tw.len(), h + 1, "twiddle table must cover kf = 0..=h");
    assert_eq!(out.len(), rows * (h + 1));
    for s in 0..rows {
        let ms = mirror(s);
        for kf in 0..=h {
            let k = kf % h;
            let mk = (h - k) % h;
            let za = z[s * h + k];
            let zb = z[ms * h + mk];
            let e = (za + zb.conj()).scale(0.5);
            let o = (za - zb.conj()).mul_neg_i().scale(0.5);
            out[s * (h + 1) + kf] = e + tw[kf] * o;
        }
    }
}

/// Inverse merge pre-pass: packs the conjugate-even spectrum back into
/// the half-length complex spectrum the inverse FFT consumes. The
/// unnormalized convention's factor 2 is folded in here, so an
/// unnormalized inverse FFT (×`h`) of the result followed by
/// [`unfold_real`] yields `n·x`.
pub fn merge_split_inverse(
    packed: &[Complex64],
    tw: &[Complex64],
    rows: usize,
    mirror: impl Fn(usize) -> usize,
    z: &mut [Complex64],
) {
    assert!(rows > 0 && z.len().is_multiple_of(rows));
    let h = z.len() / rows;
    assert!(h >= 1);
    assert_eq!(tw.len(), h + 1, "twiddle table must cover kf = 0..=h");
    assert_eq!(packed.len(), rows * (h + 1));
    for s in 0..rows {
        let ms = mirror(s);
        for k in 0..h {
            let p = packed[s * (h + 1) + k];
            let q = packed[ms * (h + 1) + (h - k)];
            // 2E and 2·w^{−k}·(w^k·O) = 2O — the /2 of the forward
            // split cancels against the folded factor 2.
            let e = p + q.conj();
            let o = (p - q.conj()) * tw[k].conj();
            z[s * h + k] = e + o.mul_i();
        }
    }
}

/// The fused spectral-convolution pass: in one sweep over conjugate
/// bin pairs, computes the packed product spectrum `Y·H` and
/// immediately re-merges it for the inverse half-length FFT — the
/// product spectrum is never materialized. `z` holds the forward
/// half-length FFT of the folded input (`rows × h`) and is replaced in
/// place by the merged product spectrum; `hspec` is the packed kernel
/// spectrum (`rows × (h+1)`), including any normalization factor.
pub fn fused_multiply_merge(
    z: &mut [Complex64],
    hspec: &[Complex64],
    tw: &[Complex64],
    rows: usize,
    mirror: impl Fn(usize) -> usize,
) {
    assert!(rows > 0 && z.len().is_multiple_of(rows));
    let h = z.len() / rows;
    assert!(h >= 1);
    assert_eq!(tw.len(), h + 1, "twiddle table must cover kf = 0..=h");
    assert_eq!(hspec.len(), rows * (h + 1));
    let hp = h + 1;
    for s in 0..rows {
        let ms = mirror(s);
        for k in 0..h {
            let mk = (h - k) % h;
            // Visit each unordered pair {(s,k), (ms,mk)} exactly once.
            if (ms, mk) < (s, k) {
                continue;
            }
            let za = z[s * h + k];
            let zb = z[ms * h + mk];
            let e = (za + zb.conj()).scale(0.5);
            let o = (za - zb.conj()).mul_neg_i().scale(0.5);
            if k == 0 {
                // The k = 0 column carries both the DC and Nyquist
                // packed bins of rows s and ms (Y[·][0] = E + O,
                // Y[·][h] = E − O; row ms holds their conjugates).
                let v_s0 = (e + o) * hspec[s * hp];
                let v_sh = (e - o) * hspec[s * hp + h];
                let v_m0 = (e + o).conj() * hspec[ms * hp];
                let v_mh = (e - o).conj() * hspec[ms * hp + h];
                z[s * h] = (v_s0 + v_mh.conj()) + (v_s0 - v_mh.conj()).mul_i();
                if ms != s {
                    z[ms * h] = (v_m0 + v_sh.conj()) + (v_m0 - v_sh.conj()).mul_i();
                }
            } else {
                // Y[s][k] = E + w^k·O and Y[ms][h−k] = conj(E − w^k·O).
                let b = tw[k] * o;
                let v1 = (e + b) * hspec[s * hp + k];
                let v2 = (e - b).conj() * hspec[ms * hp + (h - k)];
                let m1 = (v1 + v2.conj()) + ((v1 - v2.conj()) * tw[k].conj()).mul_i();
                z[s * h + k] = m1;
                if (ms, mk) != (s, k) {
                    let m2 =
                        (v2 + v1.conj()) + ((v2 - v1.conj()) * tw[h - k].conj()).mul_i();
                    z[ms * h + mk] = m2;
                }
            }
        }
    }
}

/// Energy of a conjugate-even packed spectrum (`rows × (h+1)` bins):
/// interior columns stand for their unstored mirror column too, so
/// they count twice; the DC and Nyquist columns are their own mirrors.
/// For the packed forward spectrum of real `x` this equals `N·Σx²`
/// (the transform being unnormalized) — the Parseval invariant the
/// integrity guards check over the half-spectrum.
pub fn packed_spectrum_energy(packed: &[Complex64], rows: usize) -> f64 {
    assert!(rows > 0 && packed.len().is_multiple_of(rows));
    let hp = packed.len() / rows;
    let mut e = 0.0;
    for s in 0..rows {
        let row = &packed[s * hp..(s + 1) * hp];
        if hp == 1 {
            e += row[0].norm_sqr();
            continue;
        }
        e += row[0].norm_sqr() + row[hp - 1].norm_sqr();
        for v in &row[1..hp - 1] {
            e += 2.0 * v.norm_sqr();
        }
    }
    e
}

/// A reusable 1D real-to-complex / complex-to-real plan of fixed
/// power-of-two size `n`: fold → half-length complex FFT → split-merge.
/// Forward output is the packed conjugate-even half-spectrum
/// (`n/2 + 1` bins, the bins `0..=n/2` of the full complex DFT of the
/// real input); [`c2r`](Self::c2r) is the exact adjoint pipeline and,
/// like every inverse in this workspace, unnormalized:
/// `c2r(r2c(x)) = n·x`.
pub struct RealFft1d {
    n: usize,
    /// Half-length plans; `None` for the degenerate `n == 1`.
    fwd: Option<Fft1d>,
    inv: Option<Fft1d>,
    tw: Vec<Complex64>,
    scratch: AlignedVec<Complex64>,
}

impl RealFft1d {
    /// Plans a power-of-two real transform of size `n` (`n = 1` and
    /// `n = 2` degenerate gracefully: identity and a single butterfly).
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n), "real FFT requires a power-of-two size");
        if n == 1 {
            return Self {
                n,
                fwd: None,
                inv: None,
                tw: Vec::new(),
                scratch: AlignedVec::zeroed(1),
            };
        }
        let h = n / 2;
        Self {
            n,
            fwd: Some(Fft1d::new(h, Direction::Forward)),
            inv: Some(Fft1d::new(h, Direction::Inverse)),
            tw: half_twiddles(n),
            scratch: AlignedVec::zeroed(h),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bins in the packed half-spectrum (`n/2 + 1`).
    #[inline]
    pub fn packed_len(&self) -> usize {
        packed_spectrum_len(self.n)
    }

    /// Forward real-to-complex transform: `out[k] = Σ_j x[j]·e^{−2πijk/n}`
    /// for `k = 0..=n/2`.
    pub fn r2c(&mut self, x: &[f64], out: &mut [Complex64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), self.packed_len());
        let Some(fwd) = self.fwd.as_mut() else {
            out[0] = Complex64::new(x[0], 0.0);
            return;
        };
        fold_real(x, &mut self.scratch);
        fwd.run(&mut self.scratch);
        split_merge_forward(&self.scratch, &self.tw, 1, |s| s, out);
    }

    /// Inverse complex-to-real transform of a conjugate-even packed
    /// spectrum, unnormalized: `c2r(r2c(x)) = n·x`.
    pub fn c2r(&mut self, spec: &[Complex64], out: &mut [f64]) {
        assert_eq!(spec.len(), self.packed_len());
        assert_eq!(out.len(), self.n);
        let Some(inv) = self.inv.as_mut() else {
            out[0] = spec[0].re;
            return;
        };
        merge_split_inverse(spec, &self.tw, 1, |s| s, &mut self.scratch);
        inv.run(&mut self.scratch);
        unfold_real(&self.scratch, 1.0, out);
    }

    /// [`c2r`](Self::c2r) scaled by `1/n`, so `c2r_normalized ∘ r2c`
    /// is the identity.
    pub fn c2r_normalized(&mut self, spec: &[Complex64], out: &mut [f64]) {
        self.c2r(spec, out);
        let s = 1.0 / self.n as f64;
        for v in out.iter_mut() {
            *v *= s;
        }
    }
}

/// A planned, fused 1D spectral convolution against a fixed real
/// kernel: `r2c → pointwise multiply fused into the merge stream →
/// c2r`, with the packed product spectrum never materialized and the
/// `1/n` normalization pre-folded into the kernel spectrum so the
/// output is the exact circular convolution.
pub struct SpectralConv1d {
    n: usize,
    fwd: Fft1d,
    inv: Fft1d,
    tw: Vec<Complex64>,
    hspec: Vec<Complex64>,
    scratch: AlignedVec<Complex64>,
}

impl SpectralConv1d {
    /// Plans the convolution; the kernel's packed spectrum is computed
    /// once here (planning-time work) and reused by every
    /// [`run`](Self::run).
    pub fn new(kernel: &[f64]) -> Self {
        let n = kernel.len();
        assert!(is_pow2(n) && n >= 2, "spectral convolution needs a power-of-two n ≥ 2");
        let h = n / 2;
        let mut plan = RealFft1d::new(n);
        let mut hspec = vec![Complex64::ZERO; n / 2 + 1];
        plan.r2c(kernel, &mut hspec);
        let s = 1.0 / n as f64;
        for v in hspec.iter_mut() {
            *v = v.scale(s);
        }
        Self {
            n,
            fwd: Fft1d::new(h, Direction::Forward),
            inv: Fft1d::new(h, Direction::Inverse),
            tw: half_twiddles(n),
            hspec,
            scratch: AlignedVec::zeroed(h),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Circularly convolves `x` with the planned kernel, in place.
    pub fn run(&mut self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        fold_real(x, &mut self.scratch);
        self.fwd.run(&mut self.scratch);
        fused_multiply_merge(&mut self.scratch, &self.hspec, &self.tw, 1, |s| s);
        self.inv.run(&mut self.scratch);
        unfold_real(&self.scratch, 1.0, x);
    }
}

/// `O(n²)` circular-convolution oracle, for conformance tests and the
/// CLI's `--verify` path.
pub fn conv_direct(x: &[f64], g: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert_eq!(g.len(), n);
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        for (j, xj) in x.iter().enumerate() {
            *o += xj * g[(n + i - j) % n];
        }
    }
    out
}

/// Why a batched/strided real layout was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RealLayoutError {
    /// The transform length is not a power of two.
    NotPow2 { n: usize },
    /// A stride or (with `howmany > 1`) a distance is zero, so
    /// transforms would alias each other.
    ZeroStride,
    /// The real-side array is shorter than the descriptor's span.
    RealOutOfBounds { needed: usize, got: usize },
    /// The spectrum-side array is shorter than the descriptor's span.
    SpectrumOutOfBounds { needed: usize, got: usize },
}

impl core::fmt::Display for RealLayoutError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RealLayoutError::NotPow2 { n } => {
                write!(f, "real transform length {n} must be a power of two")
            }
            RealLayoutError::ZeroStride => {
                write!(f, "strides and distances must be nonzero")
            }
            RealLayoutError::RealOutOfBounds { needed, got } => {
                write!(f, "real array has {got} elements, layout spans {needed}")
            }
            RealLayoutError::SpectrumOutOfBounds { needed, got } => {
                write!(f, "spectrum array has {got} elements, layout spans {needed}")
            }
        }
    }
}

impl std::error::Error for RealLayoutError {}

/// FFTW `plan_many`-style batched/strided descriptor for real
/// transforms: `howmany` transforms of length `n`, with per-element
/// strides and transform-to-transform distances on both the real and
/// the packed-spectrum side (all in elements of the respective type).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RealManyDescriptor {
    pub n: usize,
    pub howmany: usize,
    /// Distance between consecutive samples of one transform (reals).
    pub real_stride: usize,
    /// Distance between the first samples of consecutive transforms.
    pub real_dist: usize,
    /// Distance between consecutive packed bins of one transform.
    pub spec_stride: usize,
    /// Distance between the first bins of consecutive transforms.
    pub spec_dist: usize,
}

impl RealManyDescriptor {
    /// The dense layout: unit strides, transforms back to back.
    pub fn contiguous(n: usize, howmany: usize) -> Self {
        Self {
            n,
            howmany,
            real_stride: 1,
            real_dist: n,
            spec_stride: 1,
            spec_dist: packed_spectrum_len(n),
        }
    }

    /// Elements the real side must provide (0 when `howmany == 0`).
    pub fn real_span(&self) -> usize {
        if self.howmany == 0 {
            return 0;
        }
        (self.howmany - 1) * self.real_dist + (self.n - 1) * self.real_stride + 1
    }

    /// Elements the spectrum side must provide.
    pub fn spec_span(&self) -> usize {
        if self.howmany == 0 {
            return 0;
        }
        (self.howmany - 1) * self.spec_dist
            + (packed_spectrum_len(self.n) - 1) * self.spec_stride
            + 1
    }

    /// Validates the descriptor against concrete array lengths.
    pub fn validate(&self, real_len: usize, spec_len: usize) -> Result<(), RealLayoutError> {
        if !is_pow2(self.n) {
            return Err(RealLayoutError::NotPow2 { n: self.n });
        }
        if self.real_stride == 0
            || self.spec_stride == 0
            || (self.howmany > 1 && (self.real_dist == 0 || self.spec_dist == 0))
        {
            return Err(RealLayoutError::ZeroStride);
        }
        let needed = self.real_span();
        if real_len < needed {
            return Err(RealLayoutError::RealOutOfBounds {
                needed,
                got: real_len,
            });
        }
        let needed = self.spec_span();
        if spec_len < needed {
            return Err(RealLayoutError::SpectrumOutOfBounds {
                needed,
                got: spec_len,
            });
        }
        Ok(())
    }
}

/// A batched/strided real transform plan: one [`RealFft1d`] driven over
/// every transform a [`RealManyDescriptor`] describes, gathering and
/// scattering through the strided layout.
pub struct RealFftMany {
    desc: RealManyDescriptor,
    plan: RealFft1d,
    gather_x: Vec<f64>,
    gather_s: Vec<Complex64>,
}

impl RealFftMany {
    pub fn new(desc: RealManyDescriptor) -> Result<Self, RealLayoutError> {
        // Array bounds are checked per call; the shape must be sane now.
        desc.validate(desc.real_span(), desc.spec_span())?;
        Ok(Self {
            desc,
            plan: RealFft1d::new(desc.n),
            gather_x: vec![0.0; desc.n],
            gather_s: vec![Complex64::ZERO; packed_spectrum_len(desc.n)],
        })
    }

    pub fn descriptor(&self) -> &RealManyDescriptor {
        &self.desc
    }

    /// Forward transforms of every batch member: strided real input →
    /// strided packed spectra.
    pub fn r2c_many(
        &mut self,
        input: &[f64],
        out: &mut [Complex64],
    ) -> Result<(), RealLayoutError> {
        self.desc.validate(input.len(), out.len())?;
        let d = self.desc;
        for t in 0..d.howmany {
            for (j, g) in self.gather_x.iter_mut().enumerate() {
                *g = input[t * d.real_dist + j * d.real_stride];
            }
            self.plan.r2c(&self.gather_x, &mut self.gather_s);
            for (k, v) in self.gather_s.iter().enumerate() {
                out[t * d.spec_dist + k * d.spec_stride] = *v;
            }
        }
        Ok(())
    }

    /// Inverse transforms of every batch member (unnormalized, like
    /// [`RealFft1d::c2r`]): strided packed spectra → strided reals.
    pub fn c2r_many(
        &mut self,
        spec: &[Complex64],
        out: &mut [f64],
    ) -> Result<(), RealLayoutError> {
        self.desc.validate(out.len(), spec.len())?;
        let d = self.desc;
        for t in 0..d.howmany {
            for (k, g) in self.gather_s.iter_mut().enumerate() {
                *g = spec[t * d.spec_dist + k * d.spec_stride];
            }
            self.plan.c2r(&self.gather_s, &mut self.gather_x);
            for (j, v) in self.gather_x.iter().enumerate() {
                out[t * d.real_dist + j * d.real_stride] = *v;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dft_naive;
    use bwfft_num::signal::SplitMix64;

    fn random_real(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
    }

    fn r2c_oracle(x: &[f64]) -> Vec<Complex64> {
        let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let full = dft_naive(&cx, Direction::Forward);
        full[..=x.len() / 2].to_vec()
    }

    #[test]
    fn r2c_matches_naive_half_spectrum() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let x = random_real(n, n as u64);
            let mut plan = RealFft1d::new(n);
            let mut got = vec![Complex64::ZERO; n / 2 + 1];
            plan.r2c(&x, &mut got);
            let want = r2c_oracle(&x);
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((*g - *w).abs() < 1e-10 * n as f64, "n={n} k={k}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn c2r_inverts_r2c_times_n() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = random_real(n, 7 + n as u64);
            let mut plan = RealFft1d::new(n);
            let mut spec = vec![Complex64::ZERO; plan.packed_len()];
            plan.r2c(&x, &mut spec);
            let mut back = vec![0.0; n];
            plan.c2r(&spec, &mut back);
            for (b, v) in back.iter().zip(&x) {
                assert!((b - v * n as f64).abs() < 1e-9 * n as f64);
            }
            plan.c2r_normalized(&spec, &mut back);
            for (b, v) in back.iter().zip(&x) {
                assert!((b - v).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn degenerate_sizes_are_exact() {
        let mut p1 = RealFft1d::new(1);
        let mut spec = vec![Complex64::ZERO; 1];
        p1.r2c(&[3.5], &mut spec);
        assert_eq!(spec[0], Complex64::new(3.5, 0.0));
        let mut back = [0.0];
        p1.c2r(&spec, &mut back);
        assert_eq!(back[0], 3.5);

        let mut p2 = RealFft1d::new(2);
        let mut spec = vec![Complex64::ZERO; 2];
        p2.r2c(&[1.0, 2.0], &mut spec);
        assert!((spec[0].re - 3.0).abs() < 1e-15 && spec[0].im.abs() < 1e-15);
        assert!((spec[1].re + 1.0).abs() < 1e-15 && spec[1].im.abs() < 1e-15);
    }

    #[test]
    fn packed_energy_obeys_parseval() {
        for n in [1usize, 2, 8, 64, 512] {
            let x = random_real(n, 99 + n as u64);
            let mut plan = RealFft1d::new(n);
            let mut spec = vec![Complex64::ZERO; plan.packed_len()];
            plan.r2c(&x, &mut spec);
            let ex: f64 = x.iter().map(|v| v * v).sum();
            let ey = packed_spectrum_energy(&spec, 1);
            assert!(
                (ey - n as f64 * ex).abs() < 1e-9 * (1.0 + n as f64 * ex),
                "n={n}: {ey} vs {}",
                n as f64 * ex
            );
        }
    }

    #[test]
    fn fused_conv_matches_direct_oracle() {
        for n in [2usize, 4, 16, 64] {
            let x = random_real(n, 3 + n as u64);
            let g = random_real(n, 17 + n as u64);
            let mut conv = SpectralConv1d::new(&g);
            let mut got = x.clone();
            conv.run(&mut got);
            let want = conv_direct(&x, &g);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9 * n as f64, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn conv_with_impulse_is_identity() {
        let n = 128;
        let x = random_real(n, 5);
        let mut delta = vec![0.0; n];
        delta[0] = 1.0;
        let mut conv = SpectralConv1d::new(&delta);
        let mut got = x.clone();
        conv.run(&mut got);
        for (a, b) in got.iter().zip(&x) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn fused_pass_equals_unfused_multiply() {
        // The fused pass must be bit-for-bit the same pipeline as
        // r2c → packed multiply → c2r, up to rounding.
        let n = 64;
        let x = random_real(n, 21);
        let g = random_real(n, 22);
        let mut conv = SpectralConv1d::new(&g);
        let mut fused = x.clone();
        conv.run(&mut fused);

        let mut plan = RealFft1d::new(n);
        let mut xs = vec![Complex64::ZERO; n / 2 + 1];
        let mut gs = vec![Complex64::ZERO; n / 2 + 1];
        plan.r2c(&x, &mut xs);
        plan.r2c(&g, &mut gs);
        for (a, b) in xs.iter_mut().zip(&gs) {
            *a *= *b;
        }
        let mut unfused = vec![0.0; n];
        plan.c2r(&xs, &mut unfused);
        for v in unfused.iter_mut() {
            *v /= n as f64;
        }
        for (a, b) in fused.iter().zip(&unfused) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn strided_batch_matches_contiguous() {
        let n = 32;
        let howmany = 3;
        let xs: Vec<Vec<f64>> = (0..howmany).map(|t| random_real(n, 40 + t as u64)).collect();

        // Contiguous reference.
        let mut contig = RealFftMany::new(RealManyDescriptor::contiguous(n, howmany))
            .expect("contiguous layout");
        let flat: Vec<f64> = xs.concat();
        let mut spec_c = vec![Complex64::ZERO; howmany * (n / 2 + 1)];
        contig.r2c_many(&flat, &mut spec_c).expect("contiguous r2c");

        // Interleaved layout: sample j of transform t at j·howmany + t.
        let desc = RealManyDescriptor {
            n,
            howmany,
            real_stride: howmany,
            real_dist: 1,
            spec_stride: howmany,
            spec_dist: 1,
        };
        let mut interleaved = vec![0.0; n * howmany];
        for (t, x) in xs.iter().enumerate() {
            for (j, v) in x.iter().enumerate() {
                interleaved[j * howmany + t] = *v;
            }
        }
        let mut many = RealFftMany::new(desc).expect("strided layout");
        let mut spec_s = vec![Complex64::ZERO; (n / 2 + 1) * howmany];
        many.r2c_many(&interleaved, &mut spec_s).expect("strided r2c");
        for t in 0..howmany {
            for k in 0..=n / 2 {
                let a = spec_c[t * (n / 2 + 1) + k];
                let b = spec_s[k * howmany + t];
                assert!((a - b).abs() < 1e-12, "t={t} k={k}");
            }
        }

        // And the strided inverse round-trips to n·x.
        let mut back = vec![0.0; n * howmany];
        many.c2r_many(&spec_s, &mut back).expect("strided c2r");
        for (a, b) in back.iter().zip(&interleaved) {
            assert!((a - b * n as f64).abs() < 1e-9 * n as f64);
        }
    }

    #[test]
    fn bad_layouts_are_typed_errors() {
        assert_eq!(
            RealManyDescriptor::contiguous(12, 1)
                .validate(12, 7)
                .expect_err("non-pow2"),
            RealLayoutError::NotPow2 { n: 12 }
        );
        let mut d = RealManyDescriptor::contiguous(8, 2);
        d.real_dist = 0;
        assert_eq!(d.validate(16, 10).expect_err("alias"), RealLayoutError::ZeroStride);
        let d = RealManyDescriptor::contiguous(8, 2);
        assert!(matches!(
            d.validate(15, 10).expect_err("short real"),
            RealLayoutError::RealOutOfBounds { needed: 16, got: 15 }
        ));
        assert!(matches!(
            d.validate(16, 9).expect_err("short spec"),
            RealLayoutError::SpectrumOutOfBounds { needed: 10, got: 9 }
        ));
    }
}
