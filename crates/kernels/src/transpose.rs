//! Cacheline-blocked reshape kernels: the `(L ⊗ I_μ)` transposition and
//! `(K ⊗ I_μ)` rotation of §III-A, plus the scattered store used by the
//! write matrices `W_{b,i}`.
//!
//! The paper's key observation is that the reshape must move whole
//! cachelines: the `⊗ I_μ` blocking turns an element-wise transpose
//! (one element per cacheline touched — 1/4 utilization for complex
//! doubles) into μ-element packet moves (full utilization), and lets
//! the store side use non-temporal instructions.

use crate::simd;
use bwfft_num::Complex64;
use bwfft_spl::gather_scatter::{StagePerm, WriteMatrix};
use bwfft_spl::PermOp;

/// Out-of-place blocked transpose: input viewed as `rows × cols`
/// packets of `blk` elements; output is the packet-transposed array.
/// Temporal stores.
pub fn transpose_blocked(
    src: &[Complex64],
    dst: &mut [Complex64],
    rows: usize,
    cols: usize,
    blk: usize,
) {
    assert_eq!(src.len(), rows * cols * blk);
    assert_eq!(dst.len(), src.len());
    for i in 0..rows {
        for j in 0..cols {
            let s = (i * cols + j) * blk;
            let d = (j * rows + i) * blk;
            dst[d..d + blk].copy_from_slice(&src[s..s + blk]);
        }
    }
}

/// Out-of-place blocked rotation `K^{k,n}_m ⊗ I_blk` (cube of packets).
pub fn rotate_blocked(
    src: &[Complex64],
    dst: &mut [Complex64],
    k: usize,
    n: usize,
    m: usize,
    blk: usize,
) {
    assert_eq!(src.len(), k * n * m * blk);
    assert_eq!(dst.len(), src.len());
    for z in 0..k {
        for y in 0..n {
            let row = (z * n + y) * m;
            for x in 0..m {
                let s = (row + x) * blk;
                let d = (x * k * n + z * n + y) * blk;
                dst[d..d + blk].copy_from_slice(&src[s..s + blk]);
            }
        }
    }
}

/// Stores a computed buffer block back to main memory through a write
/// matrix, moving `μ`-packets with non-temporal stores when available —
/// the store half of the soft-DMA engine.
///
/// `range` selects the packet sub-range this thread owns (in packets),
/// so `p_d` data threads can split one store among themselves (§III-C).
pub fn store_through_write_matrix(
    buf: &[Complex64],
    dst: &mut [Complex64],
    w: &WriteMatrix,
    range: core::ops::Range<usize>,
    non_temporal: bool,
) {
    let run = effective_run(&w.perm, w.b);
    let packets = w.b / run;
    assert!(range.end <= packets);
    let base = w.i * w.b;
    for t in range {
        let src_off = t * run;
        let d = w.perm.dst_of_src(base + src_off);
        let s_slice = &buf[src_off..src_off + run];
        let d_slice = &mut dst[d..d + run];
        if non_temporal {
            simd::copy_nt(s_slice, d_slice);
        } else {
            d_slice.copy_from_slice(s_slice);
        }
    }
}

/// Number of packets a write matrix decomposes its block into.
pub fn write_matrix_packets(w: &WriteMatrix) -> usize {
    w.b / effective_run(&w.perm, w.b)
}

fn effective_run(perm: &StagePerm, b: usize) -> usize {
    let mut run = perm.contiguous_run().clamp(1, b);
    if !b.is_multiple_of(run) {
        run = 1;
    }
    run
}

/// Loads a contiguous block from main memory into the buffer (the read
/// matrix `R_{b,i}`), optionally splitting across data threads.
pub fn load_contiguous(
    src: &[Complex64],
    buf: &mut [Complex64],
    block_start: usize,
    range: core::ops::Range<usize>,
) {
    buf[range.clone()].copy_from_slice(&src[block_start + range.start..block_start + range.end]);
}

/// Convenience: full-array blocked rotation via a [`PermOp`], used by
/// tests and the baselines.
pub fn apply_perm(src: &[Complex64], dst: &mut [Complex64], perm: PermOp) {
    perm.permute(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_num::signal::random_complex;
    use bwfft_num::AlignedVec;
    use bwfft_spl::gather_scatter::fft3d_stage_perms;

    #[test]
    fn blocked_transpose_matches_permop() {
        let (r, c, blk) = (6usize, 5usize, 4usize);
        let x = random_complex(r * c * blk, 50);
        let mut got = vec![Complex64::ZERO; x.len()];
        transpose_blocked(&x, &mut got, r, c, blk);
        let mut expect = vec![Complex64::ZERO; x.len()];
        PermOp::BlockedL { rows: r, cols: c, blk }.permute(&x, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn blocked_rotation_matches_permop() {
        let (k, n, m, blk) = (3usize, 4usize, 5usize, 2usize);
        let x = random_complex(k * n * m * blk, 51);
        let mut got = vec![Complex64::ZERO; x.len()];
        rotate_blocked(&x, &mut got, k, n, m, blk);
        let mut expect = vec![Complex64::ZERO; x.len()];
        PermOp::BlockedK { k, n, m, blk }.permute(&x, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn store_through_write_matrix_full_range() {
        let (k, n, m, mu) = (2usize, 4, 16, 4);
        let total = k * n * m;
        let b = 32;
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let x = random_complex(total, 52);
        // Reference: scatter every block with WriteMatrix::store.
        let mut expect = AlignedVec::<Complex64>::zeroed(total);
        let mut got = AlignedVec::<Complex64>::zeroed(total);
        for i in 0..total / b {
            let w = WriteMatrix::new(perm, b, i);
            let block = &x[i * b..(i + 1) * b];
            w.store(block, &mut expect);
            let packets = write_matrix_packets(&w);
            store_through_write_matrix(block, &mut got, &w, 0..packets, true);
        }
        assert_eq!(&got[..], &expect[..]);
    }

    #[test]
    fn store_split_across_threads_covers_block() {
        let (k, n, m, mu) = (2usize, 2, 16, 4);
        let total = k * n * m;
        let b = 16;
        let perm = fft3d_stage_perms(k, n, m, mu)[1];
        let x = random_complex(total, 53);
        let mut whole = AlignedVec::<Complex64>::zeroed(total);
        let mut split = AlignedVec::<Complex64>::zeroed(total);
        for i in 0..total / b {
            let w = WriteMatrix::new(perm, b, i);
            let block = &x[i * b..(i + 1) * b];
            let packets = write_matrix_packets(&w);
            store_through_write_matrix(block, &mut whole, &w, 0..packets, false);
            // Two "data threads" each store half the packets.
            let mid = packets / 2;
            store_through_write_matrix(block, &mut split, &w, 0..mid, true);
            store_through_write_matrix(block, &mut split, &w, mid..packets, true);
        }
        assert_eq!(&split[..], &whole[..]);
    }

    #[test]
    fn load_contiguous_ranges_partition() {
        let src = random_complex(64, 54);
        let mut buf = vec![Complex64::ZERO; 16];
        load_contiguous(&src, &mut buf, 32, 0..8);
        load_contiguous(&src, &mut buf, 32, 8..16);
        assert_eq!(&buf[..], &src[32..48]);
    }

    #[test]
    fn three_rotations_return_home() {
        // Applying the three blocked stage rotations in sequence is the
        // identity — the kernel-level version of the SPL test.
        let (k, n, m, mu) = (4usize, 2, 8, 2);
        let mp = m / mu;
        let x = random_complex(k * n * m, 55);
        let mut t1 = vec![Complex64::ZERO; x.len()];
        let mut t2 = vec![Complex64::ZERO; x.len()];
        let mut t3 = vec![Complex64::ZERO; x.len()];
        rotate_blocked(&x, &mut t1, k, n, mp, mu);
        rotate_blocked(&t1, &mut t2, mp, k, n, mu);
        rotate_blocked(&t2, &mut t3, n, mp, k, mu);
        assert_eq!(t3, x);
    }
}
