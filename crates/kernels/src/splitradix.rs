//! Split-radix FFT (Duhamel–Hollmann).
//!
//! The lowest-arithmetic classical power-of-two FFT: it splits
//! `DFT_N` into one half-size transform of the even samples and two
//! quarter-size transforms of the odd cosets, saving ~25% of the
//! multiplies of radix-2. Included as the flop-count reference point
//! for the kernel suite — in the paper's regime the transforms are
//! bandwidth-bound and kernel flops rarely gate, which the roofline
//! harness (`ext_roofline`) makes precise.
//!
//! Recurrence (`w = ω_N^k`, `k < N/4`):
//!
//! ```text
//! X[k]        = U[k]      + (w^k Z[k] + w^{3k} Z'[k])
//! X[k+N/2]    = U[k]      − (w^k Z[k] + w^{3k} Z'[k])
//! X[k+N/4]    = U[k+N/4]  − i(w^k Z[k] − w^{3k} Z'[k])
//! X[k+3N/4]   = U[k+N/4]  + i(w^k Z[k] − w^{3k} Z'[k])
//! ```
//!
//! with `U = DFT_{N/2}(x_even)`, `Z = DFT_{N/4}(x_{4j+1})`,
//! `Z' = DFT_{N/4}(x_{4j+3})`.

use crate::Direction;
use bwfft_num::Complex64;

/// Precomputed per-level twiddles: for each recursion size `n`
/// (descending powers of two ≥ 4), the pairs `(ω_n^k, ω_n^{3k})` for
/// `k < n/4`.
#[derive(Clone, Debug)]
pub struct SplitRadixTwiddles {
    pub n: usize,
    pub dir: Direction,
    /// `tables[i]` serves size `n >> i`.
    tables: Vec<Vec<(Complex64, Complex64)>>,
}

impl SplitRadixTwiddles {
    pub fn new(n: usize, dir: Direction) -> Self {
        assert!(bwfft_num::is_pow2(n), "split-radix requires a power of two");
        let conj = |w: Complex64| match dir {
            Direction::Forward => w,
            Direction::Inverse => w.conj(),
        };
        let mut tables = Vec::new();
        let mut len = n;
        while len >= 4 {
            let mut t = Vec::with_capacity(len / 4);
            for k in 0..len / 4 {
                t.push((
                    conj(Complex64::root_of_unity(k as i64, len as u64)),
                    conj(Complex64::root_of_unity(3 * k as i64, len as u64)),
                ));
            }
            tables.push(t);
            len /= 2;
        }
        Self { n, dir, tables }
    }

    fn table_for(&self, len: usize) -> &[(Complex64, Complex64)] {
        let level = (self.n / len).trailing_zeros() as usize;
        &self.tables[level]
    }
}

/// Out-of-place split-radix FFT: `out = DFT_n(x)` where `x` is read at
/// `stride` (use 1 for a packed vector).
pub fn splitradix(
    x: &[Complex64],
    stride: usize,
    out: &mut [Complex64],
    n: usize,
    tw: &SplitRadixTwiddles,
) {
    debug_assert!(out.len() == n);
    match n {
        1 => out[0] = x[0],
        2 => {
            let (a, b) = (x[0], x[stride]);
            out[0] = a + b;
            out[1] = a - b;
        }
        _ => {
            let q = n / 4;
            // U = DFT_{n/2}(even), Z/Z' = DFT_{n/4}(odd cosets).
            let mut u = vec![Complex64::ZERO; n / 2];
            let mut z = vec![Complex64::ZERO; q];
            let mut zp = vec![Complex64::ZERO; q];
            splitradix(x, 2 * stride, &mut u, n / 2, tw);
            splitradix(&x[stride..], 4 * stride, &mut z, q, tw);
            splitradix(&x[3 * stride..], 4 * stride, &mut zp, q, tw);
            let table = tw.table_for(n);
            let rotate = |c: Complex64| match tw.dir {
                // ∓i rotation flips with direction.
                Direction::Forward => c.mul_neg_i(),
                Direction::Inverse => c.mul_i(),
            };
            for k in 0..q {
                let (w1, w3) = table[k];
                let a = z[k] * w1;
                let b = zp[k] * w3;
                let sum = a + b;
                let dif = rotate(a - b);
                out[k] = u[k] + sum;
                out[k + n / 2] = u[k] - sum;
                out[k + q] = u[k + q] + dif;
                out[k + 3 * q] = u[k + q] - dif;
            }
        }
    }
}

/// Convenience plan wrapper.
pub struct SplitRadixFft {
    tw: SplitRadixTwiddles,
    scratch: Vec<Complex64>,
}

impl SplitRadixFft {
    pub fn new(n: usize, dir: Direction) -> Self {
        Self {
            tw: SplitRadixTwiddles::new(n, dir),
            scratch: vec![Complex64::ZERO; n],
        }
    }

    pub fn len(&self) -> usize {
        self.tw.n
    }

    pub fn is_empty(&self) -> bool {
        self.tw.n == 0
    }

    /// Transforms `data` in place (unnormalized).
    pub fn run(&mut self, data: &mut [Complex64]) {
        let n = self.tw.n;
        assert_eq!(data.len(), n);
        splitradix(data, 1, &mut self.scratch, n, &self.tw);
        data.copy_from_slice(&self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dft_naive;
    use crate::Fft1d;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[test]
    fn matches_naive_all_sizes() {
        for lg in 0..=11 {
            let n = 1usize << lg;
            let x = random_complex(n, 600 + lg as u64);
            let mut got = x.clone();
            SplitRadixFft::new(n, Direction::Forward).run(&mut got);
            assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
        }
    }

    #[test]
    fn inverse_matches_naive() {
        let n = 256;
        let x = random_complex(n, 601);
        let mut got = x.clone();
        SplitRadixFft::new(n, Direction::Inverse).run(&mut got);
        assert_fft_close(&got, &dft_naive(&x, Direction::Inverse));
    }

    #[test]
    fn agrees_with_stockham_at_scale() {
        let n = 4096;
        let x = random_complex(n, 602);
        let mut a = x.clone();
        SplitRadixFft::new(n, Direction::Forward).run(&mut a);
        let mut b = x.clone();
        Fft1d::new(n, Direction::Forward).run(&mut b);
        assert_fft_close(&a, &b);
    }

    #[test]
    fn roundtrip() {
        let n = 512;
        let x = random_complex(n, 603);
        let mut data = x.clone();
        SplitRadixFft::new(n, Direction::Forward).run(&mut data);
        SplitRadixFft::new(n, Direction::Inverse).run(&mut data);
        let back: Vec<Complex64> = data.iter().map(|c| c.scale(1.0 / n as f64)).collect();
        assert_fft_close(&back, &x);
    }

    #[test]
    fn plan_reuse() {
        let mut p = SplitRadixFft::new(128, Direction::Forward);
        for seed in 0..3 {
            let x = random_complex(128, 604 + seed);
            let mut got = x.clone();
            p.run(&mut got);
            assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
        }
    }
}
