//! Batched pencil kernels — the paper's "Compute" task (§III-B).
//!
//! After a block of `b` elements has been loaded into the shared
//! buffer, the compute threads apply `I_{b/m} ⊗ DFT_m` in place
//! (stage 1), or `I_{b/(nμ)} ⊗ DFT_n ⊗ I_μ` (later stages, where the
//! blocked reshape has already grouped each pencil into `μ`-wide
//! cacheline lanes).

use crate::radix4::{stockham_radix4_strided, Radix4Twiddles};
use crate::stockham::stockham_strided;
use crate::twiddle::StockhamTwiddles;
use crate::Direction;
use bwfft_num::{AlignedVec, Complex64};

/// Which 1D pencil kernel a batch (and hence a plan) runs. Both
/// variants compute the same strided form `DFT_n ⊗ I_s`; they differ
/// in pass count and rounding, so results agree to FFT tolerance but
/// are not bit-identical. This is one of the autotuner's search-space
/// axes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Radix-2 Stockham autosort — the default and the variant every
    /// bitwise regression test in the workspace assumes.
    #[default]
    Stockham,
    /// Radix-4 Stockham: half the ping-pong passes, fewer twiddle
    /// multiplies; odd log2 sizes take one leading radix-2 stage.
    StockhamRadix4,
}

impl KernelVariant {
    /// Short stable token used by the wisdom text format and CLI.
    pub fn token(self) -> &'static str {
        match self {
            KernelVariant::Stockham => "r2",
            KernelVariant::StockhamRadix4 => "r4",
        }
    }

    /// Inverse of [`token`](Self::token).
    pub fn from_token(tok: &str) -> Option<Self> {
        match tok {
            "r2" => Some(KernelVariant::Stockham),
            "r4" => Some(KernelVariant::StockhamRadix4),
            _ => None,
        }
    }

    /// All variants, for search-space enumeration.
    pub fn all() -> [KernelVariant; 2] {
        [KernelVariant::Stockham, KernelVariant::StockhamRadix4]
    }
}

/// Twiddle tables for whichever kernel variant the batch dispatches to.
enum Tables {
    Stockham(StockhamTwiddles),
    Radix4(Radix4Twiddles),
}

/// Reusable kernel for `I_c ⊗ DFT_m ⊗ I_s` applied in place to a
/// buffer of `c·m·s` elements: `c` independent pencils, each a DFT of
/// size `m` vectorized across `s` lanes (`s = 1` for plain contiguous
/// pencils, `s = μ` for the cacheline-blocked form).
///
/// ```
/// use bwfft_kernels::{batch::BatchFft, Direction};
/// use bwfft_num::{signal, Complex64};
///
/// // Two 8-point pencils transformed in one call.
/// let mut buf = signal::impulse(16, 0); // impulse in pencil 0 only
/// BatchFft::new(8, 1, Direction::Forward).run(&mut buf);
/// assert!((buf[3].re - 1.0).abs() < 1e-12);  // flat spectrum
/// assert!(buf[8].abs() < 1e-12);             // pencil 1 was zero
/// ```
pub struct BatchFft {
    m: usize,
    s: usize,
    tables: Tables,
    scratch: AlignedVec<Complex64>,
}

impl BatchFft {
    pub fn new(m: usize, s: usize, dir: Direction) -> Self {
        Self::with_variant(m, s, dir, KernelVariant::Stockham)
    }

    /// Like [`new`](Self::new) but selecting the 1D kernel variant —
    /// the hook the autotuner uses to carry its kernel choice into the
    /// executors.
    pub fn with_variant(m: usize, s: usize, dir: Direction, variant: KernelVariant) -> Self {
        assert!(m >= 1 && s >= 1);
        let tables = match variant {
            KernelVariant::Stockham => Tables::Stockham(StockhamTwiddles::new(m, dir)),
            KernelVariant::StockhamRadix4 => Tables::Radix4(Radix4Twiddles::new(m, dir)),
        };
        Self {
            m,
            s,
            tables,
            scratch: AlignedVec::zeroed(m * s),
        }
    }

    /// The variant this batch dispatches to.
    pub fn variant(&self) -> KernelVariant {
        match self.tables {
            Tables::Stockham(_) => KernelVariant::Stockham,
            Tables::Radix4(_) => KernelVariant::StockhamRadix4,
        }
    }

    #[inline]
    fn apply(&mut self, pencil: &mut [Complex64]) {
        match &self.tables {
            Tables::Stockham(tw) => {
                stockham_strided(pencil, &mut self.scratch, self.m, self.s, tw)
            }
            Tables::Radix4(tw) => {
                stockham_radix4_strided(pencil, &mut self.scratch, self.m, self.s, tw)
            }
        }
    }

    /// Pencil length.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Vector lanes per pencil.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.s
    }

    /// Elements consumed per pencil (`m·s`).
    #[inline]
    pub fn pencil_elems(&self) -> usize {
        self.m * self.s
    }

    /// Applies the batch to `buf` in place. `buf.len()` must be a
    /// multiple of `m·s`; the number of pencils is inferred.
    pub fn run(&mut self, buf: &mut [Complex64]) {
        let chunk = self.pencil_elems();
        assert!(
            buf.len().is_multiple_of(chunk),
            "buffer ({}) not a multiple of pencil size ({chunk})",
            buf.len()
        );
        for pencil in buf.chunks_exact_mut(chunk) {
            self.apply(pencil);
        }
    }

    /// Applies the batch to a disjoint sub-range of pencils — the unit
    /// of work one compute thread takes when the batch is parallelized
    /// across `p_c` threads (§III-C). `first` and `count` are in
    /// pencils.
    pub fn run_range(&mut self, buf: &mut [Complex64], first: usize, count: usize) {
        let chunk = self.pencil_elems();
        let lo = first * chunk;
        let hi = lo + count * chunk;
        assert!(hi <= buf.len());
        for pencil in buf[lo..hi].chunks_exact_mut(chunk) {
            self.apply(pencil);
        }
    }

    /// Estimated flop count for one full buffer pass, using the paper's
    /// `5·N·log2 N` pseudo-flop convention per pencil.
    pub fn pseudo_flops(&self, buf_elems: usize) -> f64 {
        let pencils = (buf_elems / self.pencil_elems()) as f64;
        let n = (self.m * self.s) as f64;
        // Each pencil transforms m points across s lanes: the work is
        // s · 5·m·log2(m), i.e. 5·(m·s)·log2(m).
        pencils * 5.0 * n * (self.m.max(2) as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;
    use bwfft_spl::Formula;

    #[test]
    fn contiguous_batch_matches_spl() {
        // I_4 ⊗ DFT_8.
        let (c, m) = (4usize, 8usize);
        let x = random_complex(c * m, 40);
        let mut buf = x.clone();
        BatchFft::new(m, 1, Direction::Forward).run(&mut buf);
        let expect = Formula::tensor(Formula::identity(c), Formula::dft(m)).apply_vec(&x);
        assert_fft_close(&buf, &expect);
    }

    #[test]
    fn strided_batch_matches_spl() {
        // I_3 ⊗ DFT_8 ⊗ I_4 — the cacheline-blocked pencil form.
        let (c, m, mu) = (3usize, 8usize, 4usize);
        let x = random_complex(c * m * mu, 41);
        let mut buf = x.clone();
        BatchFft::new(m, mu, Direction::Forward).run(&mut buf);
        let expect = Formula::tensor(
            Formula::identity(c),
            Formula::tensor(Formula::dft(m), Formula::identity(mu)),
        )
        .apply_vec(&x);
        assert_fft_close(&buf, &expect);
    }

    #[test]
    fn range_runs_partition_the_batch() {
        let (c, m) = (8usize, 16usize);
        let x = random_complex(c * m, 42);
        let mut whole = x.clone();
        BatchFft::new(m, 1, Direction::Forward).run(&mut whole);
        // Two "threads" each take half the pencils.
        let mut halves = x.clone();
        let mut k0 = BatchFft::new(m, 1, Direction::Forward);
        let mut k1 = BatchFft::new(m, 1, Direction::Forward);
        k0.run_range(&mut halves, 0, 4);
        k1.run_range(&mut halves, 4, 4);
        assert_eq!(whole, halves);
    }

    #[test]
    fn inverse_batch_roundtrips() {
        let (c, m, mu) = (2usize, 32usize, 4usize);
        let x = random_complex(c * m * mu, 43);
        let mut buf = x.clone();
        BatchFft::new(m, mu, Direction::Forward).run(&mut buf);
        BatchFft::new(m, mu, Direction::Inverse).run(&mut buf);
        let scaled: Vec<Complex64> = buf.iter().map(|v| v.scale(1.0 / m as f64)).collect();
        assert_fft_close(&scaled, &x);
    }

    #[test]
    fn radix4_variant_matches_default_to_fft_tolerance() {
        // Same strided batch through both kernel variants: equal up to
        // rounding (radix-4 reorders the arithmetic), both directions,
        // even and odd log2 sizes.
        for m in [8usize, 16, 32] {
            for dir in [Direction::Forward, Direction::Inverse] {
                let (c, mu) = (3usize, 4usize);
                let x = random_complex(c * m * mu, 44);
                let mut r2 = x.clone();
                let mut r4 = x.clone();
                BatchFft::with_variant(m, mu, dir, KernelVariant::Stockham).run(&mut r2);
                BatchFft::with_variant(m, mu, dir, KernelVariant::StockhamRadix4).run(&mut r4);
                assert_fft_close(&r4, &r2);
            }
        }
    }

    #[test]
    fn variant_tokens_roundtrip() {
        for v in KernelVariant::all() {
            assert_eq!(KernelVariant::from_token(v.token()), Some(v));
        }
        assert_eq!(KernelVariant::from_token("nope"), None);
        assert_eq!(KernelVariant::default(), KernelVariant::Stockham);
    }

    #[test]
    fn pseudo_flops_formula() {
        let k = BatchFft::new(512, 1, Direction::Forward);
        let b = 131_072; // paper's example buffer
        let flops = k.pseudo_flops(b);
        // 256 pencils · 5·512·9 flops each.
        assert_eq!(flops, 256.0 * 5.0 * 512.0 * 9.0);
    }
}
