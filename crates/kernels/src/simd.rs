//! SIMD kernels: AVX2/FMA butterflies and non-temporal streaming copy.
//!
//! The paper's kernels are SPIRAL-generated AVX/SSE code; here the hot
//! inner loops are hand-written with `core::arch` intrinsics, selected
//! once per call via runtime feature detection, with portable fallbacks
//! that compile everywhere.
//!
//! Non-temporal stores (`_mm256_stream_pd`, the `movntpd` family) are
//! the §IV mechanism that lets the write matrices `W_{b,i}` push
//! cachelines straight to DRAM without read-for-ownership traffic or
//! cache pollution.

use bwfft_num::Complex64;

/// True if the AVX2+FMA fast paths can be used on this host.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 butterfly over one stride-run: `lo = a + b`, `hi = (a − b)·w`,
/// two complexes per vector.
///
/// # Safety
/// Caller must ensure [`avx2_available`] returned true. Slices must all
/// have equal lengths.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn butterfly_row_avx2(
    a: &[Complex64],
    b: &[Complex64],
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    w: Complex64,
) {
    use core::arch::x86_64::*;
    let n = a.len();
    debug_assert!(b.len() == n && lo.len() == n && hi.len() == n);
    let wr = _mm256_set1_pd(w.re);
    let wi = _mm256_set1_pd(w.im);
    let pairs = n / 2;
    let ap = a.as_ptr() as *const f64;
    let bp = b.as_ptr() as *const f64;
    let lp = lo.as_mut_ptr() as *mut f64;
    let hp = hi.as_mut_ptr() as *mut f64;
    for i in 0..pairs {
        let off = 4 * i;
        let av = _mm256_loadu_pd(ap.add(off));
        let bv = _mm256_loadu_pd(bp.add(off));
        let sum = _mm256_add_pd(av, bv);
        let dif = _mm256_sub_pd(av, bv);
        // Complex multiply (dif · w) on [re0 im0 re1 im1] lanes:
        //   re' = re·wr − im·wi,  im' = im·wr + re·wi
        // fmaddsub computes a·b ∓ c with subtract on even lanes:
        //   even: dif.re·wr − (dif.im·wi)   ✓
        //   odd:  dif.im·wr + (dif.re·wi)   ✓
        let swapped = _mm256_permute_pd(dif, 0b0101);
        let t = _mm256_mul_pd(swapped, wi);
        let prod = _mm256_fmaddsub_pd(dif, wr, t);
        _mm256_storeu_pd(lp.add(off), sum);
        _mm256_storeu_pd(hp.add(off), prod);
    }
    // Scalar tail for odd strides.
    for i in 2 * pairs..n {
        let sum = a[i] + b[i];
        let dif = a[i] - b[i];
        lo[i] = sum;
        hi[i] = dif * w;
    }
}

/// Pointwise complex multiply-accumulate of a twiddle diagonal:
/// `data[i] *= diag[i]`, AVX2-accelerated when available.
pub fn apply_diag(data: &mut [Complex64], diag: &[Complex64]) {
    assert_eq!(data.len(), diag.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // Safety: feature checked.
        unsafe { apply_diag_avx2(data, diag) };
        return;
    }
    for (d, w) in data.iter_mut().zip(diag) {
        *d *= *w;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn apply_diag_avx2(data: &mut [Complex64], diag: &[Complex64]) {
    use core::arch::x86_64::*;
    let n = data.len();
    let dp = data.as_mut_ptr() as *mut f64;
    let wp = diag.as_ptr() as *const f64;
    let pairs = n / 2;
    for i in 0..pairs {
        let off = 4 * i;
        let x = _mm256_loadu_pd(dp.add(off));
        let w = _mm256_loadu_pd(wp.add(off));
        // x·w with per-lane complex layout: duplicate w.re and w.im.
        let wr = _mm256_unpacklo_pd(w, w); // [wr0 wr0 wr1 wr1]
        let wi = _mm256_unpackhi_pd(w, w); // [wi0 wi0 wi1 wi1]
        let xs = _mm256_permute_pd(x, 0b0101);
        let t = _mm256_mul_pd(xs, wi);
        let prod = _mm256_fmaddsub_pd(x, wr, t);
        _mm256_storeu_pd(dp.add(off), prod);
    }
    for i in 2 * pairs..n {
        data[i] *= diag[i];
    }
}

/// Streaming (non-temporal) copy: `dst ← src` bypassing the cache when
/// the destination is 32-byte aligned and AVX is available; otherwise a
/// plain `copy_from_slice`. Used by the store side of the soft-DMA
/// engine (`W_{b,i}` writes, §IV "non-temporal loads and stores").
pub fn copy_nt(src: &[Complex64], dst: &mut [Complex64]) {
    assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() && (dst.as_ptr() as usize).is_multiple_of(32) {
        // Safety: feature + alignment checked.
        unsafe { copy_nt_avx(src, dst) };
        return;
    }
    dst.copy_from_slice(src);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn copy_nt_avx(src: &[Complex64], dst: &mut [Complex64]) {
    use core::arch::x86_64::*;
    let n = src.len();
    let sp = src.as_ptr() as *const f64;
    let dp = dst.as_mut_ptr() as *mut f64;
    let pairs = n / 2;
    for i in 0..pairs {
        let off = 4 * i;
        let v = _mm256_loadu_pd(sp.add(off));
        _mm256_stream_pd(dp.add(off), v);
    }
    dst[2 * pairs..n].copy_from_slice(&src[2 * pairs..n]);
    // Order the streaming stores before any subsequent loads of the
    // destination (movnt stores are weakly ordered).
    _mm_sfence();
}

/// Issues a memory fence that orders any outstanding non-temporal
/// stores; no-op on non-x86 targets.
#[inline]
pub fn nt_fence() {
    #[cfg(target_arch = "x86_64")]
    // Safety: sfence has no preconditions.
    unsafe {
        core::arch::x86_64::_mm_sfence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_num::signal::random_complex;
    use bwfft_num::AlignedVec;

    #[test]
    fn butterfly_avx_matches_scalar() {
        if !avx2_available() {
            return;
        }
        for n in [1usize, 2, 3, 7, 8, 64, 65] {
            let a = random_complex(n, 1);
            let b = random_complex(n, 2);
            let w = Complex64::new(0.6, -0.8);
            let mut lo_s = vec![Complex64::ZERO; n];
            let mut hi_s = vec![Complex64::ZERO; n];
            crate::stockham::butterfly_row_scalar(&a, &b, &mut lo_s, &mut hi_s, w);
            let mut lo_v = vec![Complex64::ZERO; n];
            let mut hi_v = vec![Complex64::ZERO; n];
            #[cfg(target_arch = "x86_64")]
            unsafe {
                butterfly_row_avx2(&a, &b, &mut lo_v, &mut hi_v, w)
            };
            for i in 0..n {
                assert!((lo_s[i] - lo_v[i]).abs() < 1e-14, "n={n} lo[{i}]");
                assert!((hi_s[i] - hi_v[i]).abs() < 1e-14, "n={n} hi[{i}]");
            }
        }
    }

    #[test]
    fn apply_diag_matches_scalar_multiply() {
        for n in [1usize, 4, 17, 256] {
            let mut data = random_complex(n, 3);
            let diag = random_complex(n, 4);
            let expect: Vec<Complex64> =
                data.iter().zip(&diag).map(|(a, b)| *a * *b).collect();
            apply_diag(&mut data, &diag);
            for i in 0..n {
                assert!((data[i] - expect[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn copy_nt_copies_exactly() {
        for n in [0usize, 1, 4, 63, 64, 1000] {
            let src = random_complex(n, 5);
            let mut dst = AlignedVec::<Complex64>::zeroed(n);
            copy_nt(&src, &mut dst);
            assert_eq!(&dst[..], &src[..]);
        }
    }

    #[test]
    fn copy_nt_unaligned_destination_falls_back() {
        let src = random_complex(7, 6);
        let mut backing = AlignedVec::<Complex64>::zeroed(8);
        // Offset by one complex (16 B) — not 32-B aligned.
        let dst = &mut backing[1..8];
        copy_nt(&src, dst);
        assert_eq!(dst, &src[..]);
    }
}
