//! Stockham autosort FFT.
//!
//! The Stockham algorithm is the natural kernel for the paper's compute
//! task: it needs no bit-reversal pass (the reordering is folded into
//! the ping-pong between the two halves of a scratch pair), both its
//! reads and its writes are contiguous runs within each stage, and its
//! strided formulation computes exactly the `DFT_n ⊗ I_s` construct the
//! blocked decompositions of §III-A call for — `s = μ` gives the
//! cacheline-vectorized pencil the paper computes after a blocked
//! reshape.
//!
//! The recurrence (decimation in frequency, length `len`, stride `s`):
//!
//! ```text
//! for p in 0..len/2:
//!   w = ω_len^p
//!   for q in 0..s:
//!     a = x[s·p + q];  b = x[s·(p + len/2) + q]
//!     y[s·(2p)   + q] = a + b
//!     y[s·(2p+1) + q] = (a − b)·w
//! then len ← len/2, s ← 2s, swap(x, y)
//! ```

use crate::simd;
use crate::twiddle::StockhamTwiddles;
use bwfft_num::Complex64;

/// Computes `(DFT_n ⊗ I_s) · data` in place (using `scratch`), where
/// `data.len() == n·s` and `tw` was built for size `n`.
///
/// With `s = 1` this is a plain 1D FFT of size `n`. The transform is
/// unnormalized; direction comes from the twiddle table.
pub fn stockham_strided(
    data: &mut [Complex64],
    scratch: &mut [Complex64],
    n: usize,
    s: usize,
    tw: &StockhamTwiddles,
) {
    assert_eq!(tw.n, n, "twiddle table size mismatch");
    assert_eq!(data.len(), n * s, "data length must be n·s");
    assert_eq!(scratch.len(), n * s, "scratch length must be n·s");
    if n == 1 {
        return;
    }

    let use_avx = simd::avx2_available();
    let mut len = n;
    let mut stride = s;
    let mut src_is_data = true;
    for q in 0..tw.num_stages() {
        let table = tw.stage(q);
        let (src, dst): (&mut [Complex64], &mut [Complex64]) = if src_is_data {
            (&mut *data, &mut *scratch)
        } else {
            (&mut *scratch, &mut *data)
        };
        stage(src, dst, len, stride, table, use_avx);
        len /= 2;
        stride *= 2;
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

/// One DIF stage over the whole `len·stride`-element array.
#[inline]
fn stage(
    src: &[Complex64],
    dst: &mut [Complex64],
    len: usize,
    stride: usize,
    table: &[Complex64],
    use_avx: bool,
) {
    let half = len / 2;
    debug_assert_eq!(table.len(), half);
    for (p, &w) in table.iter().enumerate().take(half) {
        let a_base = stride * p;
        let b_base = stride * (p + half);
        let lo_base = stride * 2 * p;
        let hi_base = stride * (2 * p + 1);
        let (a_run, b_run) = (&src[a_base..a_base + stride], &src[b_base..b_base + stride]);
        // The two destination runs are adjacent: [lo..lo+stride) then
        // [hi..hi+stride). Split once, no per-element bounds checks.
        let (lo_run, hi_run) = dst[lo_base..hi_base + stride].split_at_mut(stride);
        if use_avx && stride >= 2 {
            // Safety: avx2_available() checked by the caller.
            unsafe { simd::butterfly_row_avx2(a_run, b_run, lo_run, hi_run, w) };
        } else {
            butterfly_row_scalar(a_run, b_run, lo_run, hi_run, w);
        }
    }
}

/// Portable butterfly over one stride-run: `lo = a + b`,
/// `hi = (a − b)·w`. Written so LLVM can vectorize the loop.
#[inline]
pub fn butterfly_row_scalar(
    a: &[Complex64],
    b: &[Complex64],
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    w: Complex64,
) {
    for (((av, bv), lv), hv) in a.iter().zip(b).zip(lo.iter_mut()).zip(hi.iter_mut()) {
        let sum = *av + *bv;
        let dif = *av - *bv;
        *lv = sum;
        *hv = dif * w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dft_naive;
    use crate::Direction;
    use bwfft_num::compare::{assert_fft_close, rel_l2_error};
    use bwfft_num::signal::{complex_tone, random_complex};

    fn run(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
        let n = x.len();
        let mut data = x.to_vec();
        let mut scratch = vec![Complex64::ZERO; n];
        let tw = StockhamTwiddles::new(n, dir);
        stockham_strided(&mut data, &mut scratch, n, 1, &tw);
        data
    }

    #[test]
    fn matches_naive_dft_all_pow2_sizes() {
        for lg in 1..=12 {
            let n = 1usize << lg;
            let x = random_complex(n, 1000 + lg as u64);
            let got = run(&x, Direction::Forward);
            let expect = dft_naive(&x, Direction::Forward);
            assert_fft_close(&got, &expect);
        }
    }

    #[test]
    fn inverse_matches_naive() {
        let x = random_complex(256, 2);
        let got = run(&x, Direction::Inverse);
        let expect = dft_naive(&x, Direction::Inverse);
        assert_fft_close(&got, &expect);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 1024;
        let x = random_complex(n, 3);
        let y = run(&x, Direction::Forward);
        let z = run(&y, Direction::Inverse);
        let z: Vec<Complex64> = z.iter().map(|c| c.scale(1.0 / n as f64)).collect();
        assert_fft_close(&z, &x);
    }

    #[test]
    fn tone_produces_single_spike() {
        let n = 512;
        let f = 37;
        let y = run(&complex_tone(n, f), Direction::Forward);
        assert!((y[f].re - n as f64).abs() < 1e-8);
        let leak: f64 = y
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != f)
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max);
        assert!(leak < 1e-8, "max leakage {leak}");
    }

    #[test]
    fn strided_form_is_dft_tensor_identity() {
        // (DFT_n ⊗ I_s) must equal the SPL tensor semantics.
        for (n, s) in [(4usize, 4usize), (8, 2), (16, 4), (8, 3), (2, 5)] {
            let x = random_complex(n * s, (n * 100 + s) as u64);
            let mut data = x.clone();
            let mut scratch = vec![Complex64::ZERO; n * s];
            let tw = StockhamTwiddles::new(n, Direction::Forward);
            stockham_strided(&mut data, &mut scratch, n, s, &tw);
            let expect = bwfft_spl::Formula::tensor(
                bwfft_spl::Formula::dft(n),
                bwfft_spl::Formula::identity(s),
            )
            .apply_vec(&x);
            assert_fft_close(&data, &expect);
        }
    }

    #[test]
    fn linearity_property() {
        let n = 128;
        let a = random_complex(n, 5);
        let b = random_complex(n, 6);
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = run(&a, Direction::Forward);
        let fb = run(&b, Direction::Forward);
        let fsum = run(&sum, Direction::Forward);
        let combined: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(rel_l2_error(&fsum, &combined) < 1e-12);
    }

    #[test]
    fn size_one_is_identity() {
        let x = random_complex(1, 7);
        assert_eq!(run(&x, Direction::Forward), x);
    }
}
