//! Bluestein's chirp-z algorithm: DFTs of *arbitrary* length.
//!
//! The paper's transforms are power-of-two, but a credible FFT library
//! must accept any size. Bluestein reduces a length-`n` DFT to a
//! circular convolution of length `M ≥ 2n−1` (a power of two, served
//! by the Stockham kernel):
//!
//! ```text
//! y[k] = w[k] · Σ_j (x[j]·w[j]) · conj(w[k−j]),   w[j] = e^{−iπ j²/n}
//! ```
//!
//! The `j²` chirp exponent is reduced modulo `2n` before the float
//! conversion so precision holds at large sizes.

use crate::stockham::stockham_strided;
use crate::twiddle::StockhamTwiddles;
use crate::Direction;
use bwfft_num::{AlignedVec, Complex64};

/// A reusable Bluestein plan for size `n` (any `n ≥ 1`).
///
/// ```
/// use bwfft_kernels::bluestein::Bluestein;
/// use bwfft_kernels::Direction;
/// use bwfft_num::Complex64;
///
/// // A 6-point DFT of the all-ones vector: a spike of 6 at bin 0.
/// let mut data = vec![Complex64::ONE; 6];
/// Bluestein::new(6, Direction::Forward).run(&mut data);
/// assert!((data[0].re - 6.0).abs() < 1e-12);
/// assert!(data[1].abs() < 1e-12);
/// ```
pub struct Bluestein {
    n: usize,
    m: usize,
    dir: Direction,
    /// Chirp `w[j]`, `j < n` (direction-adjusted).
    chirp: Vec<Complex64>,
    /// FFT of the padded, wrapped conjugate chirp (precomputed).
    kernel_fft: Vec<Complex64>,
    fwd: StockhamTwiddles,
    inv: StockhamTwiddles,
    scratch_a: AlignedVec<Complex64>,
    scratch_b: AlignedVec<Complex64>,
}

impl Bluestein {
    pub fn new(n: usize, dir: Direction) -> Self {
        assert!(n >= 1);
        let m = (2 * n - 1).next_power_of_two();
        // w[j] = e^{∓iπ j²/n}: exponent j² mod 2n keeps the angle
        // argument small and exact.
        // θ_j = sign·π·(j² mod 2n)/n, with sign = −1 forward (so that
        // w[j]·w[k]·conj(w[k−j]) = ω_n^{jk} via jk = (j²+k²−(k−j)²)/2).
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let e = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
                Complex64::cis(dir.sign() * core::f64::consts::PI * e / n as f64)
            })
            .collect();
        // Build the convolution kernel b[j] = conj(w[j]) wrapped.
        let mut b = vec![Complex64::ZERO; m];
        for j in 0..n {
            let v = chirp[j].conj();
            b[j] = v;
            if j != 0 {
                b[m - j] = v;
            }
        }
        let fwd = StockhamTwiddles::new(m, Direction::Forward);
        let inv = StockhamTwiddles::new(m, Direction::Inverse);
        let mut kernel_fft = b;
        let mut scratch = vec![Complex64::ZERO; m];
        stockham_strided(&mut kernel_fft, &mut scratch, m, 1, &fwd);
        Self {
            n,
            m,
            dir,
            chirp,
            kernel_fft,
            fwd,
            inv,
            scratch_a: AlignedVec::zeroed(m),
            scratch_b: AlignedVec::zeroed(m),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transform direction this plan was built for.
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Length of the internal power-of-two convolution.
    pub fn conv_len(&self) -> usize {
        self.m
    }

    /// Transforms `data` in place (unnormalized).
    pub fn run(&mut self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n);
        let (n, m) = (self.n, self.m);
        let a = &mut self.scratch_a;
        // a = x ⊙ w, zero-padded to M.
        for i in 0..m {
            a[i] = Complex64::ZERO;
        }
        for j in 0..n {
            a[j] = data[j] * self.chirp[j];
        }
        // A = FFT(a); A ⊙= kernel_fft; a = IFFT(A)/M.
        stockham_strided(a, &mut self.scratch_b, m, 1, &self.fwd);
        for (v, k) in a.iter_mut().zip(&self.kernel_fft) {
            *v *= *k;
        }
        stockham_strided(a, &mut self.scratch_b, m, 1, &self.inv);
        let scale = 1.0 / m as f64;
        for k in 0..n {
            data[k] = a[k].scale(scale) * self.chirp[k];
        }
    }
}

/// A planner accepting any size: power-of-two sizes dispatch to the
/// Stockham kernel, everything else to Bluestein.
pub enum AnyFft {
    Pow2 {
        twiddles: StockhamTwiddles,
        scratch: AlignedVec<Complex64>,
    },
    Chirp(Box<Bluestein>),
}

impl AnyFft {
    pub fn new(n: usize, dir: Direction) -> Self {
        if bwfft_num::is_pow2(n) {
            AnyFft::Pow2 {
                twiddles: StockhamTwiddles::new(n, dir),
                scratch: AlignedVec::zeroed(n),
            }
        } else {
            AnyFft::Chirp(Box::new(Bluestein::new(n, dir)))
        }
    }

    pub fn len(&self) -> usize {
        match self {
            AnyFft::Pow2 { twiddles, .. } => twiddles.n,
            AnyFft::Chirp(b) => b.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn run(&mut self, data: &mut [Complex64]) {
        match self {
            AnyFft::Pow2 { twiddles, scratch } => {
                stockham_strided(data, scratch, twiddles.n, 1, twiddles);
            }
            AnyFft::Chirp(b) => b.run(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dft_naive;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[test]
    fn arbitrary_sizes_match_naive() {
        for n in [1usize, 2, 3, 5, 6, 7, 9, 12, 13, 15, 17, 30, 100, 127, 360] {
            let x = random_complex(n, 500 + n as u64);
            let mut got = x.clone();
            Bluestein::new(n, Direction::Forward).run(&mut got);
            assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
        }
    }

    #[test]
    fn inverse_matches_naive() {
        for n in [5usize, 12, 100] {
            let x = random_complex(n, 501);
            let mut got = x.clone();
            Bluestein::new(n, Direction::Inverse).run(&mut got);
            assert_fft_close(&got, &dft_naive(&x, Direction::Inverse));
        }
    }

    #[test]
    fn roundtrip_non_pow2() {
        let n = 105;
        let x = random_complex(n, 502);
        let mut data = x.clone();
        Bluestein::new(n, Direction::Forward).run(&mut data);
        Bluestein::new(n, Direction::Inverse).run(&mut data);
        let back: Vec<Complex64> = data.iter().map(|c| c.scale(1.0 / n as f64)).collect();
        assert_fft_close(&back, &x);
    }

    #[test]
    fn plan_is_reusable() {
        let n = 77;
        let mut plan = Bluestein::new(n, Direction::Forward);
        for seed in 0..3 {
            let x = random_complex(n, 503 + seed);
            let mut got = x.clone();
            plan.run(&mut got);
            assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
        }
    }

    #[test]
    fn conv_length_is_pow2_and_big_enough() {
        for n in [3usize, 9, 31, 100] {
            let b = Bluestein::new(n, Direction::Forward);
            assert!(bwfft_num::is_pow2(b.conv_len()));
            assert!(b.conv_len() >= 2 * n - 1);
        }
    }

    #[test]
    fn any_fft_dispatches_correctly() {
        for n in [8usize, 12, 64, 100] {
            let x = random_complex(n, 504);
            let mut got = x.clone();
            let mut plan = AnyFft::new(n, Direction::Forward);
            assert_eq!(plan.len(), n);
            plan.run(&mut got);
            assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
            match plan {
                AnyFft::Pow2 { .. } => assert!(bwfft_num::is_pow2(n)),
                AnyFft::Chirp(_) => assert!(!bwfft_num::is_pow2(n)),
            }
        }
    }

    #[test]
    fn large_prime_size_is_accurate() {
        // Precision guard: chirp exponent reduction keeps error tiny
        // even at sizes where j² overflows without the mod-2n trick.
        let n = 1009; // prime
        let x = random_complex(n, 505);
        let mut got = x.clone();
        Bluestein::new(n, Direction::Forward).run(&mut got);
        assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
    }
}
