//! Mixed data-layout kernels (§IV "cache aware FFT", paper ref [18]).
//!
//! The compute stages of the paper run in *block-interleaved* format:
//! `μ` real parts followed by `μ` imaginary parts per cacheline, so
//! that a SIMD vector holds homogeneous components and complex
//! butterflies need no shuffles. The format change is folded into the
//! first stage (interleaved → block) and the last stage (block →
//! interleaved); intermediate stages stay in block format.
//!
//! This module provides the format-change kernels and a block-format
//! butterfly used to validate that computing in split format produces
//! identical results.

use crate::twiddle::StockhamTwiddles;
use bwfft_num::{split, Complex64, MU};

/// Converts a buffer of interleaved complex data to block-interleaved
/// format with block size [`MU`] into `dst` (`dst.len() == 2·src.len()`
/// f64 slots).
pub fn to_block_format(src: &[Complex64], dst: &mut [f64]) {
    split::interleaved_to_block(src, dst, MU);
}

/// Converts block-interleaved data back to interleaved complex.
pub fn from_block_format(src: &[f64], dst: &mut [Complex64]) {
    split::block_to_interleaved(src, dst, MU);
}

/// Stockham FFT computed entirely in block-interleaved format:
/// `(DFT_n ⊗ I_s)` where data and scratch are raw `f64` buffers holding
/// `n·s` logical complex elements in block format. `s` must be a
/// multiple of [`MU`] so that every stride-run is whole blocks.
///
/// This is the layout the paper's compute threads use; separating real
/// and imaginary planes makes each butterfly a pair of independent
/// fused multiply-adds per lane.
pub fn stockham_block_format(
    data: &mut [f64],
    scratch: &mut [f64],
    n: usize,
    s: usize,
    tw: &StockhamTwiddles,
) {
    assert_eq!(tw.n, n);
    assert_eq!(data.len(), 2 * n * s);
    assert_eq!(scratch.len(), 2 * n * s);
    assert!(s.is_multiple_of(MU), "block-format kernel needs s to be a multiple of μ");
    if n == 1 {
        return;
    }
    let mut len = n;
    let mut stride = s;
    let mut src_is_data = true;
    for q in 0..tw.num_stages() {
        let table = tw.stage(q);
        let (src, dst): (&mut [f64], &mut [f64]) = if src_is_data {
            (&mut *data, &mut *scratch)
        } else {
            (&mut *scratch, &mut *data)
        };
        block_stage(src, dst, len, stride, table);
        len /= 2;
        stride *= 2;
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

/// One DIF stage over block-format data. Offsets are in logical complex
/// elements; each element `e` lives at raw offsets
/// `(e/μ)·2μ + e%μ` (real) and `+μ` (imag).
fn block_stage(src: &[f64], dst: &mut [f64], len: usize, stride: usize, table: &[Complex64]) {
    let half = len / 2;
    // stride is a multiple of μ, so a stride-run is stride/μ full blocks.
    let blocks = stride / MU;
    for (p, &w) in table.iter().enumerate().take(half) {
        for blk in 0..blocks {
            let a_e = stride * p + blk * MU;
            let b_e = stride * (p + half) + blk * MU;
            let lo_e = stride * 2 * p + blk * MU;
            let hi_e = stride * (2 * p + 1) + blk * MU;
            let (a_r, a_i) = (raw_re(a_e), raw_im(a_e));
            let (b_r, b_i) = (raw_re(b_e), raw_im(b_e));
            let (lo_r, lo_i) = (raw_re(lo_e), raw_im(lo_e));
            let (hi_r, hi_i) = (raw_re(hi_e), raw_im(hi_e));
            for lane in 0..MU {
                let ar = src[a_r + lane];
                let ai = src[a_i + lane];
                let br = src[b_r + lane];
                let bi = src[b_i + lane];
                dst[lo_r + lane] = ar + br;
                dst[lo_i + lane] = ai + bi;
                let dr = ar - br;
                let di = ai - bi;
                dst[hi_r + lane] = dr * w.re - di * w.im;
                dst[hi_i + lane] = dr * w.im + di * w.re;
            }
        }
    }
}

/// Number of complex bins in the conjugate-even packed spectrum of a
/// real transform of length `n` along its innermost dimension:
/// `n/2 + 1` (DC, the interior bins, and Nyquist). `n == 1` keeps its
/// single bin.
#[inline]
pub fn packed_spectrum_len(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        n / 2 + 1
    }
}

/// Conjugate-even packing — the real transform's "first-stage layout
/// change". Adjacent real pairs fold into one complex element,
/// `z[j] = x[2j] + i·x[2j+1]`, so a real array of `2h` doubles is
/// re-read as `h` complex elements and the heavy transform runs at
/// half the complex length: half the bytes through every
/// bandwidth-bound stage. The split-merge pass in [`crate::realfft`]
/// recovers the true half-spectrum afterwards.
pub fn fold_real(x: &[f64], z: &mut [Complex64]) {
    assert_eq!(x.len(), 2 * z.len(), "fold_real needs an even real length");
    for (j, zj) in z.iter_mut().enumerate() {
        *zj = Complex64::new(x[2 * j], x[2 * j + 1]);
    }
}

/// The inverse layout change (`c2r`'s last stage): complex elements
/// unfold back into adjacent reals, scaled by `scale`.
pub fn unfold_real(z: &[Complex64], scale: f64, x: &mut [f64]) {
    assert_eq!(x.len(), 2 * z.len(), "unfold_real needs an even real length");
    for (j, zj) in z.iter().enumerate() {
        x[2 * j] = zj.re * scale;
        x[2 * j + 1] = zj.im * scale;
    }
}

/// Reconstructs the full Hermitian spectrum of one real 1D transform
/// from its packed half-spectrum (`n/2 + 1` bins → `n` bins, with
/// `Y[n−k] = conj(Y[k])`), for oracles and symmetry checks.
pub fn unpack_half_spectrum(packed: &[Complex64], full: &mut [Complex64]) {
    let n = full.len();
    assert_eq!(packed.len(), packed_spectrum_len(n));
    if n <= 1 {
        full.copy_from_slice(packed);
        return;
    }
    let h = n / 2;
    full[..=h].copy_from_slice(packed);
    for k in 1..h {
        full[n - k] = packed[k].conj();
    }
}

#[inline(always)]
fn raw_re(elem: usize) -> usize {
    debug_assert_eq!(elem % MU, 0);
    (elem / MU) * 2 * MU
}

#[inline(always)]
fn raw_im(elem: usize) -> usize {
    raw_re(elem) + MU
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stockham::stockham_strided;
    use crate::Direction;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[test]
    fn format_roundtrip() {
        let x = random_complex(64, 60);
        let mut blocked = vec![0.0; 128];
        to_block_format(&x, &mut blocked);
        let mut back = vec![Complex64::ZERO; 64];
        from_block_format(&blocked, &mut back);
        assert_eq!(back, x);
    }

    #[test]
    fn block_format_fft_matches_interleaved() {
        // The same transform computed in both layouts must agree —
        // the paper's format change is purely an efficiency device.
        for (n, s) in [(8usize, 4usize), (16, 4), (8, 8), (32, 12)] {
            let x = random_complex(n * s, (n + s) as u64);
            let tw = StockhamTwiddles::new(n, Direction::Forward);

            let mut interleaved = x.clone();
            let mut scratch = vec![Complex64::ZERO; n * s];
            stockham_strided(&mut interleaved, &mut scratch, n, s, &tw);

            let mut blocked = vec![0.0; 2 * n * s];
            to_block_format(&x, &mut blocked);
            let mut bscratch = vec![0.0; 2 * n * s];
            stockham_block_format(&mut blocked, &mut bscratch, n, s, &tw);
            let mut back = vec![Complex64::ZERO; n * s];
            from_block_format(&blocked, &mut back);

            assert_fft_close(&back, &interleaved);
        }
    }

    #[test]
    fn block_format_inverse_roundtrip() {
        let (n, s) = (64usize, 4usize);
        let x = random_complex(n * s, 61);
        let fwd = StockhamTwiddles::new(n, Direction::Forward);
        let inv = StockhamTwiddles::new(n, Direction::Inverse);
        let mut blocked = vec![0.0; 2 * n * s];
        to_block_format(&x, &mut blocked);
        let mut scratch = vec![0.0; 2 * n * s];
        stockham_block_format(&mut blocked, &mut scratch, n, s, &fwd);
        stockham_block_format(&mut blocked, &mut scratch, n, s, &inv);
        let mut back = vec![Complex64::ZERO; n * s];
        from_block_format(&blocked, &mut back);
        let scaled: Vec<Complex64> = back.iter().map(|c| c.scale(1.0 / n as f64)).collect();
        assert_fft_close(&scaled, &x);
    }

    #[test]
    fn fold_unfold_roundtrip() {
        let x: Vec<f64> = (0..32).map(|i| i as f64 * 0.25 - 3.0).collect();
        let mut z = vec![Complex64::ZERO; 16];
        fold_real(&x, &mut z);
        assert_eq!(z[3], Complex64::new(x[6], x[7]));
        let mut back = vec![0.0; 32];
        unfold_real(&z, 1.0, &mut back);
        assert_eq!(back, x);
        unfold_real(&z, 0.5, &mut back);
        assert_eq!(back[6], x[6] * 0.5);
    }

    #[test]
    fn packed_len_counts_dc_and_nyquist() {
        assert_eq!(packed_spectrum_len(1), 1);
        assert_eq!(packed_spectrum_len(2), 2);
        assert_eq!(packed_spectrum_len(8), 5);
    }

    #[test]
    fn unpack_restores_hermitian_mirror() {
        use crate::reference::dft_naive;
        use crate::Direction;
        let n = 16;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), 0.0))
            .collect();
        let full_ref = dft_naive(&x, Direction::Forward);
        let packed: Vec<Complex64> = full_ref[..=n / 2].to_vec();
        let mut full = vec![Complex64::ZERO; n];
        unpack_half_spectrum(&packed, &mut full);
        for (got, want) in full.iter().zip(&full_ref) {
            assert!((*got - *want).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of μ")]
    fn rejects_non_mu_stride() {
        let tw = StockhamTwiddles::new(8, Direction::Forward);
        let mut d = vec![0.0; 2 * 8 * 3];
        let mut s = vec![0.0; 2 * 8 * 3];
        stockham_block_format(&mut d, &mut s, 8, 3, &tw);
    }
}
