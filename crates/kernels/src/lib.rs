//! Numeric FFT kernels.
//!
//! This crate is the workspace's answer to the SPIRAL-generated AVX/SSE
//! kernels of the paper (§III-D): hand-written, verified, cache-aware
//! 1D FFT kernels and the data-movement kernels they compose with.
//!
//! * [`reference`] — naive `O(n²)` DFT and row-column MDFT oracles.
//! * [`twiddle`] — precomputed twiddle tables.
//! * [`radix2`] — in-place radix-2 DIT FFT (bit-reversed reorder).
//! * [`stockham`] — Stockham autosort FFT, the workhorse batch kernel;
//!   natively computes the strided form `DFT_n ⊗ I_s`.
//! * [`batch`] — batched pencil kernels `I_c ⊗ DFT_m` and
//!   `I_c ⊗ DFT_n ⊗ I_μ` over buffers (§III-B "Compute" task).
//! * [`layout`] — interleaved ↔ block-interleaved format changes (§IV).
//! * [`transpose`] — cacheline-blocked transpose / rotation kernels,
//!   temporal and non-temporal (§III-A reshapes, §IV non-temporal ops).
//! * [`simd`] — AVX2/FMA paths with runtime dispatch and portable
//!   fallbacks, plus non-temporal streaming copy.
//! * [`plan1d`] — a small planner wrapping the 1D kernels.
//! * [`realfft`] — real-input transforms (r2c/c2r) via the half-length
//!   complex FFT, and the fused spectral-convolution pass (§13).

pub mod batch;
pub mod bluestein;
pub mod layout;
pub mod plan1d;
pub mod radix2;
pub mod radix4;
pub mod realfft;
pub mod reference;
pub mod simd;
pub mod splitradix;
pub mod stockham;
pub mod transpose;
pub mod twiddle;

pub use batch::KernelVariant;
pub use plan1d::Fft1d;

/// Transform direction. Inverse is unnormalized (scale by `1/N`
/// yourself, or use the `*_normalized` helpers where provided).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    /// Sign of the exponent in `e^{sign·2πi/n}`.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}
