//! Simulated baselines: MKL-like, FFTW-like, and slab–pencil plans on
//! the machine model.
//!
//! The mechanisms that keep the libraries below ~50% of achievable
//! peak (Fig. 1) are modeled explicitly:
//!
//! * temporal stores ⇒ read-for-ownership + writeback (3× the payload
//!   per written byte instead of 1×);
//! * strided pencil passes ⇒ imperfect cacheline utilization, conflict
//!   pressure at power-of-two strides, and TLB overflow for very long
//!   pencils (all from `bwfft_machine::patterns::pencil_pass_cost`);
//! * demand-miss limited per-thread memory rates (`MLP·line/latency`)
//!   instead of streaming — compute threads chase misses instead of
//!   being fed by dedicated streaming threads;
//! * no compute/transfer overlap within a thread — compute and memory
//!   phases alternate (partial overlap *across* threads still emerges
//!   in the engine, as on real machines).
//!
//! The MKL-like and FFTW-like variants differ by calibration: MKL's
//! hand-tuned kernels sustain more outstanding misses (higher MLP) and
//! better blocking than FFTW 3.3.6's generated code, matching their
//! relative order in the paper's figures.

use bwfft_core::metrics;
use bwfft_core::plan::Dims;
use bwfft_machine::patterns::{pencil_pass_cost, TrafficCost};
use bwfft_machine::spec::MachineSpec;
use bwfft_machine::stats::PerfReport;
use bwfft_machine::{Engine, ThreadProg};

/// Which baseline library class to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// MKL-style pencil–pencil: well-blocked, high-MLP kernels.
    MklLike,
    /// FFTW-style pencil–pencil: generated code, lower MLP.
    FftwLike,
    /// FFTW's slab–pencil plan (chosen on large-cache parts): fuses
    /// stages 1+2 into an in-cache 2D FFT per slab when it fits.
    SlabPencil,
}

impl BaselineKind {
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::MklLike => "MKL-like",
            BaselineKind::FftwLike => "FFTW-like",
            BaselineKind::SlabPencil => "FFTW slab-pencil",
        }
    }

    /// Sustained outstanding-miss parallelism of the library's strided
    /// kernels (calibration constants; see module docs).
    fn mlp(&self) -> f64 {
        match self {
            BaselineKind::MklLike => 6.0,
            BaselineKind::FftwLike => 4.0,
            BaselineKind::SlabPencil => 4.0,
        }
    }
}

/// One full-array pass of the baseline: its memory traffic and the
/// pencil geometry it walks.
struct Pass {
    traffic: TrafficCost,
    flops: f64,
}

fn passes(kind: BaselineKind, dims: Dims, spec: &MachineSpec) -> Vec<Pass> {
    let total = dims.total();
    let n_f = total as f64;
    match dims {
        Dims::Two { n, m } => vec![
            Pass {
                traffic: pencil_pass_cost(total, 1, m, spec, 16),
                flops: 5.0 * n_f * (m.max(2) as f64).log2(),
            },
            Pass {
                traffic: pencil_pass_cost(total, m, n, spec, 16),
                flops: 5.0 * n_f * (n.max(2) as f64).log2(),
            },
        ],
        Dims::Three { k, n, m } => {
            if kind == BaselineKind::SlabPencil && slab_fits(n, m, spec) {
                // Fused stages 1+2: one pass reads and writes each slab
                // once; the in-cache 2D FFT costs the flops of both.
                vec![
                    Pass {
                        traffic: pencil_pass_cost(total, 1, m, spec, 16),
                        flops: 5.0 * n_f * ((m.max(2) as f64).log2() + (n.max(2) as f64).log2()),
                    },
                    Pass {
                        traffic: pencil_pass_cost(total, n * m, k, spec, 16),
                        flops: 5.0 * n_f * (k.max(2) as f64).log2(),
                    },
                ]
            } else {
                vec![
                    Pass {
                        traffic: pencil_pass_cost(total, 1, m, spec, 16),
                        flops: 5.0 * n_f * (m.max(2) as f64).log2(),
                    },
                    Pass {
                        traffic: pencil_pass_cost(total, m, n, spec, 16),
                        flops: 5.0 * n_f * (n.max(2) as f64).log2(),
                    },
                    Pass {
                        traffic: pencil_pass_cost(total, n * m, k, spec, 16),
                        flops: 5.0 * n_f * (k.max(2) as f64).log2(),
                    },
                ]
            }
        }
    }
}

/// A z-slab fits "in cache" for the slab–pencil plan if half the LLC
/// holds it (the paper's AMD observation).
fn slab_fits(n: usize, m: usize, spec: &MachineSpec) -> bool {
    n * m * 16 <= spec.llc().size_bytes / 2
}

/// Simulates a baseline transform using all hardware threads of the
/// machine (the libraries' own threading), returning the paper-style
/// report.
pub fn simulate_baseline(kind: BaselineKind, dims: Dims, spec: &MachineSpec) -> PerfReport {
    let total = dims.total();
    let p = spec.total_threads();
    let threads_per_core = spec.threads_per_core;
    let sk = spec.sockets;
    let threads_per_socket = p / sk;
    let demand_rate = kind.mlp() * spec.llc().line_bytes as f64 / spec.dram_latency_ns;

    let mut time_ns = 0.0;
    let mut dram_bytes = 0.0;
    // Each pass is bulk-synchronous; simulate passes independently.
    for pass in passes(kind, dims, spec) {
        let mut engine = Engine::new();
        let mut dram = Vec::new();
        for s in 0..sk {
            dram.push(engine.add_resource(format!("dram{s}"), spec.dram_bytes_per_ns()));
        }
        // One compute resource per physical core, shared by its
        // hardware threads.
        let mut cores = Vec::new();
        for c in 0..spec.total_cores() {
            cores.push(engine.add_resource(
                format!("core{c}"),
                spec.fft_flops_per_core_ns(),
            ));
        }
        // Chunked alternation of memory and compute per thread; the
        // TLB walk surplus is serialized into each chunk.
        const CHUNKS: usize = 32;
        let mem_per_chunk = pass.traffic.dram_bytes / p as f64 / CHUNKS as f64;
        let flops_per_chunk = pass.flops / p as f64 / CHUNKS as f64;
        let walk_per_chunk = pass.traffic.extra_ns / p as f64 / CHUNKS as f64;
        let mut progs = Vec::new();
        for t in 0..p {
            let socket = t / threads_per_socket;
            let core = t / threads_per_core;
            let mut prog = ThreadProg::new();
            for _ in 0..CHUNKS {
                prog.use_capped(dram[socket], mem_per_chunk, demand_rate);
                prog.delay(walk_per_chunk);
                prog.use_res(cores[core], flops_per_chunk);
            }
            progs.push(prog);
        }
        let stats = engine.run(progs);
        time_ns += stats.total_ns;
        dram_bytes += pass.traffic.dram_bytes;
    }

    PerfReport {
        machine: spec.name.to_string(),
        problem: format!("{} [{}]", dims.label(), kind.label()),
        time_ns,
        pseudo_flops: metrics::pseudo_flops(total),
        dram_bytes,
        link_bytes: 0.0,
        achievable_peak_gflops: metrics::achievable_peak_gflops(
            total,
            dims.stages(),
            spec.total_dram_bw_gbs(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_core::exec_sim::{simulate, SimOptions};
    use bwfft_core::FftPlan;
    use bwfft_machine::presets;

    #[test]
    fn mkl_like_lands_in_the_paper_band_on_kaby_lake() {
        // Fig. 1: MKL at most ~47% of achievable peak.
        let spec = presets::kaby_lake_7700k();
        let r = simulate_baseline(BaselineKind::MklLike, Dims::d3(512, 512, 512), &spec);
        let pct = r.percent_of_peak();
        assert!((30.0..55.0).contains(&pct), "MKL-like at {pct:.1}% ({r})");
    }

    #[test]
    fn fftw_like_is_slower_than_mkl_like() {
        let spec = presets::kaby_lake_7700k();
        let d = Dims::d3(512, 512, 512);
        let mkl = simulate_baseline(BaselineKind::MklLike, d, &spec);
        let fftw = simulate_baseline(BaselineKind::FftwLike, d, &spec);
        assert!(fftw.time_ns > mkl.time_ns);
    }

    #[test]
    fn double_buffered_beats_both_baselines() {
        // The paper's headline: 1.2×–3× over MKL/FFTW.
        let spec = presets::kaby_lake_7700k();
        let d = Dims::d3(512, 512, 512);
        let plan = FftPlan::builder(d)
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4)
            .build()
            .unwrap();
        let ours = simulate(&plan, &spec, &SimOptions::default()).unwrap().report;
        let mkl = simulate_baseline(BaselineKind::MklLike, d, &spec);
        let fftw = simulate_baseline(BaselineKind::FftwLike, d, &spec);
        let vs_mkl = mkl.time_ns / ours.time_ns;
        let vs_fftw = fftw.time_ns / ours.time_ns;
        assert!(
            (1.2..3.5).contains(&vs_mkl),
            "speedup vs MKL-like {vs_mkl:.2}"
        );
        assert!(
            (1.2..3.5).contains(&vs_fftw),
            "speedup vs FFTW-like {vs_fftw:.2}"
        );
        assert!(vs_fftw > vs_mkl);
    }

    #[test]
    fn slab_pencil_helps_on_amd() {
        // §V: FFTW's slab–pencil suits AMD's larger caches, shrinking
        // our advantage to ~1.6×.
        let amd = presets::amd_fx_8350();
        let d = Dims::d3(512, 512, 512);
        let slab = simulate_baseline(BaselineKind::SlabPencil, d, &amd);
        let pencil = simulate_baseline(BaselineKind::FftwLike, d, &amd);
        assert!(
            slab.time_ns < pencil.time_ns,
            "slab {} vs pencil {}",
            slab.time_ns,
            pencil.time_ns
        );
        let plan = FftPlan::builder(d)
            .buffer_elems(amd.default_buffer_elems())
            .threads(4, 4)
            .build()
            .unwrap();
        let ours = simulate(&plan, &amd, &SimOptions::default()).unwrap().report;
        let speedup = slab.time_ns / ours.time_ns;
        assert!(
            (1.1..2.2).contains(&speedup),
            "AMD speedup vs slab-pencil {speedup:.2}"
        );
    }

    #[test]
    fn slab_pencil_falls_back_when_slab_does_not_fit() {
        // 2048² slabs (64 MB) cannot fit an 8 MB LLC: three passes.
        let spec = presets::kaby_lake_7700k();
        let small = simulate_baseline(BaselineKind::SlabPencil, Dims::d3(64, 512, 512), &spec);
        let big = simulate_baseline(BaselineKind::SlabPencil, Dims::d3(64, 2048, 2048), &spec);
        // Per-element time degrades when the fusion is lost.
        let per_small = small.time_ns / (64.0 * 512.0 * 512.0);
        let per_big = big.time_ns / (64.0 * 2048.0 * 2048.0);
        assert!(per_big > per_small * 1.2, "{per_big} vs {per_small}");
    }

    #[test]
    fn baseline_traffic_exceeds_ideal() {
        let spec = presets::kaby_lake_7700k();
        let d = Dims::d3(256, 256, 256);
        let r = simulate_baseline(BaselineKind::MklLike, d, &spec);
        let ideal = metrics::ideal_traffic_bytes(d.total(), 3);
        assert!(
            r.dram_bytes > 1.3 * ideal,
            "RFO and strided waste must inflate traffic: {} vs {ideal}",
            r.dram_bytes
        );
    }
}
