//! Comparator implementations — the roles MKL 2017.0 and FFTW 3.3.6
//! play in the paper's evaluation.
//!
//! The paper characterizes the libraries it compares against by
//! algorithm class, not by implementation detail: pencil–pencil
//! decompositions where *every* thread both moves data and computes,
//! with temporal memory accesses (read-for-ownership on writes) and no
//! compute/communication overlap; FFTW additionally picks a
//! slab–pencil plan on large-cache AMD parts (§V). This crate
//! implements those classes:
//!
//! * [`reference_impl`] — real, correctness-checked row-column MDFTs
//!   (also the medium-size oracle for `bwfft-core` tests);
//! * [`sim`] — the same algorithm classes as discrete-event machine
//!   programs, producing the MKL/FFTW bars of Figs. 1, 9, 10, 11.

pub mod reference_impl;
pub mod sim;

pub use sim::{simulate_baseline, BaselineKind};
