//! Real pencil–pencil and slab–pencil MDFT implementations.
//!
//! These are honest row-column FFTs: full-array passes per dimension,
//! strided pencil gathers, temporal stores — exactly the traffic
//! structure the paper attributes to the baseline libraries. They are
//! verified against the naive oracles and in turn serve as the oracle
//! for the double-buffered implementation at sizes where `O(n²)`
//! verification is too slow.

use bwfft_kernels::{Direction, Fft1d};
use bwfft_num::Complex64;

/// Pencil–pencil 2D FFT of an `n × m` row-major array.
pub fn pencil_fft_2d(data: &mut [Complex64], n: usize, m: usize, dir: Direction) {
    assert_eq!(data.len(), n * m);
    // Stage 1: rows (contiguous pencils).
    let mut row_fft = Fft1d::new(m, dir);
    for row in data.chunks_exact_mut(m) {
        row_fft.run(row);
    }
    // Stage 2: columns (stride-m pencils, gather/scatter).
    let mut col_fft = Fft1d::new(n, dir);
    let mut pencil = vec![Complex64::ZERO; n];
    for c in 0..m {
        for r in 0..n {
            pencil[r] = data[r * m + c];
        }
        col_fft.run(&mut pencil);
        for r in 0..n {
            data[r * m + c] = pencil[r];
        }
    }
}

/// Pencil–pencil 3D FFT of a `k × n × m` row-major cube.
pub fn pencil_fft_3d(data: &mut [Complex64], k: usize, n: usize, m: usize, dir: Direction) {
    assert_eq!(data.len(), k * n * m);
    // Stage 1: x-pencils (contiguous).
    let mut x_fft = Fft1d::new(m, dir);
    for row in data.chunks_exact_mut(m) {
        x_fft.run(row);
    }
    // Stage 2: y-pencils (stride m within each slab).
    let mut y_fft = Fft1d::new(n, dir);
    let mut pencil = vec![Complex64::ZERO; n];
    for z in 0..k {
        let slab = &mut data[z * n * m..(z + 1) * n * m];
        for x in 0..m {
            for y in 0..n {
                pencil[y] = slab[y * m + x];
            }
            y_fft.run(&mut pencil);
            for y in 0..n {
                slab[y * m + x] = pencil[y];
            }
        }
    }
    // Stage 3: z-pencils (stride n·m).
    let mut z_fft = Fft1d::new(k, dir);
    let mut zpencil = vec![Complex64::ZERO; k];
    for y in 0..n {
        for x in 0..m {
            for z in 0..k {
                zpencil[z] = data[z * n * m + y * m + x];
            }
            z_fft.run(&mut zpencil);
            for z in 0..k {
                data[z * n * m + y * m + x] = zpencil[z];
            }
        }
    }
}

/// Slab–pencil 3D FFT: a 2D FFT per z-slab (fused stages 1+2, one
/// round trip if the slab fits in cache), then the z-pencil pass — the
/// plan FFTW effectively uses on large-cache parts (§II-B ref [5], §V).
pub fn slab_pencil_fft_3d(data: &mut [Complex64], k: usize, n: usize, m: usize, dir: Direction) {
    assert_eq!(data.len(), k * n * m);
    for z in 0..k {
        pencil_fft_2d(&mut data[z * n * m..(z + 1) * n * m], n, m, dir);
    }
    let mut z_fft = Fft1d::new(k, dir);
    let mut zpencil = vec![Complex64::ZERO; k];
    for y in 0..n {
        for x in 0..m {
            for z in 0..k {
                zpencil[z] = data[z * n * m + y * m + x];
            }
            z_fft.run(&mut zpencil);
            for z in 0..k {
                data[z * n * m + y * m + x] = zpencil[z];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_kernels::reference::{dft2_naive, dft3_naive};
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[test]
    fn pencil_2d_matches_naive() {
        let (n, m) = (16usize, 8);
        let x = random_complex(n * m, 80);
        let mut got = x.clone();
        pencil_fft_2d(&mut got, n, m, Direction::Forward);
        assert_fft_close(&got, &dft2_naive(&x, n, m, Direction::Forward));
    }

    #[test]
    fn pencil_3d_matches_naive() {
        let (k, n, m) = (8usize, 4, 16);
        let x = random_complex(k * n * m, 81);
        let mut got = x.clone();
        pencil_fft_3d(&mut got, k, n, m, Direction::Forward);
        assert_fft_close(&got, &dft3_naive(&x, k, n, m, Direction::Forward));
    }

    #[test]
    fn slab_pencil_matches_pencil_pencil() {
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 82);
        let mut a = x.clone();
        pencil_fft_3d(&mut a, k, n, m, Direction::Forward);
        let mut b = x.clone();
        slab_pencil_fft_3d(&mut b, k, n, m, Direction::Forward);
        assert_fft_close(&b, &a);
    }

    #[test]
    fn inverse_roundtrip() {
        let (k, n, m) = (4usize, 8, 8);
        let x = random_complex(k * n * m, 83);
        let mut data = x.clone();
        pencil_fft_3d(&mut data, k, n, m, Direction::Forward);
        pencil_fft_3d(&mut data, k, n, m, Direction::Inverse);
        let scale = 1.0 / (k * n * m) as f64;
        let back: Vec<Complex64> = data.iter().map(|c| c.scale(scale)).collect();
        assert_fft_close(&back, &x);
    }

    #[test]
    fn agrees_with_double_buffered_core_at_medium_size() {
        // Cross-validation: two completely different implementations.
        let (k, n, m) = (32usize, 32, 32);
        let x = random_complex(k * n * m, 84);
        let mut pencil = x.clone();
        pencil_fft_3d(&mut pencil, k, n, m, Direction::Forward);
        let plan = bwfft_core::FftPlan::builder(bwfft_core::Dims::d3(k, n, m))
            .buffer_elems(4096)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut db = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        bwfft_core::exec_real::execute(&plan, &mut db, &mut work).unwrap();
        assert_fft_close(&db, &pencil);
    }
}
