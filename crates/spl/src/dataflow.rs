//! Lowering read/write matrices into memory access streams.
//!
//! The machine simulator consumes *bursts*: contiguous element ranges
//! tagged read/write and temporal/non-temporal. The paper's insight is
//! visible right here in the lowering: `R_{b,i}` produces one giant
//! contiguous read burst (streams at full bandwidth), while `W_{b,i}`
//! produces `b/μ` cacheline-sized bursts at a large regular stride
//! (non-temporal, write-combining friendly but TLB-sensitive).

use crate::gather_scatter::{ReadMatrix, StagePerm, WriteMatrix};

/// Which array an access touches. The simulator maps arrays to NUMA
/// nodes; `Buffer` lives in the shared LLC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArrayId {
    /// The stage's source array in main memory.
    Input,
    /// The stage's destination array in main memory.
    Output,
    /// The LLC-resident double buffer.
    Buffer,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// A contiguous run of element accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    pub array: ArrayId,
    /// First element index within the array.
    pub start: usize,
    /// Number of contiguous elements.
    pub len: usize,
    pub kind: AccessKind,
    /// True if the access should bypass the cache hierarchy
    /// (non-temporal loads/stores, §IV).
    pub non_temporal: bool,
}

/// Compact summary of a write matrix's address pattern, used by the
/// burst-tier simulator where enumerating every burst of a 2048³
/// transform is infeasible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WritePattern {
    /// Number of bursts the block decomposes into.
    pub bursts: usize,
    /// Elements per burst (the contiguous run, usually `μ`).
    pub burst_elems: usize,
    /// Dominant stride between consecutive bursts, in elements
    /// (0 when the writes are fully contiguous).
    pub stride_elems: usize,
    /// Number of distinct stride values observed (1 for a pure
    /// constant-stride walk; larger when the walk wraps dimensions).
    pub distinct_strides: usize,
    /// Total span of addresses touched (max − min + burst), elements.
    pub span_elems: usize,
}

/// Enumerates the read bursts of `R_{b,i}` — a single contiguous run,
/// optionally chopped into `chunk`-element pieces (one per data-thread).
pub fn read_bursts(r: &ReadMatrix, chunk: usize, non_temporal: bool) -> Vec<Burst> {
    let mut out = Vec::new();
    let start = r.i * r.b;
    let chunk = chunk.max(1).min(r.b);
    let mut off = 0;
    while off < r.b {
        let len = chunk.min(r.b - off);
        out.push(Burst {
            array: ArrayId::Input,
            start: start + off,
            len,
            kind: AccessKind::Read,
            non_temporal,
        });
        off += len;
    }
    out
}

/// Enumerates the write bursts of `W_{b,i}`, coalescing contiguous
/// destination runs. Exact — intended for the trace-tier simulator and
/// for tests; cost `O(b)`.
pub fn write_bursts(w: &WriteMatrix, non_temporal: bool) -> Vec<Burst> {
    let mut run = w.perm.contiguous_run().clamp(1, w.b);
    if !w.b.is_multiple_of(run) {
        run = 1;
    }
    let steps = w.b / run;
    let mut out: Vec<Burst> = Vec::with_capacity(steps);
    for t in 0..steps {
        let dst = w.dst_of_buf(t * run);
        match out.last_mut() {
            Some(last) if last.start + last.len == dst => last.len += run,
            _ => out.push(Burst {
                array: ArrayId::Output,
                start: dst,
                len: run,
                kind: AccessKind::Write,
                non_temporal,
            }),
        }
    }
    out
}

/// Computes the [`WritePattern`] summary of a write matrix by sampling
/// its first block (all blocks of a stage share the same pattern shape;
/// only the base offset differs).
pub fn write_pattern(perm: StagePerm, b: usize) -> WritePattern {
    let w = WriteMatrix::new(perm, b, 0);
    let bursts = write_bursts(&w, true);
    summarize(&bursts)
}

fn summarize(bursts: &[Burst]) -> WritePattern {
    assert!(!bursts.is_empty());
    let burst_elems = bursts.iter().map(|b| b.len).min().unwrap_or(0);
    let mut strides = std::collections::BTreeSet::new();
    let mut prev: Option<usize> = None;
    let mut stride_counts: std::collections::BTreeMap<usize, usize> = Default::default();
    for b in bursts {
        if let Some(p) = prev {
            let s = b.start.abs_diff(p);
            strides.insert(s);
            *stride_counts.entry(s).or_default() += 1;
        }
        prev = Some(b.start);
    }
    let dominant = stride_counts
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(s, _)| *s)
        .unwrap_or(0);
    let lo = bursts.iter().map(|b| b.start).min().unwrap_or(0);
    let hi = bursts.iter().map(|b| b.start + b.len).max().unwrap_or(0);
    WritePattern {
        bursts: bursts.len(),
        burst_elems,
        stride_elems: dominant,
        distinct_strides: strides.len().max(1),
        span_elems: hi - lo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather_scatter::{fft2d_stage_perms, fft3d_stage_perms};
    use crate::perm::PermOp;

    #[test]
    fn read_is_one_contiguous_burst() {
        let r = ReadMatrix::new(1024, 256, 2);
        let bursts = read_bursts(&r, usize::MAX, true);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].start, 512);
        assert_eq!(bursts[0].len, 256);
        assert_eq!(bursts[0].kind, AccessKind::Read);
    }

    #[test]
    fn read_chunking_partitions_exactly() {
        let r = ReadMatrix::new(1024, 256, 1);
        let bursts = read_bursts(&r, 100, false);
        assert_eq!(bursts.len(), 3); // 100 + 100 + 56
        let total: usize = bursts.iter().map(|b| b.len).sum();
        assert_eq!(total, 256);
        assert_eq!(bursts[0].start, 256);
        assert_eq!(bursts[2].len, 56);
    }

    #[test]
    fn identity_writes_coalesce_to_one_burst() {
        let w = WriteMatrix::new(StagePerm::Single(PermOp::Id { n: 512 }), 128, 3);
        let bursts = write_bursts(&w, true);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].start, 3 * 128);
        assert_eq!(bursts[0].len, 128);
    }

    #[test]
    fn rotation_writes_are_cacheline_bursts_at_constant_stride() {
        // Stage-1 rotation of a 4×4×32 cube with μ=4: a b=128 block is
        // exactly one x-row (m = 32 elements → 8 packets) per (z, y)
        // pair; packets of a row land at stride k·n·μ = 64.
        let (k, n, m, mu) = (4usize, 4, 32, 4);
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let w = WriteMatrix::new(perm, 32, 0);
        let bursts = write_bursts(&w, true);
        assert_eq!(bursts.len(), m / mu);
        for b in &bursts {
            assert_eq!(b.len, mu);
        }
        for pair in bursts.windows(2) {
            assert_eq!(pair[1].start - pair[0].start, k * n * mu);
        }
    }

    #[test]
    fn write_pattern_summary_for_2d_transpose() {
        let (n, m, mu) = (64usize, 64, 4);
        let perm = fft2d_stage_perms(n, m, mu)[0];
        let p = write_pattern(perm, m); // one row per block
        assert_eq!(p.burst_elems, mu);
        assert_eq!(p.bursts, m / mu);
        // Row x-packets go to (x_p · n + y) · μ: stride n·μ.
        assert_eq!(p.stride_elems, n * mu);
        assert_eq!(p.distinct_strides, 1);
    }

    #[test]
    fn write_pattern_spans_grow_with_cube() {
        let perm = fft3d_stage_perms(8, 8, 64, 4)[0];
        let p = write_pattern(perm, 64);
        // One row scatters across the whole rotated cube's x-extent.
        assert!(p.span_elems > 8 * 8 * 4 * ((64 / 4) - 1));
        assert_eq!(p.burst_elems, 4);
    }

    #[test]
    fn bursts_cover_block_exactly_once() {
        let (k, n, m, mu) = (2usize, 4, 16, 4);
        let perm = fft3d_stage_perms(k, n, m, mu)[1];
        let total = k * n * m;
        let b = 32;
        let mut seen = vec![false; total];
        for i in 0..total / b {
            let w = WriteMatrix::new(perm, b, i);
            for burst in write_bursts(&w, true) {
                for (e, s) in seen
                    .iter_mut()
                    .enumerate()
                    .skip(burst.start)
                    .take(burst.len)
                {
                    assert!(!*s, "element {e} written twice");
                    *s = true;
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }
}
