//! Permutation index maps for the data-reshape operators.
//!
//! The kernels and the machine simulator need the reshape operators
//! (`L`, `K`, and their cacheline-blocked `⊗ I_μ` forms) as *index maps*
//! `src → dst`, not as matrices. [`PermOp`] provides O(1) forward and
//! inverse maps plus conversion back to a [`Formula`] so every map is
//! verified against the algebra.

use crate::Formula;

/// A structured permutation on `0..size()`.
///
/// Semantics: `y[dst_of_src(s)] = x[s]` — i.e. `dst_of_src` says where a
/// source element lands, matching `Formula::apply` of the corresponding
/// formula.
///
/// ```
/// use bwfft_spl::PermOp;
///
/// // Transpose a 2×3 matrix: element (0,1) at index 1 lands at (1,0),
/// // index 1·2 + 0 = 2 in the 3×2 result.
/// let l = PermOp::L { rows: 2, cols: 3 };
/// assert_eq!(l.dst_of_src(1), 2);
/// assert_eq!(l.src_of_dst(2), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PermOp {
    /// Identity on `n` points.
    Id { n: usize },
    /// Stride permutation transposing a row-major `rows × cols` matrix.
    L { rows: usize, cols: usize },
    /// Blocked stride permutation `L(rows, cols) ⊗ I_blk`: transposes a
    /// `rows × cols` matrix of `blk`-element packets (cachelines).
    BlockedL { rows: usize, cols: usize, blk: usize },
    /// Rotation `K^{k,n}_m`: `k × n × m` cube → `m × k × n` cube,
    /// `(z, y, x) → (x, z, y)`.
    K { k: usize, n: usize, m: usize },
    /// Blocked rotation `K^{k,n}_{m} ⊗ I_blk` over packets: the cube has
    /// `k × n × m` packets of `blk` elements each. This is the paper's
    /// `K^{k,n}_{m/μ} ⊗ I_μ` with `m = m_elems/μ`.
    BlockedK { k: usize, n: usize, m: usize, blk: usize },
}

impl PermOp {
    /// Number of points the permutation acts on.
    pub fn size(&self) -> usize {
        match *self {
            PermOp::Id { n } => n,
            PermOp::L { rows, cols } => rows * cols,
            PermOp::BlockedL { rows, cols, blk } => rows * cols * blk,
            PermOp::K { k, n, m } => k * n * m,
            PermOp::BlockedK { k, n, m, blk } => k * n * m * blk,
        }
    }

    /// Destination index of source element `s`.
    #[inline]
    pub fn dst_of_src(&self, s: usize) -> usize {
        debug_assert!(s < self.size());
        match *self {
            PermOp::Id { .. } => s,
            PermOp::L { rows, cols } => {
                let i = s / cols;
                let j = s % cols;
                j * rows + i
            }
            PermOp::BlockedL { rows, cols, blk } => {
                let packet = s / blk;
                let off = s % blk;
                let i = packet / cols;
                let j = packet % cols;
                (j * rows + i) * blk + off
            }
            PermOp::K { k, n, m } => {
                let z = s / (n * m);
                let y = (s / m) % n;
                let x = s % m;
                x * k * n + z * n + y
            }
            PermOp::BlockedK { k, n, m, blk } => {
                let packet = s / blk;
                let off = s % blk;
                let z = packet / (n * m);
                let y = (packet / m) % n;
                let x = packet % m;
                (x * k * n + z * n + y) * blk + off
            }
        }
    }

    /// Source index that lands at destination `d` (the inverse map).
    ///
    /// Note: for `L` forms the inverse is again an `L` (with `rows` and
    /// `cols` swapped), but the inverse of a rotation `K` is the
    /// *opposite* 3-cycle, which is not itself a `K`; the inverse map is
    /// therefore computed directly rather than via a structured inverse.
    #[inline]
    pub fn src_of_dst(&self, d: usize) -> usize {
        debug_assert!(d < self.size());
        match *self {
            PermOp::Id { .. } => d,
            PermOp::L { rows, cols } => {
                // dst = j·rows + i  ⇒  src = i·cols + j.
                let j = d / rows;
                let i = d % rows;
                i * cols + j
            }
            PermOp::BlockedL { rows, cols, blk } => {
                let packet = d / blk;
                let off = d % blk;
                let j = packet / rows;
                let i = packet % rows;
                (i * cols + j) * blk + off
            }
            PermOp::K { k, n, m } => {
                // dst cube is m×k×n at (x, z, y) ⇒ src = z·n·m + y·m + x.
                let x = d / (k * n);
                let z = (d / n) % k;
                let y = d % n;
                z * n * m + y * m + x
            }
            PermOp::BlockedK { k, n, m, blk } => {
                let packet = d / blk;
                let off = d % blk;
                let x = packet / (k * n);
                let z = (packet / n) % k;
                let y = packet % n;
                (z * n * m + y * m + x) * blk + off
            }
        }
    }

    /// The equivalent SPL formula (for verification).
    pub fn as_formula(&self) -> Formula {
        match *self {
            PermOp::Id { n } => Formula::identity(n),
            PermOp::L { rows, cols } => Formula::stride_l(rows, cols),
            PermOp::BlockedL { rows, cols, blk } => {
                Formula::tensor(Formula::stride_l(rows, cols), Formula::identity(blk))
            }
            PermOp::K { k, n, m } => Formula::rotation(k, n, m),
            PermOp::BlockedK { k, n, m, blk } => {
                Formula::tensor(Formula::rotation(k, n, m), Formula::identity(blk))
            }
        }
    }

    /// Applies the permutation out-of-place: `y[dst] = x[src]`.
    pub fn permute<T: Copy>(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.size());
        assert_eq!(y.len(), self.size());
        for (s, v) in x.iter().enumerate() {
            y[self.dst_of_src(s)] = *v;
        }
    }

    /// Length (in elements) of the maximal contiguous runs this
    /// permutation preserves — `blk` for blocked forms, 1 for others.
    /// This is the burst size the store stream can use.
    pub fn contiguous_run(&self) -> usize {
        match *self {
            PermOp::Id { n } => n.max(1),
            PermOp::L { .. } | PermOp::K { .. } => 1,
            PermOp::BlockedL { blk, .. } | PermOp::BlockedK { blk, .. } => blk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{assert_formulas_equal, to_dense};
    use bwfft_num::Complex64;

    fn check_against_formula(p: PermOp) {
        // The index map must agree with the formula interpreter.
        let f = p.as_formula();
        let n = p.size();
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let by_formula = f.apply_vec(&x);
        let mut by_map = vec![Complex64::ZERO; n];
        p.permute(&x, &mut by_map);
        assert_eq!(by_formula, by_map, "{p:?}");
        assert!(to_dense(&f).is_permutation(), "{p:?} not a permutation");
    }

    #[test]
    fn maps_agree_with_formulas() {
        check_against_formula(PermOp::Id { n: 7 });
        check_against_formula(PermOp::L { rows: 3, cols: 5 });
        check_against_formula(PermOp::BlockedL {
            rows: 4,
            cols: 2,
            blk: 4,
        });
        check_against_formula(PermOp::K { k: 2, n: 3, m: 4 });
        check_against_formula(PermOp::BlockedK {
            k: 2,
            n: 3,
            m: 2,
            blk: 4,
        });
    }

    #[test]
    fn inverses_roundtrip() {
        let ops = [
            PermOp::Id { n: 6 },
            PermOp::L { rows: 4, cols: 6 },
            PermOp::BlockedL {
                rows: 3,
                cols: 5,
                blk: 2,
            },
            PermOp::K { k: 3, n: 4, m: 5 },
            PermOp::BlockedK {
                k: 2,
                n: 2,
                m: 3,
                blk: 4,
            },
        ];
        for p in ops {
            for s in 0..p.size() {
                assert_eq!(p.src_of_dst(p.dst_of_src(s)), s, "{p:?} src∘dst");
                assert_eq!(p.dst_of_src(p.src_of_dst(s)), s, "{p:?} dst∘src");
            }
        }
    }

    #[test]
    fn k_factorization_via_perm_composition() {
        // K^{k,n}_m = (L^{mk}_m ⊗ I_n)(I_k ⊗ L^{mn}_m)  (paper §III-A).
        // In this crate's parameterization:
        //   K{k,n,m} = (L(k, m) ⊗ I_n) · (I_k ⊗ L(n, m)).
        let (k, n, m) = (3, 4, 5);
        let kf = Formula::rotation(k, n, m);
        let step1 = Formula::tensor(Formula::identity(k), Formula::stride_l(n, m));
        let step2 = Formula::tensor(Formula::stride_l(k, m), Formula::identity(n));
        let composed = Formula::compose(vec![step2, step1]);
        assert_formulas_equal(&kf, &composed);
    }

    #[test]
    fn blocked_k_equals_k_on_packet_space() {
        // BlockedK with blk=1 degenerates to K.
        let a = PermOp::BlockedK {
            k: 2,
            n: 3,
            m: 4,
            blk: 1,
        };
        let b = PermOp::K { k: 2, n: 3, m: 4 };
        for s in 0..a.size() {
            assert_eq!(a.dst_of_src(s), b.dst_of_src(s));
        }
    }

    #[test]
    fn blocked_forms_preserve_runs() {
        let p = PermOp::BlockedK {
            k: 2,
            n: 2,
            m: 2,
            blk: 4,
        };
        assert_eq!(p.contiguous_run(), 4);
        // Elements within one packet stay adjacent and in order.
        for packet in 0..8 {
            let base = p.dst_of_src(packet * 4);
            for off in 1..4 {
                assert_eq!(p.dst_of_src(packet * 4 + off), base + off);
            }
        }
    }

    #[test]
    fn l_round_trip_is_identity() {
        // L(rows, cols) then L(cols, rows) is the identity — the paper's
        // L^{mn}_m · L^{mn}_n = I_mn.
        let p = PermOp::L { rows: 6, cols: 4 };
        let q = PermOp::L { rows: 4, cols: 6 };
        let x: Vec<u32> = (0..24).collect();
        let mut t = vec![0u32; 24];
        let mut y = vec![0u32; 24];
        p.permute(&x, &mut t);
        q.permute(&t, &mut y);
        assert_eq!(x, y);
    }
}
