//! The SPL formula AST and its interpreter.
//!
//! Each [`Formula`] is a (possibly rectangular) linear operator on
//! `Complex64` vectors. [`Formula::apply`] interprets a formula following
//! the matrix-formula → code mapping of Table I in the paper, without
//! materializing any matrix.

use bwfft_num::Complex64;
use std::fmt;
use std::sync::Arc;

/// A diagonal matrix specification.
#[derive(Clone)]
pub enum DiagSpec {
    /// The Cooley–Tukey twiddle diagonal `D_{m,n}` of size `m·n`:
    /// entry at position `i·n + j` is `ω_{mn}^{i·j}` (`i < m`, `j < n`).
    Twiddle { m: usize, n: usize },
    /// An arbitrary diagonal (used for tests and scaling operators).
    Explicit(Arc<Vec<Complex64>>),
}

impl DiagSpec {
    pub fn len(&self) -> usize {
        match self {
            DiagSpec::Twiddle { m, n } => m * n,
            DiagSpec::Explicit(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The diagonal entry at position `idx`.
    pub fn entry(&self, idx: usize) -> Complex64 {
        match self {
            DiagSpec::Twiddle { m, n } => {
                debug_assert!(idx < m * n);
                let i = idx / n;
                let j = idx % n;
                Complex64::root_of_unity((i * j) as i64, (m * n) as u64)
            }
            DiagSpec::Explicit(v) => v[idx],
        }
    }
}

/// An SPL formula: a structured linear operator.
///
/// ```
/// use bwfft_spl::Formula;
/// use bwfft_num::Complex64;
///
/// // The Cooley–Tukey factors of DFT_4, composed, equal DFT_4.
/// let ct = Formula::compose(vec![
///     Formula::tensor(Formula::dft(2), Formula::identity(2)),
///     Formula::twiddle(2, 2),
///     Formula::tensor(Formula::identity(2), Formula::dft(2)),
///     Formula::stride_l(2, 2),
/// ]);
/// let x = vec![Complex64::ONE; 4];
/// let direct = Formula::dft(4).apply_vec(&x);
/// let factored = ct.apply_vec(&x);
/// for (a, b) in direct.iter().zip(&factored) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone)]
pub enum Formula {
    /// `I_n` — identity.
    Identity(usize),
    /// `I_{rows×cols}` — rectangular identity (§II-C): copies the
    /// `min(rows, cols)` leading elements, zero-pads or truncates.
    RectIdentity { rows: usize, cols: usize },
    /// `DFT_n` — the dense discrete Fourier transform (naive semantics;
    /// fast algorithms are *factorizations* of this).
    Dft(usize),
    /// A diagonal matrix.
    Diag(DiagSpec),
    /// Stride permutation: transposes a row-major `rows × cols` input
    /// into `cols × rows`: `y[j·rows + i] = x[i·cols + j]`.
    StrideL { rows: usize, cols: usize },
    /// The 3D rotation `K^{k,n}_m` (§III-A): a `k × n × m` cube becomes
    /// `m × k × n`; source `(z, y, x)` maps to destination `(x, z, y)`.
    Rotation { k: usize, n: usize, m: usize },
    /// `A ⊗ B` — Kronecker (tensor) product.
    Tensor(Box<Formula>, Box<Formula>),
    /// `A · B · C ···` — composition, applied right-to-left.
    Compose(Vec<Formula>),
    /// `S_{n,b,i}` — scatter window (§III-B): an `n × b` matrix placing a
    /// `b`-element block at offset `i·b` of an `n`-vector.
    Scatter { n: usize, b: usize, i: usize },
    /// `G_{n,b,i}` — gather window: the transpose of `S_{n,b,i}`, a
    /// `b × n` matrix reading the block at offset `i·b`.
    Gather { n: usize, b: usize, i: usize },
}

impl Formula {
    // ----- constructors ---------------------------------------------------

    pub fn identity(n: usize) -> Self {
        Formula::Identity(n)
    }

    pub fn dft(n: usize) -> Self {
        assert!(n > 0);
        Formula::Dft(n)
    }

    /// `L` transposing a `rows × cols` row-major matrix. The paper's
    /// `L^{mn}_m` (Table I code) is `stride_l(m, n)`.
    pub fn stride_l(rows: usize, cols: usize) -> Self {
        Formula::StrideL { rows, cols }
    }

    /// `K^{k,n}_m` rotation of a `k × n × m` cube to `m × k × n`.
    pub fn rotation(k: usize, n: usize, m: usize) -> Self {
        Formula::Rotation { k, n, m }
    }

    /// Cooley–Tukey twiddle diagonal `D_{m,n}`.
    pub fn twiddle(m: usize, n: usize) -> Self {
        Formula::Diag(DiagSpec::Twiddle { m, n })
    }

    pub fn diag(entries: Vec<Complex64>) -> Self {
        Formula::Diag(DiagSpec::Explicit(Arc::new(entries)))
    }

    pub fn tensor(a: Formula, b: Formula) -> Self {
        Formula::Tensor(Box::new(a), Box::new(b))
    }

    /// Composition `factors[0] · factors[1] ··· factors[k-1]`; the last
    /// factor is applied first, as in written matrix products.
    pub fn compose(factors: Vec<Formula>) -> Self {
        assert!(!factors.is_empty());
        for w in factors.windows(2) {
            assert_eq!(
                w[0].cols(),
                w[1].rows(),
                "composition dimension mismatch: {} · {}",
                w[0],
                w[1]
            );
        }
        Formula::Compose(factors)
    }

    pub fn scatter(n: usize, b: usize, i: usize) -> Self {
        assert!(b > 0 && n.is_multiple_of(b) && i < n / b, "S_{{{n},{b},{i}}} invalid");
        Formula::Scatter { n, b, i }
    }

    pub fn gather(n: usize, b: usize, i: usize) -> Self {
        assert!(b > 0 && n.is_multiple_of(b) && i < n / b, "G_{{{n},{b},{i}}} invalid");
        Formula::Gather { n, b, i }
    }

    // ----- dimensions -----------------------------------------------------

    /// Output dimension (number of rows of the operator).
    pub fn rows(&self) -> usize {
        match self {
            Formula::Identity(n) | Formula::Dft(n) => *n,
            Formula::RectIdentity { rows, .. } => *rows,
            Formula::Diag(d) => d.len(),
            Formula::StrideL { rows, cols } => rows * cols,
            Formula::Rotation { k, n, m } => k * n * m,
            Formula::Tensor(a, b) => a.rows() * b.rows(),
            Formula::Compose(fs) => fs[0].rows(),
            Formula::Scatter { n, .. } => *n,
            Formula::Gather { b, .. } => *b,
        }
    }

    /// Input dimension (number of columns of the operator).
    pub fn cols(&self) -> usize {
        match self {
            Formula::Identity(n) | Formula::Dft(n) => *n,
            Formula::RectIdentity { cols, .. } => *cols,
            Formula::Diag(d) => d.len(),
            Formula::StrideL { rows, cols } => rows * cols,
            Formula::Rotation { k, n, m } => k * n * m,
            Formula::Tensor(a, b) => a.cols() * b.cols(),
            Formula::Compose(fs) => fs.last().map_or(0, |g| g.cols()),
            Formula::Scatter { b, .. } => *b,
            Formula::Gather { n, .. } => *n,
        }
    }

    pub fn is_square(&self) -> bool {
        self.rows() == self.cols()
    }

    // ----- interpretation (Table I) ----------------------------------------

    /// Applies the operator: `y = self · x`. `x.len()` must equal
    /// [`Formula::cols`] and `y.len()` must equal [`Formula::rows`].
    pub fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.cols(), "input size mismatch for {self}");
        assert_eq!(y.len(), self.rows(), "output size mismatch for {self}");
        match self {
            Formula::Identity(_) => y.copy_from_slice(x),
            Formula::RectIdentity { rows, cols } => {
                let keep = (*rows).min(*cols);
                y[..keep].copy_from_slice(&x[..keep]);
                for v in &mut y[keep..] {
                    *v = Complex64::ZERO;
                }
            }
            Formula::Dft(n) => {
                // Naive O(n²): this is the *definition*, used as oracle.
                for (k, yk) in y.iter_mut().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (l, xl) in x.iter().enumerate() {
                        acc += *xl * Complex64::root_of_unity((k * l) as i64, *n as u64);
                    }
                    *yk = acc;
                }
            }
            Formula::Diag(d) => {
                for (i, (yv, xv)) in y.iter_mut().zip(x).enumerate() {
                    *yv = *xv * d.entry(i);
                }
            }
            Formula::StrideL { rows, cols } => {
                // Table I: for i<rows, j<cols: y[j*rows + i] = x[i*cols + j].
                for i in 0..*rows {
                    for j in 0..*cols {
                        y[j * rows + i] = x[i * cols + j];
                    }
                }
            }
            Formula::Rotation { k, n, m } => {
                // (z, y, x) → (x, z, y): dst = x·k·n + z·n + y.
                for z in 0..*k {
                    for yy in 0..*n {
                        for xx in 0..*m {
                            y[xx * k * n + z * n + yy] = x[z * n * m + yy * m + xx];
                        }
                    }
                }
            }
            Formula::Tensor(a, b) => apply_tensor(a, b, x, y),
            Formula::Compose(fs) => {
                // Right-to-left with ping-pong temporaries.
                let mut cur: Vec<Complex64> = x.to_vec();
                for f in fs.iter().rev() {
                    let mut next = vec![Complex64::ZERO; f.rows()];
                    f.apply(&cur, &mut next);
                    cur = next;
                }
                y.copy_from_slice(&cur);
            }
            Formula::Scatter { b, i, .. } => {
                for v in y.iter_mut() {
                    *v = Complex64::ZERO;
                }
                y[i * b..(i + 1) * b].copy_from_slice(x);
            }
            Formula::Gather { b, i, .. } => {
                y.copy_from_slice(&x[i * b..(i + 1) * b]);
            }
        }
    }

    /// Convenience: applies to a vector, returning a fresh output.
    pub fn apply_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        let mut y = vec![Complex64::ZERO; self.rows()];
        self.apply(x, &mut y);
        y
    }
}

/// `(A ⊗ B) x` following Table I's loop structures.
///
/// The two structured cases the paper compiles to loops are
/// `I_m ⊗ B` (apply `B` to `m` contiguous blocks) and `A ⊗ I_n`
/// (apply `A` to `n` interleaved stride-`n` subsequences). The general
/// case factors through `A ⊗ B = (A ⊗ I)(I ⊗ B)`.
fn apply_tensor(a: &Formula, b: &Formula, x: &[Complex64], y: &mut [Complex64]) {
    match (a, b) {
        (Formula::Identity(m), _) => {
            let bc = b.cols();
            let br = b.rows();
            for i in 0..*m {
                b.apply(&x[i * bc..(i + 1) * bc], &mut y[i * br..(i + 1) * br]);
            }
        }
        (_, Formula::Identity(n)) => {
            // A ⊗ I_n: apply A to each of the n stride-n subsequences.
            let ac = a.cols();
            let ar = a.rows();
            let mut xin = vec![Complex64::ZERO; ac];
            let mut xout = vec![Complex64::ZERO; ar];
            for j in 0..*n {
                for i in 0..ac {
                    xin[i] = x[i * n + j];
                }
                a.apply(&xin, &mut xout);
                for i in 0..ar {
                    y[i * n + j] = xout[i];
                }
            }
        }
        _ => {
            // General: (A ⊗ B) = (A ⊗ I_{rows(B)}) · (I_{cols(A)} ⊗ B).
            let mid = Formula::tensor(Formula::identity(a.cols()), b.clone());
            let t = mid.apply_vec(x);
            let fin = Formula::tensor(a.clone(), Formula::identity(b.rows()));
            fin.apply(&t, y);
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Identity(n) => write!(f, "I_{n}"),
            Formula::RectIdentity { rows, cols } => write!(f, "I_{{{rows}x{cols}}}"),
            Formula::Dft(n) => write!(f, "DFT_{n}"),
            Formula::Diag(DiagSpec::Twiddle { m, n }) => write!(f, "D_{{{m},{n}}}"),
            Formula::Diag(DiagSpec::Explicit(v)) => write!(f, "diag[{}]", v.len()),
            Formula::StrideL { rows, cols } => write!(f, "L({rows}x{cols})"),
            Formula::Rotation { k, n, m } => write!(f, "K^{{{k},{n}}}_{{{m}}}"),
            Formula::Tensor(a, b) => write!(f, "({a} (x) {b})"),
            Formula::Compose(fs) => {
                let parts: Vec<String> = fs.iter().map(|p| p.to_string()).collect();
                write!(f, "{}", parts.join(" . "))
            }
            Formula::Scatter { n, b, i } => write!(f, "S_{{{n},{b},{i}}}"),
            Formula::Gather { n, b, i } => write!(f, "G_{{{n},{b},{i}}}"),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    // ----- Table I row-by-row ("table1" in the experiment index) -----------

    #[test]
    fn table1_compose_is_right_to_left() {
        // y = (A·B) x with A = diag(2), B = L: scaling happens after the
        // permutation.
        let n = 6;
        let scale = Formula::diag(vec![Complex64::new(2.0, 0.0); n]);
        let l = Formula::stride_l(2, 3);
        let x = random_complex(n, 1);
        let composed = Formula::compose(vec![scale.clone(), l.clone()]);
        let expect = scale.apply_vec(&l.apply_vec(&x));
        assert_eq!(composed.apply_vec(&x), expect);
    }

    #[test]
    fn table1_i_tensor_b_contiguous_blocks() {
        // (I_m ⊗ B) applies B to contiguous blocks.
        let m = 3;
        let b = Formula::dft(4);
        let x = random_complex(12, 2);
        let got = Formula::tensor(Formula::identity(m), b.clone()).apply_vec(&x);
        for i in 0..m {
            let blk = b.apply_vec(&x[i * 4..(i + 1) * 4]);
            assert_fft_close(&got[i * 4..(i + 1) * 4], &blk);
        }
    }

    #[test]
    fn table1_a_tensor_i_strided() {
        // (A ⊗ I_n) applies A to stride-n subsequences.
        let n = 4;
        let a = Formula::dft(3);
        let x = random_complex(12, 3);
        let got = Formula::tensor(a.clone(), Formula::identity(n)).apply_vec(&x);
        for j in 0..n {
            let sub: Vec<Complex64> = (0..3).map(|i| x[i * n + j]).collect();
            let expect = a.apply_vec(&sub);
            let out: Vec<Complex64> = (0..3).map(|i| got[i * n + j]).collect();
            assert_fft_close(&out, &expect);
        }
    }

    #[test]
    fn table1_diagonal_scales_elementwise() {
        let d: Vec<Complex64> = (0..5).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let x = random_complex(5, 4);
        let got = Formula::diag(d.clone()).apply_vec(&x);
        for i in 0..5 {
            assert_eq!(got[i], x[i] * d[i]);
        }
    }

    #[test]
    fn table1_stride_permutation_code() {
        // Table I: y[i + m*j] = x[n*i + j] for L^{mn}_m = stride_l(m, n).
        let (m, n) = (3, 5);
        let x = random_complex(m * n, 5);
        let got = Formula::stride_l(m, n).apply_vec(&x);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(got[i + m * j], x[n * i + j], "(i,j)=({i},{j})");
            }
        }
    }

    #[test]
    fn table1_blocked_stride_permutation_code() {
        // Table I last row: (L^{mn}_m ⊗ I_k) moves k-element packets.
        let (m, n, k) = (2, 3, 4);
        let x = random_complex(m * n * k, 6);
        let got =
            Formula::tensor(Formula::stride_l(m, n), Formula::identity(k)).apply_vec(&x);
        for i in 0..m {
            for j in 0..n {
                for t in 0..k {
                    assert_eq!(got[k * (i + m * j) + t], x[k * (n * i + j) + t]);
                }
            }
        }
    }

    // ----- structural sanity -----------------------------------------------

    #[test]
    fn dft_matches_definition_on_impulse() {
        // DFT of impulse at p is the sequence ω^{pk}.
        let n = 8;
        let x = bwfft_num::signal::impulse(n, 3);
        let y = Formula::dft(n).apply_vec(&x);
        for (k, v) in y.iter().enumerate() {
            let expect = Complex64::root_of_unity((3 * k) as i64, n as u64);
            assert!((*v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn rotation_maps_cube_correctly() {
        // 2×3×4 cube: (z,y,x) → (x,z,y) in an m×k×n = 4×2×3 cube.
        let (k, n, m) = (2, 3, 4);
        let x: Vec<Complex64> = (0..k * n * m).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let y = Formula::rotation(k, n, m).apply_vec(&x);
        for z in 0..k {
            for yy in 0..n {
                for xx in 0..m {
                    let src = x[z * n * m + yy * m + xx];
                    let dst = y[xx * k * n + z * n + yy];
                    assert_eq!(src, dst);
                }
            }
        }
    }

    #[test]
    fn scatter_gather_window_semantics() {
        let (n, b) = (12, 4);
        let x = random_complex(b, 7);
        for i in 0..n / b {
            let s = Formula::scatter(n, b, i).apply_vec(&x);
            assert_eq!(&s[i * b..(i + 1) * b], &x[..]);
            assert_eq!(s.iter().filter(|c| **c != Complex64::ZERO).count(), {
                x.iter().filter(|c| **c != Complex64::ZERO).count()
            });
            // G is the left inverse of S on its window.
            let g = Formula::gather(n, b, i).apply_vec(&s);
            assert_eq!(&g[..], &x[..]);
        }
    }

    #[test]
    fn rect_identity_pads_and_truncates() {
        let x = random_complex(3, 8);
        let padded = Formula::RectIdentity { rows: 5, cols: 3 }.apply_vec(&x);
        assert_eq!(&padded[..3], &x[..]);
        assert_eq!(padded[3], Complex64::ZERO);
        assert_eq!(padded[4], Complex64::ZERO);
        let trunc = Formula::RectIdentity { rows: 2, cols: 3 }.apply_vec(&x);
        assert_eq!(&trunc[..], &x[..2]);
    }

    #[test]
    #[should_panic(expected = "composition dimension mismatch")]
    fn compose_rejects_mismatched_dims() {
        let _ = Formula::compose(vec![Formula::dft(4), Formula::dft(5)]);
    }

    #[test]
    fn general_tensor_equals_matrix_kronecker() {
        // (DFT_2 ⊗ DFT_3) against the dense Kronecker product.
        let a = Formula::dft(2);
        let b = Formula::dft(3);
        let t = Formula::tensor(a.clone(), b.clone());
        let x = random_complex(6, 9);
        let got = t.apply_vec(&x);
        // Dense Kronecker: y[i1*3+i2] = Σ_{j1,j2} A[i1,j1] B[i2,j2] x[j1*3+j2].
        let mut expect = vec![Complex64::ZERO; 6];
        for i1 in 0..2 {
            for i2 in 0..3 {
                let mut acc = Complex64::ZERO;
                for j1 in 0..2 {
                    for j2 in 0..3 {
                        let av = Complex64::root_of_unity((i1 * j1) as i64, 2);
                        let bv = Complex64::root_of_unity((i2 * j2) as i64, 3);
                        acc += av * bv * x[j1 * 3 + j2];
                    }
                }
                expect[i1 * 3 + i2] = acc;
            }
        }
        assert_fft_close(&got, &expect);
    }
}
