//! Rewrite rules: the factorizations the paper builds on, each proved
//! against the dense semantics in the test suite.
//!
//! * Cooley–Tukey for 1D DFTs (§II-D),
//! * pencil–pencil decompositions of 2D and 3D DFTs (§II-D),
//! * the blocked-reshape stage decompositions of §III-A (the paper's
//!   main display equations),
//! * tensor and stride-permutation identities of §II-C.

use crate::formula::Formula;
use crate::gather_scatter::{fft2d_stage_perms, fft3d_stage_perms, StagePerm};

/// Cooley–Tukey: `DFT_{mn} = (DFT_m ⊗ I_n) · D_{m,n} · (I_m ⊗ DFT_n) · L`
/// where the initial stride permutation reads the input at stride `m`
/// (this crate's `stride_l(n, m)`; the paper's `L^{mn}_m`).
pub fn cooley_tukey(m: usize, n: usize) -> Formula {
    assert!(m > 1 && n > 1);
    Formula::compose(vec![
        Formula::tensor(Formula::dft(m), Formula::identity(n)),
        Formula::twiddle(m, n),
        Formula::tensor(Formula::identity(m), Formula::dft(n)),
        Formula::stride_l(n, m),
    ])
}

/// Fully recursive Cooley–Tukey expansion of `DFT_n` into radix-2
/// factors — demonstrates that the rewrite composes to any depth.
pub fn cooley_tukey_radix2(n: usize) -> Formula {
    assert!(bwfft_num::is_pow2(n));
    if n <= 2 {
        return Formula::dft(n);
    }
    let half = n / 2;
    Formula::compose(vec![
        Formula::tensor(Formula::dft(2), Formula::identity(half)),
        Formula::twiddle(2, half),
        Formula::tensor(Formula::identity(2), cooley_tukey_radix2(half)),
        Formula::stride_l(half, 2),
    ])
}

/// Pencil–pencil 2D DFT: `DFT_{n×m} = (DFT_n ⊗ I_m) · (I_n ⊗ DFT_m)`.
pub fn mdft_pencil_2d(n: usize, m: usize) -> Formula {
    Formula::compose(vec![
        Formula::tensor(Formula::dft(n), Formula::identity(m)),
        Formula::tensor(Formula::identity(n), Formula::dft(m)),
    ])
}

/// Pencil–pencil 3D DFT (§II-D):
/// `DFT_{k×n×m} = (DFT_k ⊗ I_{nm}) · (I_k ⊗ DFT_n ⊗ I_m) · (I_{kn} ⊗ DFT_m)`.
pub fn mdft_pencil_3d(k: usize, n: usize, m: usize) -> Formula {
    Formula::compose(vec![
        Formula::tensor(Formula::dft(k), Formula::identity(n * m)),
        Formula::tensor(
            Formula::identity(k),
            Formula::tensor(Formula::dft(n), Formula::identity(m)),
        ),
        Formula::tensor(Formula::identity(k * n), Formula::dft(m)),
    ])
}

/// The reference 3D transform as a pure tensor: `DFT_k ⊗ DFT_n ⊗ DFT_m`.
pub fn mdft_tensor_3d(k: usize, n: usize, m: usize) -> Formula {
    Formula::tensor(
        Formula::dft(k),
        Formula::tensor(Formula::dft(n), Formula::dft(m)),
    )
}

/// One stage of the blocked 2D decomposition (§III-A):
/// stage 0: `(L^{mn/μ}_{m/μ} ⊗ I_μ) · (I_n ⊗ DFT_m)`
/// stage 1: `(L^{mn/μ}_{n} ⊗ I_μ) · (I_{m/μ} ⊗ DFT_n ⊗ I_μ)`.
pub fn fft2d_blocked_stage(n: usize, m: usize, mu: usize, stage: usize) -> Formula {
    let perms = fft2d_stage_perms(n, m, mu);
    let compute = match stage {
        0 => Formula::tensor(Formula::identity(n), Formula::dft(m)),
        1 => Formula::tensor(
            Formula::identity(m / mu),
            Formula::tensor(Formula::dft(n), Formula::identity(mu)),
        ),
        _ => panic!("2D FFT has stages 0 and 1"),
    };
    Formula::compose(vec![stage_perm_formula(&perms[stage]), compute])
}

/// One stage of the blocked 3D decomposition (§III-A, the paper's main
/// display equation):
/// stage 0: `(K^{k,n}_{m/μ} ⊗ I_μ) · (I_{kn} ⊗ DFT_m)`
/// stage 1: `(K ⊗ I_μ) · (I_{mk/μ} ⊗ DFT_n ⊗ I_μ)`
/// stage 2: `(K ⊗ I_μ) · (I_{nm/μ} ⊗ DFT_k ⊗ I_μ)`.
pub fn fft3d_blocked_stage(k: usize, n: usize, m: usize, mu: usize, stage: usize) -> Formula {
    let perms = fft3d_stage_perms(k, n, m, mu);
    let compute = match stage {
        0 => Formula::tensor(Formula::identity(k * n), Formula::dft(m)),
        1 => Formula::tensor(
            Formula::identity(m / mu * k),
            Formula::tensor(Formula::dft(n), Formula::identity(mu)),
        ),
        2 => Formula::tensor(
            Formula::identity(n * m / mu),
            Formula::tensor(Formula::dft(k), Formula::identity(mu)),
        ),
        _ => panic!("3D FFT has stages 0, 1 and 2"),
    };
    Formula::compose(vec![stage_perm_formula(&perms[stage]), compute])
}

fn stage_perm_formula(p: &StagePerm) -> Formula {
    p.as_formula()
}

/// The complete blocked 2D FFT: stage 1 then stage 0 (right to left).
pub fn fft2d_blocked(n: usize, m: usize, mu: usize) -> Formula {
    Formula::compose(vec![
        fft2d_blocked_stage(n, m, mu, 1),
        fft2d_blocked_stage(n, m, mu, 0),
    ])
}

/// The complete blocked 3D FFT: stages 2 · 1 · 0.
pub fn fft3d_blocked(k: usize, n: usize, m: usize, mu: usize) -> Formula {
    Formula::compose(vec![
        fft3d_blocked_stage(k, n, m, mu, 2),
        fft3d_blocked_stage(k, n, m, mu, 1),
        fft3d_blocked_stage(k, n, m, mu, 0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::assert_formulas_equal;

    #[test]
    fn cooley_tukey_factors_the_dft() {
        for (m, n) in [(2usize, 2usize), (2, 4), (4, 2), (3, 5), (4, 4), (8, 2)] {
            assert_formulas_equal(&Formula::dft(m * n), &cooley_tukey(m, n));
        }
    }

    #[test]
    fn recursive_radix2_factors_the_dft() {
        for n in [2usize, 4, 8, 16, 32] {
            assert_formulas_equal(&Formula::dft(n), &cooley_tukey_radix2(n));
        }
    }

    #[test]
    fn tensor_commutation_identity() {
        // A_m ⊗ B_n = L^{mn}_m (B_n ⊗ A_m) L^{mn}_n  (§II-C).
        // In this crate's parameterization with A = DFT_m, B = DFT_n:
        // lhs = DFT_m ⊗ DFT_n, rhs = stride_l(n, m) · (DFT_n ⊗ DFT_m) ·
        // stride_l(m, n).
        let (m, n) = (3usize, 4usize);
        let lhs = Formula::tensor(Formula::dft(m), Formula::dft(n));
        let rhs = Formula::compose(vec![
            Formula::stride_l(n, m),
            Formula::tensor(Formula::dft(n), Formula::dft(m)),
            Formula::stride_l(m, n),
        ]);
        assert_formulas_equal(&lhs, &rhs);
    }

    #[test]
    fn stride_permutations_invert() {
        // L^{mn}_m · L^{mn}_n = I_{mn}.
        let (m, n) = (4usize, 6usize);
        let prod = Formula::compose(vec![
            Formula::stride_l(n, m),
            Formula::stride_l(m, n),
        ]);
        assert_formulas_equal(&prod, &Formula::identity(m * n));
    }

    #[test]
    fn pencil_2d_is_the_2d_dft() {
        let (n, m) = (4usize, 6usize);
        let tensor = Formula::tensor(Formula::dft(n), Formula::dft(m));
        assert_formulas_equal(&tensor, &mdft_pencil_2d(n, m));
    }

    #[test]
    fn pencil_3d_is_the_3d_dft() {
        let (k, n, m) = (2usize, 3usize, 4usize);
        assert_formulas_equal(&mdft_tensor_3d(k, n, m), &mdft_pencil_3d(k, n, m));
    }

    #[test]
    fn blocked_2d_decomposition_is_exact() {
        // The paper's §III-A 2D equation with blocked transpositions.
        for (n, m, mu) in [(4usize, 8usize, 4usize), (4, 8, 2), (8, 8, 4), (3, 4, 2)] {
            let dense2d = Formula::tensor(Formula::dft(n), Formula::dft(m));
            assert_formulas_equal(&dense2d, &fft2d_blocked(n, m, mu));
        }
    }

    #[test]
    fn blocked_3d_decomposition_is_exact() {
        // The paper's §III-A 3D equation with blocked rotations.
        for (k, n, m, mu) in [(2usize, 2usize, 4usize, 2usize), (2, 3, 4, 4), (3, 2, 4, 2)] {
            assert_formulas_equal(&mdft_tensor_3d(k, n, m), &fft3d_blocked(k, n, m, mu));
        }
    }

    #[test]
    fn blocked_3d_with_mu_1_matches_elementwise_rotation() {
        // μ = 1 degenerates to the element-wise rotation form.
        let (k, n, m) = (2usize, 3usize, 2usize);
        assert_formulas_equal(&mdft_tensor_3d(k, n, m), &fft3d_blocked(k, n, m, 1));
    }
}
