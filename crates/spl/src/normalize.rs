//! Formula normalization and simplification.
//!
//! SPIRAL's rule engine rewrites SPL expressions before code
//! generation; this module implements the subset this workspace
//! benefits from: flattening nested compositions, eliding identities,
//! fusing identity tensors (`I_m ⊗ I_n = I_{mn}`), collapsing inverse
//! stride-permutation pairs (`L·L⁻¹ = I`), and merging adjacent
//! diagonals. Normalization preserves semantics (proved by dense
//! comparison in the tests) and gives a canonical-enough form for
//! structural equality checks.

use crate::formula::{DiagSpec, Formula};
use bwfft_num::Complex64;
use std::sync::Arc;

/// Exhaustively simplifies a formula (bounded passes; each pass either
/// shrinks the tree or leaves it fixed).
pub fn simplify(f: &Formula) -> Formula {
    let mut cur = f.clone();
    for _ in 0..16 {
        let next = simplify_once(&cur);
        if structurally_equal(&next, &cur) {
            return next;
        }
        cur = next;
    }
    cur
}

fn simplify_once(f: &Formula) -> Formula {
    match f {
        Formula::Tensor(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            match (&a, &b) {
                // I_m ⊗ I_n = I_{mn}.
                (Formula::Identity(m), Formula::Identity(n)) => Formula::Identity(m * n),
                // I_1 ⊗ B = B; A ⊗ I_1 = A.
                (Formula::Identity(1), _) => b,
                (_, Formula::Identity(1)) => a,
                _ => Formula::tensor(a, b),
            }
        }
        Formula::Compose(fs) => {
            // Flatten nested compositions and simplify children.
            let mut flat: Vec<Formula> = Vec::new();
            for g in fs {
                let g = simplify_once(g);
                match g {
                    Formula::Compose(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            // Drop identities (square, size-preserving).
            flat.retain(|g| !matches!(g, Formula::Identity(_)));
            // Pairwise fusions right-to-left.
            let mut out: Vec<Formula> = Vec::new();
            for g in flat.into_iter() {
                if let Some(prev) = out.last() {
                    if let Some(fused) = fuse(prev, &g) {
                        out.pop();
                        out.push(fused);
                        continue;
                    }
                }
                out.push(g);
            }
            if out.len() > 1 {
                Formula::Compose(out)
            } else {
                out.pop().unwrap_or_else(|| Formula::Identity(f.rows()))
            }
        }
        other => other.clone(),
    }
}

/// Attempts to fuse the adjacent pair `a · b` (a applied after b).
fn fuse(a: &Formula, b: &Formula) -> Option<Formula> {
    match (a, b) {
        // L(r,c) · L(c,r) = I.
        (
            Formula::StrideL { rows: r1, cols: c1 },
            Formula::StrideL { rows: r2, cols: c2 },
        ) if r1 == c2 && c1 == r2 => Some(Formula::Identity(r1 * c1)),
        // diag · diag = diag of products.
        (Formula::Diag(d1), Formula::Diag(d2)) if d1.len() == d2.len() => {
            let prod: Vec<Complex64> =
                (0..d1.len()).map(|i| d1.entry(i) * d2.entry(i)).collect();
            Some(Formula::Diag(DiagSpec::Explicit(Arc::new(prod))))
        }
        _ => None,
    }
}

/// Structural (syntactic) equality — not semantic; used as the
/// fixed-point test and for cheap canonical-form comparisons.
pub fn structurally_equal(a: &Formula, b: &Formula) -> bool {
    match (a, b) {
        (Formula::Identity(x), Formula::Identity(y)) => x == y,
        (
            Formula::RectIdentity { rows: r1, cols: c1 },
            Formula::RectIdentity { rows: r2, cols: c2 },
        ) => r1 == r2 && c1 == c2,
        (Formula::Dft(x), Formula::Dft(y)) => x == y,
        (Formula::Diag(x), Formula::Diag(y)) => {
            x.len() == y.len() && (0..x.len()).all(|i| x.entry(i) == y.entry(i))
        }
        (
            Formula::StrideL { rows: r1, cols: c1 },
            Formula::StrideL { rows: r2, cols: c2 },
        ) => r1 == r2 && c1 == c2,
        (
            Formula::Rotation { k: k1, n: n1, m: m1 },
            Formula::Rotation { k: k2, n: n2, m: m2 },
        ) => k1 == k2 && n1 == n2 && m1 == m2,
        (Formula::Tensor(a1, b1), Formula::Tensor(a2, b2)) => {
            structurally_equal(a1, a2) && structurally_equal(b1, b2)
        }
        (Formula::Compose(f1), Formula::Compose(f2)) => {
            f1.len() == f2.len()
                && f1.iter().zip(f2).all(|(x, y)| structurally_equal(x, y))
        }
        (
            Formula::Scatter { n: n1, b: b1, i: i1 },
            Formula::Scatter { n: n2, b: b2, i: i2 },
        ) => n1 == n2 && b1 == b2 && i1 == i2,
        (
            Formula::Gather { n: n1, b: b1, i: i1 },
            Formula::Gather { n: n2, b: b2, i: i2 },
        ) => n1 == n2 && b1 == b2 && i1 == i2,
        _ => false,
    }
}

/// Number of nodes in the formula tree (simplification metric).
pub fn node_count(f: &Formula) -> usize {
    match f {
        Formula::Tensor(a, b) => 1 + node_count(a) + node_count(b),
        Formula::Compose(fs) => 1 + fs.iter().map(node_count).sum::<usize>(),
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::assert_formulas_equal;
    use crate::rewrite::{cooley_tukey, fft3d_blocked};

    fn check_preserves(f: &Formula) {
        let s = simplify(f);
        assert_formulas_equal(f, &s);
    }

    #[test]
    fn identity_tensors_fuse() {
        let f = Formula::tensor(Formula::identity(3), Formula::identity(4));
        let s = simplify(&f);
        assert!(structurally_equal(&s, &Formula::identity(12)));
    }

    #[test]
    fn unit_identities_vanish() {
        let f = Formula::tensor(
            Formula::identity(1),
            Formula::tensor(Formula::dft(4), Formula::identity(1)),
        );
        let s = simplify(&f);
        assert!(structurally_equal(&s, &Formula::dft(4)));
    }

    #[test]
    fn inverse_stride_pairs_cancel() {
        let f = Formula::compose(vec![
            Formula::dft(12),
            Formula::stride_l(3, 4),
            Formula::stride_l(4, 3),
        ]);
        let s = simplify(&f);
        assert!(structurally_equal(&s, &Formula::dft(12)), "{s}");
        check_preserves(&f);
    }

    #[test]
    fn nested_compositions_flatten() {
        let f = Formula::compose(vec![
            Formula::compose(vec![Formula::dft(4), Formula::identity(4)]),
            Formula::compose(vec![Formula::stride_l(2, 2)]),
        ]);
        let s = simplify(&f);
        assert!(matches!(&s, Formula::Compose(fs) if fs.len() == 2));
        check_preserves(&f);
    }

    #[test]
    fn diagonals_merge() {
        use bwfft_num::Complex64;
        let d1 = Formula::diag(vec![Complex64::new(2.0, 0.0); 4]);
        let d2 = Formula::diag(vec![Complex64::new(0.0, 1.0); 4]);
        let f = Formula::compose(vec![d1, d2]);
        let s = simplify(&f);
        assert!(matches!(&s, Formula::Diag(_)), "{s}");
        check_preserves(&f);
    }

    #[test]
    fn simplification_preserves_real_formulas() {
        check_preserves(&cooley_tukey(4, 6));
        check_preserves(&fft3d_blocked(2, 2, 4, 2));
    }

    #[test]
    fn simplification_never_grows() {
        for f in [
            cooley_tukey(4, 4),
            fft3d_blocked(2, 2, 4, 2),
            Formula::tensor(Formula::identity(2), Formula::identity(8)),
        ] {
            assert!(node_count(&simplify(&f)) <= node_count(&f));
        }
    }

    #[test]
    fn pure_identity_composition_collapses() {
        let f = Formula::compose(vec![Formula::identity(6), Formula::identity(6)]);
        let s = simplify(&f);
        assert!(structurally_equal(&s, &Formula::identity(6)));
    }
}
