//! The read/write matrices of §III-B and Table III.
//!
//! The paper separates each FFT stage into `W_{b,i} · Compute · R_{b,i}`:
//! the *read matrix* `R_{b,i} = G_{knm,b,i}` streams a contiguous
//! `b`-element block from memory into the cached buffer, and the *write
//! matrix* `W_{b,i} = (K ⊗ I_μ) · S_{knm,b,i}` scatters the computed
//! block back, folding the inter-stage reshape into the store stream.
//!
//! On two-socket systems the write matrices gain a global redistribution
//! factor (Table III): `W² = (L^{sk·nm/μ}_{nm/μ} ⊗ I_{kμ/sk}) · (I_sk ⊗
//! K ⊗ I_μ) · S` and `W³ = (L^{sk·k}_k ⊗ I_{mn/sk}) · (I_sk ⊗ K ⊗ I_μ) ·
//! S`, which move data across the QPI/HT link while writing.

use crate::formula::Formula;
use crate::perm::PermOp;

/// The full reshape permutation a stage's writes perform, possibly with
/// a per-socket local part and a cross-socket global part.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagePerm {
    /// Single-socket: one structured permutation over the whole array.
    Single(PermOp),
    /// Dual/multi-socket (Table III): `global · (I_sockets ⊗ local)`.
    TwoLevel {
        sockets: usize,
        /// Per-socket local rotation (acts on `size/sockets` points).
        local: PermOp,
        /// Cross-socket redistribution (acts on all points).
        global: PermOp,
    },
}

impl StagePerm {
    pub fn size(&self) -> usize {
        match self {
            StagePerm::Single(p) => p.size(),
            StagePerm::TwoLevel {
                sockets,
                local,
                global,
            } => {
                debug_assert_eq!(sockets * local.size(), global.size());
                global.size()
            }
        }
    }

    /// Destination of source element `s` (global index).
    #[inline]
    pub fn dst_of_src(&self, s: usize) -> usize {
        match self {
            StagePerm::Single(p) => p.dst_of_src(s),
            StagePerm::TwoLevel {
                local, global, ..
            } => {
                let ls = local.size();
                let socket = s / ls;
                let within = local.dst_of_src(s % ls);
                global.dst_of_src(socket * ls + within)
            }
        }
    }

    /// Length of contiguous runs preserved by the permutation.
    pub fn contiguous_run(&self) -> usize {
        match self {
            StagePerm::Single(p) => p.contiguous_run(),
            StagePerm::TwoLevel { local, global, .. } => {
                local.contiguous_run().min(global.contiguous_run())
            }
        }
    }

    /// Equivalent SPL formula (verification only).
    pub fn as_formula(&self) -> Formula {
        match self {
            StagePerm::Single(p) => p.as_formula(),
            StagePerm::TwoLevel {
                sockets,
                local,
                global,
            } => Formula::compose(vec![
                global.as_formula(),
                Formula::tensor(Formula::identity(*sockets), local.as_formula()),
            ]),
        }
    }
}

/// `R_{b,i}`: reads the contiguous block `[i·b, (i+1)·b)` of an
/// `n`-element array into the buffer.
#[derive(Clone, Copy, Debug)]
pub struct ReadMatrix {
    pub n: usize,
    pub b: usize,
    pub i: usize,
}

impl ReadMatrix {
    pub fn new(n: usize, b: usize, i: usize) -> Self {
        assert!(b > 0 && n.is_multiple_of(b) && i < n / b);
        Self { n, b, i }
    }

    /// Source (array) index feeding buffer slot `t`.
    #[inline]
    pub fn src_of_buf(&self, t: usize) -> usize {
        debug_assert!(t < self.b);
        self.i * self.b + t
    }

    pub fn as_formula(&self) -> Formula {
        Formula::gather(self.n, self.b, self.i)
    }

    /// Copies the block out of `src` into `buf`.
    pub fn load<T: Copy>(&self, src: &[T], buf: &mut [T]) {
        assert_eq!(src.len(), self.n);
        assert_eq!(buf.len(), self.b);
        buf.copy_from_slice(&src[self.i * self.b..(self.i + 1) * self.b]);
    }
}

/// `W_{b,i} = P · S_{n,b,i}`: scatters buffer slot `t` to array position
/// `P(i·b + t)` where `P` is the stage's reshape permutation.
#[derive(Clone, Copy, Debug)]
pub struct WriteMatrix {
    pub perm: StagePerm,
    pub b: usize,
    pub i: usize,
}

impl WriteMatrix {
    pub fn new(perm: StagePerm, b: usize, i: usize) -> Self {
        let n = perm.size();
        assert!(b > 0 && n.is_multiple_of(b) && i < n / b);
        Self { perm, b, i }
    }

    /// Destination (array) index for buffer slot `t`.
    #[inline]
    pub fn dst_of_buf(&self, t: usize) -> usize {
        debug_assert!(t < self.b);
        self.perm.dst_of_src(self.i * self.b + t)
    }

    pub fn as_formula(&self) -> Formula {
        let n = self.perm.size();
        Formula::compose(vec![
            self.perm.as_formula(),
            Formula::scatter(n, self.b, self.i),
        ])
    }

    /// Scatters `buf` into `dst` (which must be the whole array).
    pub fn store<T: Copy>(&self, buf: &[T], dst: &mut [T]) {
        assert_eq!(buf.len(), self.b);
        assert_eq!(dst.len(), self.perm.size());
        let run = self.perm.contiguous_run().max(1);
        let base = self.i * self.b;
        if self.b.is_multiple_of(run) {
            for (blk_idx, blk) in buf.chunks_exact(run).enumerate() {
                let d = self.perm.dst_of_src(base + blk_idx * run);
                dst[d..d + run].copy_from_slice(blk);
            }
        } else {
            for (t, v) in buf.iter().enumerate() {
                dst[self.perm.dst_of_src(base + t)] = *v;
            }
        }
    }
}

/// Builders for the three single-socket 3D write permutations (§III-A):
/// stage `s` writes with the blocked rotation that re-orients the cube
/// for stage `s+1`. Dimensions are in *elements*; `m % mu == 0` required.
pub fn fft3d_stage_perms(k: usize, n: usize, m: usize, mu: usize) -> [StagePerm; 3] {
    assert!(mu > 0 && m.is_multiple_of(mu));
    let mp = m / mu;
    [
        // Stage 1: k × n × (m/μ) packets → (m/μ) × k × n.
        StagePerm::Single(PermOp::BlockedK { k, n, m: mp, blk: mu }),
        // Stage 2: (m/μ) × k × n packets → n × (m/μ) × k.
        StagePerm::Single(PermOp::BlockedK { k: mp, n: k, m: n, blk: mu }),
        // Stage 3: n × (m/μ) × k packets → k × n × (m/μ)  (home).
        StagePerm::Single(PermOp::BlockedK { k: n, n: mp, m: k, blk: mu }),
    ]
}

/// The two 2D write permutations (§III-A, blocked transpositions).
pub fn fft2d_stage_perms(n: usize, m: usize, mu: usize) -> [StagePerm; 2] {
    assert!(mu > 0 && m.is_multiple_of(mu));
    let mp = m / mu;
    [
        // Stage 1: n × (m/μ) packets → (m/μ) × n.
        StagePerm::Single(PermOp::BlockedL { rows: n, cols: mp, blk: mu }),
        // Stage 2: (m/μ) × n packets → n × (m/μ)  (home).
        StagePerm::Single(PermOp::BlockedL { rows: mp, cols: n, blk: mu }),
    ]
}

/// Table III: the three write permutations for an `sk`-socket slab–pencil
/// 3D FFT. The data cube `k × n × m` is slab-split along `k`; stage 1
/// writes locally, stages 2 and 3 redistribute across sockets.
pub fn fft3d_numa_stage_perms(
    k: usize,
    n: usize,
    m: usize,
    mu: usize,
    sk: usize,
) -> [StagePerm; 3] {
    assert!(mu > 0 && m.is_multiple_of(mu));
    assert!(sk > 0 && k.is_multiple_of(sk) && n.is_multiple_of(sk));
    let mp = m / mu;
    let kl = k / sk; // local z-extent per socket
    let nl = n / sk; // local y-extent per socket (after stage-2 split)
    if sk == 1 {
        return fft3d_stage_perms(k, n, m, mu);
    }
    [
        // W¹: per-socket local rotation of the (k/sk) × n × (m/μ) slab.
        StagePerm::TwoLevel {
            sockets: sk,
            local: PermOp::BlockedK { k: kl, n, m: mp, blk: mu },
            global: PermOp::Id { n: k * n * m },
        },
        // W²: local rotation (m/μ) × (k/sk) × n → n × (m/μ) × (k/sk),
        // then interleave the per-socket z-chunks:
        // (L^{sk·nm/μ}_{nm/μ} ⊗ I_{kμ/sk}).
        StagePerm::TwoLevel {
            sockets: sk,
            local: PermOp::BlockedK { k: mp, n: kl, m: n, blk: mu },
            global: PermOp::BlockedL {
                rows: sk,
                cols: n * mp,
                blk: kl * mu,
            },
        },
        // W³: local rotation (n/sk) × (m/μ) × k → k × (n/sk) × (m/μ),
        // then interleave the per-socket y-chunks: (L^{sk·k}_k ⊗ I_{mn/sk}).
        StagePerm::TwoLevel {
            sockets: sk,
            local: PermOp::BlockedK { k: nl, n: mp, m: k, blk: mu },
            global: PermOp::BlockedL {
                rows: sk,
                cols: k,
                blk: nl * mp * mu,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::to_dense;
    use bwfft_num::signal::random_complex;
    use bwfft_num::Complex64;

    #[test]
    fn read_matrix_slides_over_input() {
        let x = random_complex(24, 1);
        let mut buf = vec![Complex64::ZERO; 6];
        for i in 0..4 {
            let r = ReadMatrix::new(24, 6, i);
            r.load(&x, &mut buf);
            assert_eq!(&buf[..], &x[i * 6..(i + 1) * 6]);
            assert_eq!(r.src_of_buf(0), i * 6);
            // Formula agreement.
            assert_eq!(r.as_formula().apply_vec(&x), buf);
        }
    }

    #[test]
    fn write_matrix_matches_formula_single_socket() {
        // 3D stage-1 write on a 2×2×8 cube with μ=4.
        let (k, n, m, mu) = (2usize, 2, 8, 4);
        let perms = fft3d_stage_perms(k, n, m, mu);
        let total = k * n * m;
        let b = 8;
        for i in 0..total / b {
            let w = WriteMatrix::new(perms[0], b, i);
            let buf = random_complex(b, 100 + i as u64);
            let mut dst = vec![Complex64::ZERO; total];
            w.store(&buf, &mut dst);
            let by_formula = w.as_formula().apply_vec(&buf);
            assert_eq!(dst, by_formula, "iteration {i}");
        }
    }

    #[test]
    fn iterating_all_blocks_reconstructs_full_permutation() {
        // Σ_i W_{b,i} · R_{b,i} applied over all i equals the stage
        // permutation applied to the whole array (§III-B).
        let (k, n, m, mu) = (2usize, 4, 8, 4);
        let total = k * n * m;
        let b = 16;
        let perm = fft3d_stage_perms(k, n, m, mu)[0];
        let x = random_complex(total, 7);
        let mut y = vec![Complex64::ZERO; total];
        let mut buf = vec![Complex64::ZERO; b];
        for i in 0..total / b {
            ReadMatrix::new(total, b, i).load(&x, &mut buf);
            WriteMatrix::new(perm, b, i).store(&buf, &mut y);
        }
        let mut expect = vec![Complex64::ZERO; total];
        match perm {
            StagePerm::Single(p) => p.permute(&x, &mut expect),
            _ => unreachable!(),
        }
        assert_eq!(y, expect);
    }

    #[test]
    fn fft2d_stage_perms_compose_to_identity() {
        // T2 · T1 = I: the two blocked transpositions undo each other.
        let (n, m, mu) = (4usize, 8, 4);
        let [t1, t2] = fft2d_stage_perms(n, m, mu);
        for s in 0..n * m {
            assert_eq!(t2.dst_of_src(t1.dst_of_src(s)), s);
        }
    }

    #[test]
    fn fft3d_stage_perms_compose_to_identity() {
        // R3 · R2 · R1 = I: three rotations return the cube home.
        let (k, n, m, mu) = (2usize, 3, 8, 4);
        let [r1, r2, r3] = fft3d_stage_perms(k, n, m, mu);
        for s in 0..k * n * m {
            assert_eq!(r3.dst_of_src(r2.dst_of_src(r1.dst_of_src(s))), s);
        }
    }

    #[test]
    fn numa_perms_reduce_to_single_socket_when_sk_is_1() {
        let a = fft3d_numa_stage_perms(4, 4, 8, 4, 1);
        let b = fft3d_stage_perms(4, 4, 8, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn table3_numa_write_perms_are_permutations() {
        let (k, n, m, mu, sk) = (4usize, 4, 8, 2, 2);
        for (idx, p) in fft3d_numa_stage_perms(k, n, m, mu, sk).iter().enumerate() {
            let dense = to_dense(&p.as_formula());
            assert!(dense.is_permutation(), "W{} not a permutation", idx + 1);
        }
    }

    #[test]
    fn table3_numa_perms_equal_single_socket_reshape_composition() {
        // The three NUMA stage permutations, composed, must also return
        // the cube to its home orientation (like the single-socket ones):
        // the redistribution is exact.
        let (k, n, m, mu, sk) = (4usize, 4, 8, 2, 2);
        let [w1, w2, w3] = fft3d_numa_stage_perms(k, n, m, mu, sk);
        for s in 0..k * n * m {
            assert_eq!(
                w3.dst_of_src(w2.dst_of_src(w1.dst_of_src(s))),
                fft3d_stage_perms(k, n, m, mu)
                    .iter()
                    .fold(s, |acc, p| p.dst_of_src(acc)),
                "NUMA and single-socket reshape chains must agree at {s}"
            );
        }
    }

    #[test]
    fn contiguous_runs_are_cacheline_sized() {
        let (k, n, m, mu) = (2usize, 2, 16, 4);
        for p in fft3d_stage_perms(k, n, m, mu) {
            assert_eq!(p.contiguous_run(), mu);
        }
        for p in fft3d_numa_stage_perms(4, 4, 16, 4, 2) {
            assert!(p.contiguous_run() >= mu);
        }
    }
}
