//! Dense expansion of SPL formulas (small sizes).
//!
//! Rewrite identities in this crate are *proved numerically* by expanding
//! both sides to dense matrices and comparing entrywise. This module is
//! strictly a verification tool — it is `O(n²)` memory and `O(n³)` work
//! and must never appear on a compute path.

use crate::Formula;
use bwfft_num::Complex64;

/// A dense row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<Complex64>,
}

impl DenseMatrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Complex64) {
        self.data[r * self.cols + c] = v;
    }

    /// Maximum absolute entrywise difference.
    pub fn max_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// True if this matrix is a 0/1 permutation matrix.
    pub fn is_permutation(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let one = |v: Complex64| (v - Complex64::ONE).abs() < 1e-12;
        let zero = |v: Complex64| v.abs() < 1e-12;
        for r in 0..self.rows {
            let ones = (0..self.cols).filter(|&c| one(self.at(r, c))).count();
            let zeros = (0..self.cols).filter(|&c| zero(self.at(r, c))).count();
            if ones != 1 || ones + zeros != self.cols {
                return false;
            }
        }
        for c in 0..self.cols {
            if (0..self.rows).filter(|&r| one(self.at(r, c))).count() != 1 {
                return false;
            }
        }
        true
    }

    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows);
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a.abs() == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.at(i, j) + a * rhs.at(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }
}

/// Expands a formula into its dense matrix by applying it to unit
/// vectors. Intended for operator sizes up to a few thousand.
pub fn to_dense(f: &Formula) -> DenseMatrix {
    let rows = f.rows();
    let cols = f.cols();
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut e = vec![Complex64::ZERO; cols];
    let mut col = vec![Complex64::ZERO; rows];
    for j in 0..cols {
        e[j] = Complex64::ONE;
        f.apply(&e, &mut col);
        e[j] = Complex64::ZERO;
        for (i, v) in col.iter().enumerate() {
            m.set(i, j, *v);
        }
    }
    m
}

/// Asserts two formulas denote the same operator (dense comparison).
#[track_caller]
pub fn assert_formulas_equal(a: &Formula, b: &Formula) {
    assert_eq!(a.rows(), b.rows(), "row mismatch: {a} vs {b}");
    assert_eq!(a.cols(), b.cols(), "col mismatch: {a} vs {b}");
    let da = to_dense(a);
    let db = to_dense(b);
    let diff = da.max_diff(&db);
    // Scale tolerance with operator magnitude (DFT entries are unit but
    // compositions of DFTs grow like √n per factor).
    let scale = da
        .data
        .iter()
        .map(|c| c.abs())
        .fold(1.0f64, f64::max);
    assert!(
        diff <= 1e-10 * scale,
        "formulas differ: max entry diff {diff:.3e} (scale {scale:.3e})\n  lhs: {a}\n  rhs: {b}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_identity() {
        let m = to_dense(&Formula::identity(4));
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { Complex64::ONE } else { Complex64::ZERO };
                assert_eq!(m.at(i, j), expect);
            }
        }
        assert!(m.is_permutation());
    }

    #[test]
    fn dense_dft_entries_are_roots() {
        let n = 6;
        let m = to_dense(&Formula::dft(n));
        for k in 0..n {
            for l in 0..n {
                let expect = Complex64::root_of_unity((k * l) as i64, n as u64);
                assert!((m.at(k, l) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stride_l_is_permutation_and_involution_pair() {
        let l = to_dense(&Formula::stride_l(3, 4));
        assert!(l.is_permutation());
        // L(3,4) · L(4,3) = I.
        let inv = to_dense(&Formula::stride_l(4, 3));
        let prod = l.matmul(&inv);
        let id = to_dense(&Formula::identity(12));
        assert!(prod.max_diff(&id) < 1e-12);
    }

    #[test]
    fn rotation_is_permutation() {
        assert!(to_dense(&Formula::rotation(2, 3, 4)).is_permutation());
        assert!(to_dense(&Formula::rotation(4, 4, 4)).is_permutation());
    }

    #[test]
    fn scatter_is_not_square_but_gather_scatter_composes_to_identity() {
        let s = Formula::scatter(12, 4, 2);
        let g = Formula::gather(12, 4, 2);
        let prod = to_dense(&Formula::compose(vec![g, s]));
        let id = to_dense(&Formula::identity(4));
        assert!(prod.max_diff(&id) < 1e-12);
    }

    #[test]
    fn sum_of_scatter_gather_is_identity() {
        // I_n = Σ_i S_{n,b,i} · G_{n,b,i} — the sliding-window identity
        // from §III-B of the paper.
        let (n, b) = (12, 3);
        let id = to_dense(&Formula::identity(n));
        let mut acc = DenseMatrix::zeros(n, n);
        for i in 0..n / b {
            let sg = to_dense(&Formula::compose(vec![
                Formula::scatter(n, b, i),
                Formula::gather(n, b, i),
            ]));
            for t in 0..acc.data.len() {
                acc.data[t] += sg.data[t];
            }
        }
        assert!(acc.max_diff(&id) < 1e-12);
    }

    #[test]
    fn assert_formulas_equal_catches_difference() {
        let a = Formula::dft(4);
        let b = Formula::identity(4);
        let result = std::panic::catch_unwind(|| assert_formulas_equal(&a, &b));
        assert!(result.is_err());
    }
}
