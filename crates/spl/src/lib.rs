//! SPL — the Signal Processing Language of the SPIRAL project, as used by
//! Popovici, Low & Franchetti (IPDPS 2018) to specify bandwidth-efficient
//! multidimensional FFTs.
//!
//! SPL describes fast transform algorithms as factorizations of the dense
//! transform matrix into structured sparse factors: identities `I_n`,
//! tensor (Kronecker) products `A ⊗ B`, stride permutations `L`, 3D
//! rotations `K`, twiddle diagonals `D`, and the gather/scatter windows
//! `G`/`S` that the paper introduces to separate memory traffic from
//! computation (§III-B).
//!
//! In this workspace SPL plays the same role it plays in the paper:
//! it is the *specification* against which the fast kernels in
//! `bwfft-kernels` and the double-buffered pipeline in `bwfft-core` are
//! verified, and the source from which memory access streams are derived
//! for the machine simulator (`dataflow`).
//!
//! # Conventions
//!
//! All operators act on column vectors from the left, so a composition
//! `A · B` applies `B` first (as in the paper). Multi-dimensional data is
//! row-major with the **last** dimension fastest: a `k × n × m` cube
//! stores element `(z, y, x)` at `z·n·m + y·m + x`, matching Fig. 4.
//!
//! The stride permutation is parameterized by its input shape:
//! [`Formula::stride_l(rows, cols)`] transposes a row-major `rows × cols`
//! matrix into `cols × rows`, i.e. `y[j·rows + i] = x[i·cols + j]`.
//! The paper's `L^{mn}_m` (Table I) is `stride_l(m, n)` in this crate.

pub mod dataflow;
pub mod dense;
pub mod formula;
pub mod gather_scatter;
pub mod normalize;
pub mod perm;
pub mod rewrite;

pub use formula::Formula;
pub use perm::PermOp;
