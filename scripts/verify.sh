#!/usr/bin/env bash
# Full verification gate: build, lint, test. Run from the repo root.
#
#   scripts/verify.sh          # everything, full test depth
#   scripts/verify.sh --fast   # skip the release build, cap proptest
#                              # cases, skip #[ignore]d slow tests
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "--fast" ] && fast=1

echo "== clippy (lints are errors; unwrap/expect denied in library code) =="
cargo clippy --workspace --all-targets -- -D warnings

if [ "$fast" -eq 0 ]; then
  echo "== release build =="
  cargo build --release
fi

echo "== tests =="
if [ "$fast" -eq 1 ]; then
  # Shallow-but-wide: every test runs, property tests at reduced depth,
  # #[ignore]d slow simulations excluded.
  PROPTEST_CASES=32 cargo test --workspace -q
else
  # Full depth, including #[ignore]d slow tests.
  cargo test --workspace -q -- --include-ignored
fi

echo "== tuner smoke (cache hit + wisdom reuse) =="
wisdom="$(mktemp -t bwfft-wisdom.XXXXXX)"
rm -f "$wisdom"
benchdir="$(mktemp -d -t bwfft-bench.XXXXXX)"
trap 'rm -f "$wisdom"; rm -rf "$benchdir"' EXIT
# Fresh run: the second in-process request for the same shape must be a
# cache hit (exactly one search).
out1="$(cargo run -q --bin bwfft-cli -- tune --dims 32x32 --model-only --plan-stats --wisdom "$wisdom")"
echo "$out1" | grep -q "hits=1 misses=1" \
  || { echo "tuner smoke FAILED: expected hits=1 misses=1 in:"; echo "$out1"; exit 1; }
# Second run: the wisdom file must make tuning skip entirely.
out2="$(cargo run -q --bin bwfft-cli -- tune --dims 32x32 --model-only --plan-stats --wisdom "$wisdom")"
echo "$out2" | grep -q "tuning skipped (wisdom hit)" \
  || { echo "tuner smoke FAILED: wisdom not reused in:"; echo "$out2"; exit 1; }
echo "$out2" | grep -q "misses=0" \
  || { echo "tuner smoke FAILED: expected misses=0 in:"; echo "$out2"; exit 1; }
echo "tuner smoke: OK"

echo "== profile smoke (--profile=json emits parseable, finite report) =="
# The JSON trace report is the last line of stdout by contract.
profile_json="$(cargo run -q --bin bwfft-cli -- run --dims 64x64 --threads 2,2 --profile=json | tail -n 1)"
echo "$profile_json" | python3 -c '
import json, math, sys

rep = json.load(sys.stdin)
schema = rep["schema"]
assert schema == "bwfft-trace/1", f"unexpected schema {schema!r}"
assert rep["total_wall_ns"] > 0
assert len(rep["stages"]) == 2, "2D run must profile two stages"
for s in rep["stages"]:
    f = s["overlap_fraction"]
    assert math.isfinite(f) and 0.0 <= f <= 1.0, f"overlap {f}"
    assert s["wall_ns"] > 0
print("profile smoke: OK")
' || { echo "profile smoke FAILED on:"; echo "$profile_json"; exit 1; }

echo "== bench smoke (BENCH json valid; derated gate trips) =="
# A tiny run must produce a valid versioned bwfft-bench/1 record.
cargo run -q --bin bwfft-cli -- bench --suite smoke --reps 2 --warmup 1 \
  --out "$benchdir/BENCH_a.json" > /dev/null
python3 -c '
import json, math, sys

rep = json.load(open(sys.argv[1]))
assert rep["schema"] == "bwfft-bench/1", rep["schema"]
assert rep["suites"], "empty suite list"
for s in rep["suites"]:
    assert s["median_ns"] > 0 and math.isfinite(s["median_ns"])
    assert s["ci_lo_ns"] <= s["median_ns"] <= s["ci_hi_ns"], s["key"]
    assert s["stages"], s["key"]
print("bench record: OK")
' "$benchdir/BENCH_a.json" \
  || { echo "bench smoke FAILED: invalid BENCH record"; exit 1; }
# Gate self-test: the same suite derated 3x must exit nonzero, with
# the machine verdict as the last stdout line saying the gate failed.
if cargo run -q --bin bwfft-cli -- bench --suite smoke --reps 2 --warmup 1 \
     --out "$benchdir/BENCH_b.json" --derate 3 \
     --compare "$benchdir/BENCH_a.json" > "$benchdir/gate.out" 2> "$benchdir/gate.err"; then
  echo "bench smoke FAILED: derated compare did not exit nonzero"; exit 1
fi
grep -q "regression" "$benchdir/gate.err" \
  || { echo "bench smoke FAILED: failure message lacks regression summary:"; cat "$benchdir/gate.err"; exit 1; }
tail -n 1 "$benchdir/gate.out" | python3 -c '
import json, sys

v = json.load(sys.stdin)
assert v["schema"] == "bwfft-bench-verdict/1", v["schema"]
assert v["gate_passes"] is False
assert any(p["verdict"] == "regression" for p in v["pairs"])
print("bench gate: OK")
' || { echo "bench smoke FAILED: bad verdict json:"; tail -n 1 "$benchdir/gate.out"; exit 1; }
echo "bench smoke: OK"

echo "== soak smoke (chaos harness: never wrong, never a panic) =="
# A short seeded pass over the full fault matrix with the supervisor in
# charge; any silent corruption or panic is a hard failure.
soak_out="$(cargo run -q --bin bwfft-cli -- soak --iters 24 --seed 7)"
echo "$soak_out" | grep -q "soak contract holds" \
  || { echo "soak smoke FAILED:"; echo "$soak_out"; exit 1; }
echo "soak smoke: OK"

echo "== serve smoke (overload matrix + open-loop latency record) =="
# A short seeded pass over the concurrent overload matrix (burst /
# oversized / faults / shutdown races): every submission must terminate
# with exactly one typed outcome and every completion must verify.
serve_soak_out="$(cargo run -q --bin bwfft-cli -- soak --iters 4 --seed 7 \
  --serve --serve-iters 12)"
echo "$serve_soak_out" | grep -q "serve soak contract holds" \
  || { echo "serve soak smoke FAILED:"; echo "$serve_soak_out"; exit 1; }
# The open-loop latency bench must emit a valid record whose service
# columns balance, and a self-compare must pass the p99 gate path.
cargo run -q --bin bwfft-cli -- bench --suite serve --requests 16 --workers 2 \
  --queue-depth 8 --seed 42 --out "$benchdir/BENCH_serve.json" > /dev/null
python3 -c '
import json, sys

rep = json.load(open(sys.argv[1]))
assert rep["schema"] == "bwfft-bench/1", rep["schema"]
assert rep["suite_kind"] == "serve", rep["suite_kind"]
m = rep["suites"][0]["serve"]
assert m["submitted"] == m["completed"] + m["deadline_exceeded"] + m["failed"], m
assert m["p99_ns"] >= m["p50_ns"] >= 0.0, m
print("serve record: OK")
' "$benchdir/BENCH_serve.json" \
  || { echo "serve smoke FAILED: invalid serve record"; exit 1; }
cargo run -q --bin bwfft-cli -- bench --current "$benchdir/BENCH_serve.json" \
  --compare "$benchdir/BENCH_serve.json" > /dev/null \
  || { echo "serve smoke FAILED: self-compare tripped the gate"; exit 1; }
echo "serve smoke: OK"

echo "== ooc smoke (out-of-core run survives an injected read fault) =="
# A file-backed transform 4x larger than its working-memory budget,
# with one injected stage-1 read fault: the retry ladder must absorb
# it (faults_hit=1, no wrong answer) and the sampled oracle must hold.
ooc_out="$(cargo run -q --bin bwfft-cli -- ooc --n 4096 --budget 16384 \
  --bins 8 --seed 7 --inject-io-fault read,1,0)"
echo "$ooc_out" | grep -q "ooc contract holds" \
  || { echo "ooc smoke FAILED: oracle contract line missing in:"; echo "$ooc_out"; exit 1; }
echo "$ooc_out" | grep -q "faults_hit=1" \
  || { echo "ooc smoke FAILED: injected fault did not fire in:"; echo "$ooc_out"; exit 1; }
echo "ooc smoke: OK"

echo "== ooc crash smoke (SIGABRT mid-stage, resume from the journal) =="
# Kill a checkpointed run right after block 0 of stage 3 commits its
# journal record (the child genuinely dies by SIGABRT, exit 134), then
# resume in a fresh process: the journal must skip every finished
# block, re-verify the journaled checksums, and the sampled oracle
# must still hold (DESIGN.md §15).
cargo build -q --bin bwfft-cli
crashdir="$benchdir/ooc-crash"
rc=0
./target/debug/bwfft-cli ooc --n 4096 --budget 16384 --seed 7 \
  --workspace "$crashdir" --crash-at 3,0 > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 134 ] \
  || { echo "ooc crash smoke FAILED: expected SIGABRT (exit 134), got $rc"; exit 1; }
[ -f "$crashdir/journal.bwfft" ] \
  || { echo "ooc crash smoke FAILED: killed run left no journal"; exit 1; }
resume_out="$(./target/debug/bwfft-cli ooc --n 4096 --budget 16384 --seed 7 \
  --workspace "$crashdir" --resume --resume-verify all)"
echo "$resume_out" | grep -q "ooc contract holds" \
  || { echo "ooc crash smoke FAILED: oracle broke after resume in:"; echo "$resume_out"; exit 1; }
echo "$resume_out" | grep -q "resume: resumed=true" \
  || { echo "ooc crash smoke FAILED: resume line missing in:"; echo "$resume_out"; exit 1; }
skipped=$(echo "$resume_out" | sed -n 's/.*skipped_blocks=\([0-9]*\).*/\1/p')
[ "${skipped:-0}" -gt 0 ] \
  || { echo "ooc crash smoke FAILED: no blocks skipped on resume in:"; echo "$resume_out"; exit 1; }
echo "ooc crash smoke: OK (skipped_blocks=$skipped)"

echo "== r2c smoke (packed half-spectrum path: differential + Parseval + round trip) =="
r2c_out="$(cargo run -q --bin bwfft-cli -- r2c --dims 16x32 --threads 2,2 --verify)"
echo "$r2c_out" | grep -q "r2c contract holds" \
  || { echo "r2c smoke FAILED: contract line missing in:"; echo "$r2c_out"; exit 1; }
echo "r2c smoke: OK"

echo "== conv smoke (fused spectral convolution: impulse identity + oracles) =="
conv_out="$(cargo run -q --bin bwfft-cli -- conv --dims 16x32 --impulse --verify)"
echo "$conv_out" | grep -q "conv contract holds" \
  || { echo "conv smoke FAILED: contract line missing in:"; echo "$conv_out"; exit 1; }
# The real path rides the same recovery ladder: a compute panic
# mid-stage must escalate, and every check must still hold.
conv_rec_out="$(cargo run -q --bin bwfft-cli -- conv --dims 8x16 --impulse --verify \
  --recover --integrity --inject-panic compute,0,1 --timeout-ms 2000)"
echo "$conv_rec_out" | grep -q "recovered at the" \
  || { echo "conv recovery smoke FAILED: no recovery in:"; echo "$conv_rec_out"; exit 1; }
echo "$conv_rec_out" | grep -q "conv contract holds" \
  || { echo "conv recovery smoke FAILED: contract broke in:"; echo "$conv_rec_out"; exit 1; }
echo "conv smoke: OK"

echo "== recovery smoke (escalation ladder + recovery marks in profile) =="
# A fault that kills both real executors must escalate to the reference
# tier, still verify, and export recovery marks in the profile JSON.
rec_out="$(cargo run -q --bin bwfft-cli -- run --dims 8x8x16 --threads 2,2 \
  --integrity --recover --verify --inject-panic compute,0,1 --timeout-ms 2000 \
  --profile=json)"
echo "$rec_out" | grep -q "recovered at the reference tier" \
  || { echo "recovery smoke FAILED: no escalation to reference in:"; echo "$rec_out"; exit 1; }
echo "$rec_out" | tail -n 1 | python3 -c '
import json, sys

rep = json.load(sys.stdin)
marks = [m for m in rep.get("marks", []) if m["kind"] == "recovery"]
assert marks, "profile JSON lacks recovery marks"
assert any("recovered at reference" in m["label"] for m in marks), marks
print("recovery smoke: OK")
' || { echo "recovery smoke FAILED: bad profile json"; exit 1; }

echo "== integrity overhead gate (guards must cost < 3% median, fast suite) =="
# Deterministic half: replay-compare the committed record pair (one
# paired fast-suite run with the guards armed on the guarded side).
# This asserts the recorded overhead without running anything.
if ! cargo run -q --bin bwfft-cli -- bench \
     --current benchmarks/BENCH_integrity_guarded.json \
     --compare benchmarks/BENCH_integrity_plain.json \
     --threshold 3 > "$benchdir/integrity_replay.out" 2>&1; then
  echo "integrity overhead gate FAILED: committed record pair exceeds 3% median:"
  cat "$benchdir/integrity_replay.out"
  exit 1
fi
echo "integrity overhead gate (recorded pair): OK (< 3% median)"
# Live half (full mode only): a fresh paired run — every timed
# iteration alternates one plain and one guarded rep so machine drift
# cancels out of the pair. Even paired, a single sub-ms shape on this
# 1-CPU VM can spike +25% from scheduler noise, so the live rule is
# shaped for what it exists to catch — a *systematic* guard-cost
# increase: fail on three or more CI-separated regressions beyond 3%
# (a real cost change shows on most pipelined shapes at once), or any
# single shape beyond the catastrophic 40% line.
if [ "$fast" -eq 1 ]; then
  echo "integrity overhead gate (live): skipped (--fast; run the full gate locally)"
else
  if ! cargo run -q --release --bin bwfft-cli -- bench --suite fast --reps 15 --warmup 3 \
       --integrity --baseline-out "$benchdir/BENCH_plain.json" \
       --out "$benchdir/BENCH_guarded.json" \
       --threshold 40 > "$benchdir/integrity.out" 2>&1; then
    echo "integrity overhead gate FAILED: a guarded shape regressed beyond 40%:"
    cat "$benchdir/integrity.out"
    exit 1
  fi
  tail -n 1 "$benchdir/integrity.out" | python3 -c '
import json, sys

v = json.load(sys.stdin)
assert v["schema"] == "bwfft-bench-verdict/1", v["schema"]
bad = [p for p in v["pairs"] if p["delta_pct"] > 3.0 and p["ci_separated"]]
if len(bad) >= 3:
    names = ", ".join("{} {:+.1f}%".format(p["key"], p["delta_pct"]) for p in bad)
    print(f"systematic guard overhead beyond 3% median on {len(bad)} shapes: {names}")
    sys.exit(1)
print(f"live paired run: {len(bad)} isolated shape(s) beyond 3% (noise allowance < 3)")
' || { echo "integrity overhead gate FAILED: systematic cost increase:"; cat "$benchdir/integrity.out"; exit 1; }
  echo "integrity overhead gate (live): OK (no systematic increase)"
fi

echo "== metrics smoke (serve --metrics=json, stat, prometheus text) =="
# A paced serve run with the periodic sink armed: stdout must carry at
# least two bwfft-metrics/1 snapshot lines (periodic + final), and the
# final one is the last line by contract.
cargo run -q --bin bwfft-cli -- serve --requests 12 --arrival-us 5000 \
  --metrics=json --metrics-every-ms 20 > "$benchdir/serve_metrics.out"
snaps=$(grep -c '"schema":"bwfft-metrics/1"' "$benchdir/serve_metrics.out")
[ "$snaps" -ge 2 ] \
  || { echo "metrics smoke FAILED: expected >=2 snapshots, got $snaps"; exit 1; }
tail -n 1 "$benchdir/serve_metrics.out" | python3 -c '
import json, sys

snap = json.load(sys.stdin)
assert snap["schema"] == "bwfft-metrics/1", snap["schema"]
c = snap["counters"]
assert c["serve.submitted"] == 12 and c["serve.completed"] == 12, c
h = snap["histograms"]["serve.request_ns"]
assert h["count"] == 12 and h["min"] <= h["max"], h
assert sum(n for _, n in h["buckets"]) == h["count"], h
print("serve --metrics=json: OK")
' || { echo "metrics smoke FAILED: bad final snapshot"; exit 1; }
# stat must diff the first periodic snapshot against the final one —
# fed the raw transcripts (it reads the last parseable JSON line).
grep '"schema":"bwfft-metrics/1"' "$benchdir/serve_metrics.out" | head -n 1 \
  > "$benchdir/stat_from.json"
tail -n 1 "$benchdir/serve_metrics.out" > "$benchdir/stat_to.json"
stat_out="$(cargo run -q --bin bwfft-cli -- stat \
  --from "$benchdir/stat_from.json" --to "$benchdir/stat_to.json")"
echo "$stat_out" | grep -q "serve.completed" \
  || { echo "metrics smoke FAILED: stat lacks counter table:"; echo "$stat_out"; exit 1; }
echo "$stat_out" | grep -q "serve.request_ns" \
  || { echo "metrics smoke FAILED: stat lacks histogram table:"; echo "$stat_out"; exit 1; }
# The default export is Prometheus text: typed families, final values.
prom_out="$(cargo run -q --bin bwfft-cli -- serve --requests 4 --metrics)"
echo "$prom_out" | grep -q "^# TYPE serve_completed counter" \
  || { echo "metrics smoke FAILED: prometheus TYPE line missing"; exit 1; }
echo "$prom_out" | grep -q "^serve_submitted 4" \
  || { echo "metrics smoke FAILED: prometheus counter value missing"; exit 1; }
echo "metrics smoke: OK"

echo "== metrics overhead gate (instruments must cost < 2% median, serve pair) =="
# Deterministic half: replay-compare the committed paired record
# (metrics+flight armed vs bare, same shape and schedule). Asserts the
# recorded overhead without running anything.
if ! cargo run -q --bin bwfft-cli -- bench \
     --current benchmarks/BENCH_metrics_on.json \
     --compare benchmarks/BENCH_metrics_off.json \
     --threshold 2 > "$benchdir/metrics_replay.out" 2>&1; then
  echo "metrics overhead gate FAILED: committed record pair exceeds 2% median:"
  cat "$benchdir/metrics_replay.out"
  exit 1
fi
echo "metrics overhead gate (recorded pair): OK (< 2% median)"
# Live half (full mode only): a fresh paired run. Open-loop medians on
# a shared VM jitter a few percent either way, so the live rule only
# catches a *catastrophic* instrument-cost change (>25% median, the
# built-in pair gate is median-only); the committed pair above carries
# the precise < 2% claim.
if [ "$fast" -eq 1 ]; then
  echo "metrics overhead gate (live): skipped (--fast; run the full gate locally)"
else
  if ! cargo run -q --release --bin bwfft-cli -- bench --suite serve \
       --dims 64x64 --buffer 512 --requests 96 --workers 2 --queue-depth 16 \
       --arrival-us 2500 --seed 42 --metrics-overhead --threshold 25 \
       --baseline-out "$benchdir/BENCH_metrics_off.json" \
       --out "$benchdir/BENCH_metrics_on.json" > "$benchdir/metrics_live.out" 2>&1; then
    echo "metrics overhead gate FAILED: live paired run beyond 25% median:"
    cat "$benchdir/metrics_live.out"
    exit 1
  fi
  echo "metrics overhead gate (live): OK (no catastrophic increase)"
fi

echo "verify: OK"
