#!/usr/bin/env bash
# Full verification gate: build, lint, test. Run from the repo root.
#
#   scripts/verify.sh          # everything
#   scripts/verify.sh --fast   # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "--fast" ] && fast=1

echo "== clippy (lints are errors; unwrap/expect denied in library code) =="
cargo clippy --workspace --all-targets -- -D warnings

if [ "$fast" -eq 0 ]; then
  echo "== release build =="
  cargo build --release
fi

echo "== tests =="
cargo test --workspace -q

echo "verify: OK"
