#!/usr/bin/env bash
# Full verification gate: build, lint, test. Run from the repo root.
#
#   scripts/verify.sh          # everything
#   scripts/verify.sh --fast   # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "--fast" ] && fast=1

echo "== clippy (lints are errors; unwrap/expect denied in library code) =="
cargo clippy --workspace --all-targets -- -D warnings

if [ "$fast" -eq 0 ]; then
  echo "== release build =="
  cargo build --release
fi

echo "== tests =="
cargo test --workspace -q

echo "== tuner smoke (cache hit + wisdom reuse) =="
wisdom="$(mktemp -t bwfft-wisdom.XXXXXX)"
rm -f "$wisdom"
trap 'rm -f "$wisdom"' EXIT
# Fresh run: the second in-process request for the same shape must be a
# cache hit (exactly one search).
out1="$(cargo run -q --bin bwfft-cli -- tune --dims 32x32 --model-only --plan-stats --wisdom "$wisdom")"
echo "$out1" | grep -q "hits=1 misses=1" \
  || { echo "tuner smoke FAILED: expected hits=1 misses=1 in:"; echo "$out1"; exit 1; }
# Second run: the wisdom file must make tuning skip entirely.
out2="$(cargo run -q --bin bwfft-cli -- tune --dims 32x32 --model-only --plan-stats --wisdom "$wisdom")"
echo "$out2" | grep -q "tuning skipped (wisdom hit)" \
  || { echo "tuner smoke FAILED: wisdom not reused in:"; echo "$out2"; exit 1; }
echo "$out2" | grep -q "misses=0" \
  || { echo "tuner smoke FAILED: expected misses=0 in:"; echo "$out2"; exit 1; }
echo "tuner smoke: OK"

echo "verify: OK"
