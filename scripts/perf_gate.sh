#!/usr/bin/env bash
# Performance regression gate: run the canonical bench suite, write the
# BENCH_<gitrev>.json trajectory point, and compare it against a
# baseline record. Exits nonzero (naming the regressed suite and stage)
# when any paired suite's median is more than THRESHOLD percent slower
# with statistically separated confidence intervals.
#
#   scripts/perf_gate.sh [BASELINE] [SUITE] [THRESHOLD_PCT]
#
# Defaults: benchmarks/BENCH_seed.json, the fast suite, and a loose 50%
# threshold — the checked-in baseline was measured on the seed VM, so a
# different host legitimately differs; the gate is for order-of-
# magnitude regressions (lost overlap, accidental O(n²)), not ±10%.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-benchmarks/BENCH_seed.json}"
suite="${2:-fast}"
threshold="${3:-50}"

[ -f "$baseline" ] || { echo "perf_gate: baseline $baseline not found" >&2; exit 1; }

rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
out="BENCH_${rev}.json"

echo "== perf gate: $suite suite vs $baseline (threshold ${threshold}%) =="
cargo run -q --release --bin bwfft-cli -- bench \
  --suite "$suite" \
  --out "$out" \
  --compare "$baseline" \
  --threshold "$threshold"
echo "perf gate: OK ($out)"
