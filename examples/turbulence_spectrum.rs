//! Turbulence energy spectrum — the kind of workload the paper's
//! introduction motivates (large 3D FFTs in spectral simulation
//! pipelines).
//!
//! A synthetic velocity field with a Kolmogorov-like `E(κ) ∝ κ^(−5/3)`
//! spectrum is synthesized in Fourier space (random phases), brought to
//! physical space with the *inverse* double-buffered FFT, and then
//! analyzed: the *forward* FFT recovers the modes and the radially
//! binned energy spectrum is checked against the −5/3 slope.
//!
//! Run with: `cargo run --release --example turbulence_spectrum`


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::Direction;
use bwfft::num::signal::SplitMix64;
use bwfft::num::{AlignedVec, Complex64};

/// Signed frequency of bin `i` in an `n`-point DFT.
fn freq(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

fn main() {
    let n = 64usize;
    let total = n * n * n;
    let mut rng = SplitMix64::new(7);

    // --- synthesize modes with |u_hat(κ)|² ∝ κ^(−5/3−2) ----------------
    // (the −2 converts a mode-amplitude law into the shell-integrated
    // E(κ) ∝ κ^(−5/3) after multiplying by the ~κ² shell population)
    let mut field = AlignedVec::<Complex64>::zeroed(total);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let (fz, fy, fx) = (freq(z, n), freq(y, n), freq(x, n));
                let kappa = ((fz * fz + fy * fy + fx * fx) as f64).sqrt();
                if kappa < 1.0 || kappa > (n / 2) as f64 {
                    continue; // no mean flow, no corner modes
                }
                let amplitude = kappa.powf((-5.0 / 3.0 - 2.0) / 2.0);
                let phase = rng.next_f64() * std::f64::consts::PI;
                field[z * n * n + y * n + x] = Complex64::cis(phase) * amplitude;
            }
        }
    }

    // --- to physical space (inverse FFT) --------------------------------
    let inv = FftPlan::builder(Dims::d3(n, n, n))
        .buffer_elems(16 * 1024)
        .threads(2, 2)
        .direction(Direction::Inverse)
        .build()
        .unwrap();
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    exec_real::execute(&inv, &mut field, &mut work).unwrap();
    exec_real::normalize(&mut field);
    let rms: f64 =
        (field.iter().map(|c| c.norm_sqr()).sum::<f64>() / total as f64).sqrt();
    println!("synthesized {n}^3 velocity field, rms = {rms:.3e}");

    // --- analyze: forward FFT + radial binning --------------------------
    let fwd = FftPlan::builder(Dims::d3(n, n, n))
        .buffer_elems(16 * 1024)
        .threads(2, 2)
        .build()
        .unwrap();
    exec_real::execute(&fwd, &mut field, &mut work).unwrap();
    let norm = 1.0 / total as f64;

    let shells = n / 2;
    let mut energy = vec![0.0f64; shells + 1];
    let mut counts = vec![0usize; shells + 1];
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let (fz, fy, fx) = (freq(z, n), freq(y, n), freq(x, n));
                let kappa = ((fz * fz + fy * fy + fx * fx) as f64).sqrt();
                let bin = kappa.round() as usize;
                if (1..=shells).contains(&bin) {
                    energy[bin] += field[z * n * n + y * n + x].norm_sqr() * norm * norm;
                    counts[bin] += 1;
                }
            }
        }
    }

    println!("\n  κ      E(κ)        modes");
    for bin in [2usize, 4, 8, 16, 24] {
        println!("{:>4} {:>12.4e} {:>8}", bin, energy[bin], counts[bin]);
    }

    // --- check the inertial-range slope ---------------------------------
    // Fit log E vs log κ over κ ∈ [4, 16].
    let pts: Vec<(f64, f64)> = (4..=16)
        .filter(|b| energy[*b] > 0.0)
        .map(|b| ((b as f64).ln(), energy[b].ln()))
        .collect();
    let nn = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (nn * sxy - sx * sy) / (nn * sxx - sx * sx);
    println!("\nfitted inertial-range slope: {slope:.3} (target −5/3 ≈ −1.667)");
    assert!(
        (slope + 5.0 / 3.0).abs() < 0.25,
        "spectrum slope {slope} too far from −5/3"
    );
    println!("ok.");
}

