//! Spectral Poisson solver — the r2c/c2r path as a numerical building
//! block.
//!
//! Solves `−∇²u = f` on the periodic unit cube with a manufactured
//! solution: `u(x,y,z) = sin(2πx)·cos(4πy)·sin(6πz)` gives
//! `f = 14·(2π)²·u`. The field is purely real, so the solve rides the
//! packed half-spectrum path: one r2c of `f`, a pointwise division by
//! `(2π)²·|κ|²` over `n²·(n/2+1)` bins (instead of `n³` full complex
//! bins — the real-path byte win), one c2r back. The recovered field
//! must match `u` to FFT round-off, and the spectrally-applied
//! Laplacian of the computed `u` must reproduce `f` (the residual).
//!
//! `tests/poisson.rs` asserts the same bounds through the same shared
//! entry point, so this example can never silently rot.
//!
//! Run with: `cargo run --release --example poisson_solver`

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft::real::solve_poisson_3d;

fn main() {
    let n = 32usize;
    let report = solve_poisson_3d(n, 2, 2, 2048).unwrap();
    println!("spectral Poisson solve on a {n}^3 periodic grid (r2c/c2r path)");
    println!("packed spectrum: {} bins vs {} full complex bins", n * n * (n / 2 + 1), n * n * n);
    println!("max |u − u_exact| = {:.3e}", report.max_err);
    println!("max |f + ∇²u|     = {:.3e}", report.max_residual);
    assert!(report.max_err < 1e-10, "solver error too large");
    assert!(report.max_residual < 1e-7, "spectral residual too large");
    println!("ok.");
}
