//! Spectral Poisson solver — forward + inverse 3D FFT as a numerical
//! building block.
//!
//! Solves `∇²u = f` on the periodic unit cube with a manufactured
//! solution: `u(x,y,z) = sin(2πx)·cos(4πy)·sin(6πz)` gives
//! `f = −((2π)² + (4π)² + (6π)²)·u`. The solver transforms `f`,
//! divides by the spectral Laplacian eigenvalues `−|2πκ|²`, and
//! transforms back; the recovered field must match `u` to FFT
//! round-off.
//!
//! Run with: `cargo run --release --example poisson_solver`


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::Direction;
use bwfft::num::{AlignedVec, Complex64};

fn freq(i: usize, n: usize) -> f64 {
    if i <= n / 2 {
        i as f64
    } else {
        i as f64 - n as f64
    }
}

fn main() {
    let n = 32usize;
    let total = n * n * n;
    let h = 1.0 / n as f64;
    let tau = 2.0 * std::f64::consts::PI;

    // Manufactured solution and its Laplacian.
    let u_exact = |x: f64, y: f64, z: f64| {
        (tau * x).sin() * (2.0 * tau * y).cos() * (3.0 * tau * z).sin()
    };
    let lambda = -(tau * tau) * (1.0 + 4.0 + 9.0);

    let mut f = AlignedVec::<Complex64>::zeroed(total);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let v = lambda * u_exact(x as f64 * h, y as f64 * h, z as f64 * h);
                f[z * n * n + y * n + x] = Complex64::new(v, 0.0);
            }
        }
    }

    // Forward transform of the right-hand side.
    let fwd = FftPlan::builder(Dims::d3(n, n, n))
        .buffer_elems(4096)
        .threads(2, 2)
        .build()
        .unwrap();
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    exec_real::execute(&fwd, &mut f, &mut work).unwrap();

    // Divide by the spectral Laplacian eigenvalues −(2π|κ|)².
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let idx = z * n * n + y * n + x;
                let k2 = freq(x, n).powi(2) + freq(y, n).powi(2) + freq(z, n).powi(2);
                if k2 == 0.0 {
                    f[idx] = Complex64::ZERO; // zero-mean gauge
                } else {
                    f[idx] = f[idx].scale(-1.0 / (tau * tau * k2));
                }
            }
        }
    }

    // Inverse transform + normalization.
    let inv = FftPlan::builder(Dims::d3(n, n, n))
        .buffer_elems(4096)
        .threads(2, 2)
        .direction(Direction::Inverse)
        .build()
        .unwrap();
    exec_real::execute(&inv, &mut f, &mut work).unwrap();
    exec_real::normalize(&mut f);

    // Compare with the exact solution.
    let mut max_err = 0.0f64;
    let mut max_imag = 0.0f64;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let got = f[z * n * n + y * n + x];
                let expect = u_exact(x as f64 * h, y as f64 * h, z as f64 * h);
                max_err = max_err.max((got.re - expect).abs());
                max_imag = max_imag.max(got.im.abs());
            }
        }
    }
    println!("spectral Poisson solve on a {n}^3 periodic grid");
    println!("max |u − u_exact| = {max_err:.3e}");
    println!("max |Im(u)|       = {max_imag:.3e}");
    assert!(max_err < 1e-10, "solver error too large");
    assert!(max_imag < 1e-10, "solution should be real");
    println!("ok.");
}

