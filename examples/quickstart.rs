//! Quickstart: plan a 3D FFT, execute it with the soft-DMA pipeline on
//! real threads, verify the result against an independent
//! implementation, and estimate its performance on one of the paper's
//! machines.
//!
//! Run with: `cargo run --release --example quickstart`


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft::baselines::reference_impl::pencil_fft_3d;
use bwfft::core::exec_sim::{simulate, SimOptions};
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::Direction;
use bwfft::machine::presets;
use bwfft::num::compare::rel_l2_error;
use bwfft::num::{signal, AlignedVec, Complex64};

fn main() {
    // --- 1. Plan -------------------------------------------------------
    let (k, n, m) = (64usize, 64, 64);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(16 * 1024) // the LLC-resident block size b
        .threads(2, 2) // 2 soft-DMA data threads + 2 compute threads
        .build()
        .expect("valid plan");
    println!(
        "planned {} — {} pipeline iterations per stage, buffer {} KiB",
        plan.dims.label(),
        plan.iters_per_socket(),
        plan.buffer_elems * 16 / 1024
    );

    // --- 2. Execute on real threads -------------------------------------
    let mut data = AlignedVec::from_slice(&signal::random_complex(k * n * m, 2024));
    let original = data.clone();
    let mut work = AlignedVec::<Complex64>::zeroed(data.len());
    let t0 = std::time::Instant::now();
    exec_real::execute(&plan, &mut data, &mut work).unwrap();
    let host_time = t0.elapsed();
    println!("executed forward FFT on host threads in {host_time:.2?}");

    // --- 3. Verify -------------------------------------------------------
    let mut reference = original.clone();
    pencil_fft_3d(&mut reference, k, n, m, Direction::Forward);
    let err = rel_l2_error(&data, &reference);
    println!("relative L2 error vs pencil-pencil reference: {err:.2e}");
    assert!(err < 1e-12);

    // Round-trip through the inverse plan.
    let inv = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(16 * 1024)
        .threads(2, 2)
        .direction(Direction::Inverse)
        .build()
        .unwrap();
    exec_real::execute(&inv, &mut data, &mut work).unwrap();
    exec_real::normalize(&mut data);
    let roundtrip = rel_l2_error(&data, &original);
    println!("forward -> inverse -> /N round-trip error: {roundtrip:.2e}");
    assert!(roundtrip < 1e-12);

    // --- 4. Estimate performance on a paper machine ---------------------
    let spec = presets::kaby_lake_7700k();
    let big = FftPlan::builder(Dims::d3(512, 512, 512))
        .buffer_elems(spec.default_buffer_elems())
        .threads(4, 4)
        .build()
        .unwrap();
    let sim = simulate(&big, &spec, &SimOptions::default()).unwrap();
    println!("\nsimulated 512^3 on {}:", spec.name);
    println!("  {}", sim.report);
    println!("\nok.");
}

