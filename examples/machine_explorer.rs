//! Machine explorer: sweep the five §V machine presets — STREAM
//! calibration, the 3D FFT at the paper's sizes, and the sensitivity
//! to the data/compute thread split.
//!
//! Run with: `cargo run --release --example machine_explorer`


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft::core::exec_sim::{simulate, SimOptions};
use bwfft::core::{Dims, FftPlan};
use bwfft::machine::stream::stream_triad;
use bwfft::machine::{presets, MachineSpec};

fn best_split(spec: &MachineSpec, dims: Dims) -> (usize, usize, f64) {
    let p = spec.total_threads() / spec.sockets;
    let mut best = (1, 1, f64::INFINITY);
    for p_d in 1..p {
        let p_c = p - p_d;
        let plan = FftPlan::builder(dims)
            .buffer_elems(spec.default_buffer_elems())
            .threads(p_d, p_c)
            .build()
            .unwrap();
        let t = simulate(&plan, spec, &SimOptions::default()).unwrap().report.time_ns;
        if t < best.2 {
            best = (p_d, p_c, t);
        }
    }
    best
}

fn main() {
    let dims = Dims::d3(512, 512, 512);
    println!("machine exploration at {}", dims.label());
    println!(
        "\n{:<36} {:>11} {:>11} {:>8} {:>12}",
        "machine", "STREAM GB/s", "FFT GF/s", "% peak", "best split"
    );
    println!("{}", "-".repeat(84));
    for spec in presets::all() {
        let triad = stream_triad(&spec, 1 << 22);
        let p = spec.total_threads() / spec.sockets;
        let plan = FftPlan::builder(dims)
            .buffer_elems(spec.default_buffer_elems())
            .threads(p / 2, p - p / 2)
            .build()
            .unwrap();
        let r = simulate(&plan, &spec, &SimOptions::default()).unwrap().report;
        let (bd, bc, _) = best_split(&spec, dims);
        println!(
            "{:<36} {:>11.1} {:>11.2} {:>7.1}% {:>9}d+{}c",
            spec.name,
            triad.triad_gbs,
            r.gflops(),
            r.percent_of_peak(),
            bd,
            bc
        );
    }
    println!("\nthe half/half split of the paper should be at or near the optimum everywhere.");
}

