//! FFT-based 3D convolution — smoothing a field with a Gaussian kernel
//! via the convolution theorem (forward FFT, pointwise multiply,
//! inverse FFT), the other canonical consumer of large 3D transforms.
//!
//! Verified two ways: against direct convolution at a tiny size, and
//! by the smoothing property (variance reduction) at a realistic size.
//!
//! Run with: `cargo run --release --example convolution`


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::Direction;
use bwfft::num::signal::SplitMix64;
use bwfft::num::{AlignedVec, Complex64};

fn fft3(n: usize, data: &mut [Complex64], dir: Direction) {
    let plan = FftPlan::builder(Dims::d3(n, n, n))
        .buffer_elems((n * n * n / 8).max(4 * n))
        .threads(2, 2)
        .direction(dir)
        .build()
        .unwrap();
    let mut work = AlignedVec::<Complex64>::zeroed(data.len());
    exec_real::execute(&plan, data, &mut work).unwrap();
}

/// Circular 3D convolution via the convolution theorem.
fn convolve(n: usize, field: &mut [Complex64], kernel: &[Complex64]) {
    let total = n * n * n;
    let mut k_hat = kernel.to_vec();
    fft3(n, &mut k_hat, Direction::Forward);
    fft3(n, field, Direction::Forward);
    for (f, k) in field.iter_mut().zip(&k_hat) {
        *f *= *k;
    }
    fft3(n, field, Direction::Inverse);
    let s = 1.0 / total as f64;
    for f in field.iter_mut() {
        *f = f.scale(s);
    }
}

/// Direct O(N²) circular convolution (tiny sizes only).
fn convolve_direct(n: usize, field: &[Complex64], kernel: &[Complex64]) -> Vec<Complex64> {
    let idx = |z: usize, y: usize, x: usize| z * n * n + y * n + x;
    let mut out = vec![Complex64::ZERO; n * n * n];
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let mut acc = Complex64::ZERO;
                for dz in 0..n {
                    for dy in 0..n {
                        for dx in 0..n {
                            let f = field[idx(dz, dy, dx)];
                            let k = kernel[idx(
                                (z + n - dz) % n,
                                (y + n - dy) % n,
                                (x + n - dx) % n,
                            )];
                            acc += f * k;
                        }
                    }
                }
                out[idx(z, y, x)] = acc;
            }
        }
    }
    out
}

fn gaussian_kernel(n: usize, sigma: f64) -> Vec<Complex64> {
    let mut k = vec![Complex64::ZERO; n * n * n];
    let mut sum = 0.0;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let d = |i: usize| {
                    let s = if i <= n / 2 { i as f64 } else { i as f64 - n as f64 };
                    s * s
                };
                let r2 = d(z) + d(y) + d(x);
                let v = (-r2 / (2.0 * sigma * sigma)).exp();
                k[z * n * n + y * n + x] = Complex64::new(v, 0.0);
                sum += v;
            }
        }
    }
    for v in k.iter_mut() {
        *v = v.scale(1.0 / sum); // unit mass ⇒ mean-preserving
    }
    k
}

fn main() {
    // --- correctness at a tiny size -------------------------------------
    let n = 8;
    let mut rng = SplitMix64::new(11);
    let field: Vec<Complex64> = (0..n * n * n)
        .map(|_| Complex64::new(rng.next_f64(), 0.0))
        .collect();
    let kernel = gaussian_kernel(n, 1.0);
    let expect = convolve_direct(n, &field, &kernel);
    let mut got = field.clone();
    convolve(n, &mut got, &kernel);
    let err = bwfft::num::compare::rel_l2_error(&got, &expect);
    println!("8^3 FFT-convolution vs direct: rel L2 error = {err:.2e}");
    assert!(err < 1e-12);

    // --- smoothing property at a realistic size --------------------------
    let n = 32;
    let mut field: Vec<Complex64> = (0..n * n * n)
        .map(|_| Complex64::new(rng.next_f64(), 0.0))
        .collect();
    let mean =
        field.iter().map(|c| c.re).sum::<f64>() / field.len() as f64;
    let var_before = field
        .iter()
        .map(|c| (c.re - mean).powi(2))
        .sum::<f64>()
        / field.len() as f64;
    let kernel = gaussian_kernel(n, 2.0);
    convolve(n, &mut field, &kernel);
    let mean_after =
        field.iter().map(|c| c.re).sum::<f64>() / field.len() as f64;
    let var_after = field
        .iter()
        .map(|c| (c.re - mean_after).powi(2))
        .sum::<f64>()
        / field.len() as f64;
    println!("{n}^3 Gaussian smoothing: mean {mean:.5} -> {mean_after:.5}");
    println!("variance {var_before:.5} -> {var_after:.6} (x{:.3})", var_after / var_before);
    assert!((mean - mean_after).abs() < 1e-10, "unit-mass kernel preserves the mean");
    assert!(var_after < 0.05 * var_before, "smoothing must crush the variance");
    let max_imag = field.iter().map(|c| c.im.abs()).fold(0.0, f64::max);
    assert!(max_imag < 1e-10, "real in, real out");
    println!("ok.");
}

